#!/usr/bin/env bash
# Tier-1 CI gate: the fast test suite plus a single-process campaign
# smoke run (exercises the CLI, the worker pool's serial path, the
# content-addressed store, and cache-hit resume end to end).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q -m "not slow"

store="$(mktemp -d)"
trap 'rm -rf "$store"' EXIT
python -m repro campaign run scale-aggregation --quick --jobs 1 --store "$store"
# An immediate re-run must be served entirely from cache.
python -m repro campaign run scale-aggregation --quick --jobs 1 --store "$store" \
    | grep -q "cached=2" || { echo "campaign cache miss on re-run" >&2; exit 1; }
echo "tier-1 OK"
