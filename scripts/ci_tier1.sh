#!/usr/bin/env bash
# Tier-1 CI gate: the fast test suite, a single-process campaign smoke
# run (exercises the CLI, the worker pool's serial path, the
# content-addressed store, and cache-hit resume end to end), and a
# trace record/summarize smoke over the observability CLI.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q -m "not slow"

# Matching-engine perf smoke: deterministic comparison *counts* (not
# wall time, so it cannot flake) must drop >=5x on a 50-entry matching
# workload versus the reference Figure 2 scan.
python -m repro.experiments.matchbench --smoke

# Radio-channel perf smoke: the indexed channel must produce verdicts
# identical to the reference O(N) scan, and its carrier-sense scan
# counter must track active transmitters while the reference's grows
# with network size (again counters, not wall time).  With numpy
# present this also gates the vectorized engine: it must engage
# (batch_engaged) and match both scalar engines outcome-for-outcome.
python -m repro.experiments.channelbench --smoke

# Scalar-fallback gate: force the batch engine off and re-run the
# channel equivalence suite (vectorized cases skip; every vectorize()
# call must degrade to the scalar fast path bit-identically), so the
# numpy-free configuration can never rot.
REPRO_NO_NUMPY=1 python -m pytest -x -q tests/test_channel_equivalence.py

# Sharded-kernel smoke: spatially partitioned conservative execution
# must produce outcomes bit-identical to the single-queue oracle across
# scenarios (flood, mobility, diffusion), shard counts (1/2/4), and
# both transports (inline and worker processes), with real boundary
# traffic exchanged (outcome equality, not wall time, so it cannot
# flake).
python -m repro.experiments.scalebench --smoke

# Hierarchy smoke: flat propagation mode must stay bit-identical to
# the classic regional scenario, clustered mode must elect heads
# (0 < heads < N) and suppress member interest rebroadcasts, rendezvous
# mode must suppress out-of-corridor copies, every mode must deliver
# data, and the sharded outcomes must match the single-queue oracle
# (counters and outcome equality, never wall time).
python -m repro.experiments.hierarchybench --smoke

# DTN smoke: with custody off the stack must be bit-identical to a
# build where the custody plumbing never existed; under a 60% partition
# duty custody must engage with every loss attributed; the data mule
# must deliver >= 2x the baseline with blocks crossing *while*
# partitioned; and a same-seed replay must reproduce the armed run bit
# for bit (outcome equality and counters, never wall time).
python -m repro.experiments.dtnbench --smoke

# Fault-injection smoke: a seeded FaultPlan must replay bit-identically
# (same timeline, same repair metrics), invariants must hold, and
# repair must land within a bounded number of exploratory intervals
# (counters and event times, not wall time).
python -m repro faults --smoke

# Shard-sync profiler smoke: every conservative window must be
# attributed to a promise term (shares sum to 100%), window-span
# histograms must count every round, and real exchange volume must be
# reported (counters again, not wall time).
python -m repro trace shards --scenario flood --shards 2 \
    --columns 8 --rows 4 --duration 5 --smoke

store="$(mktemp -d)"
trap 'rm -rf "$store"' EXIT
python -m repro campaign run scale-aggregation --quick --jobs 1 --store "$store"
# An immediate re-run must be served entirely from cache.
# Buffer the output: grep -q would close the pipe mid-print and kill
# the CLI with SIGPIPE under pipefail.
rerun="$(python -m repro campaign run scale-aggregation --quick --jobs 1 --store "$store")"
grep -q "cached=2" <<<"$rerun" \
    || { echo "campaign cache miss on re-run" >&2; exit 1; }

# Observability smoke: record a tiny traced run, then summarize it.
trace="$store/smoke-trace.jsonl"
python -m repro trace record --out "$trace" --scenario line --nodes 3 \
    --duration 20 --seed 1
python -m repro trace summarize "$trace" > "$store/summary.txt"
grep -q "diffusion.tx" "$store/summary.txt" \
    || { echo "trace summarize missing diffusion.tx" >&2; exit 1; }
python -m repro trace paths "$trace" > "$store/paths.txt"
grep -q "data messages:" "$store/paths.txt" \
    || { echo "trace paths produced no report" >&2; exit 1; }

# Flight-recorder smoke: provoke an invariant violation (a zero-entry
# gradient-table bound) and require the postmortem dump to hold the
# causal lead-up — at least 64 trace events behind its header line.
flight="$store/flight.jsonl"
python -m repro faults run --fault crash --duration 60 \
    --demo-violation --flight-recorder "$flight"
lines="$(wc -l < "$flight")"
[ "$lines" -ge 65 ] \
    || { echo "flight recorder dumped only $lines lines" >&2; exit 1; }
echo "tier-1 OK"
