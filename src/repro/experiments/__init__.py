"""Experiment harnesses: one module per paper artifact.

Each module exposes a ``run_*`` function returning structured results
and a ``main()`` that prints the paper-style table.  The benchmarks in
``benchmarks/`` are thin wrappers over these.
"""

from repro.experiments.fig8_aggregation import Fig8Point, run_fig8, run_fig8_trial
from repro.experiments.fig9_nested import Fig9Point, run_fig9, run_fig9_trial
from repro.experiments.fig11_matching import (
    MatchingVariant,
    build_set_a,
    build_set_b,
    measure_matching,
    run_fig11,
)
from repro.experiments.duty_cycle import run_duty_cycle_analysis

__all__ = [
    "Fig8Point",
    "run_fig8",
    "run_fig8_trial",
    "Fig9Point",
    "run_fig9",
    "run_fig9_trial",
    "MatchingVariant",
    "build_set_a",
    "build_set_b",
    "measure_matching",
    "run_fig11",
    "run_duty_cycle_analysis",
]
