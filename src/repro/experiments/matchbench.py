"""Matching-bound forwarding benchmark (the engine behind BENCH_matching.json).

Models the hot path the paper worries about in Section 6.3: a node's
gradient table holds N interest entries, and every received data
message must be matched against all of them to make the forwarding
decision.  Steady-state diffusion traffic repeats the same attribute
vectors (periodic readings from the same sources), which is exactly
what the :class:`~repro.naming.engine.MatchIndex` memoizes.

Two measurement axes per table size:

* **throughput** — data messages matched per second through
  ``GradientTable.matching_data`` (the indexed, memoizing fast path)
  versus :func:`reference_matching_data` (the pre-optimization linear
  Figure 2 scan, kept here verbatim for before/after comparison);
* **comparison counts** — ``MatchStats.comparisons`` per data message,
  which is deterministic and therefore what the CI perf smoke asserts
  on (wall time would flake).

``python -m repro.experiments.matchbench`` writes BENCH_matching.json;
``--smoke`` runs the deterministic comparison-count check only.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Dict, List, Tuple

from repro.core.gradient import GradientTable
from repro.naming import AttributeVector, MatchStats, one_way_match
from repro.naming.keys import Key

#: table sizes reported in BENCH_matching.json
DEFAULT_SIZES = (10, 50, 200)

#: distinct data vectors cycled through the stream (periodic readings
#: from this many sources)
DEFAULT_DISTINCT = 16


def build_interest(index: int, rng: random.Random) -> AttributeVector:
    """A realistic 6-attribute interest targeting one task."""
    x = rng.uniform(0.0, 50.0)
    y = rng.uniform(0.0, 50.0)
    return (
        AttributeVector.builder()
        .eq(Key.TASK, f"task-{index}")
        .gt(Key.CONFIDENCE, 50.0)
        .ge(Key.X_COORD, x)
        .le(Key.X_COORD, x + 150.0)
        .ge(Key.Y_COORD, y)
        .le(Key.Y_COORD, y + 150.0)
        .build()
    )


def build_data(index: int, rng: random.Random) -> AttributeVector:
    """A data message answering ``task-{index}``."""
    return (
        AttributeVector.builder()
        .actual(Key.TASK, f"task-{index}")
        .actual(Key.CONFIDENCE, rng.uniform(60.0, 99.0))
        .actual(Key.X_COORD, rng.uniform(50.0, 100.0))
        .actual(Key.Y_COORD, rng.uniform(50.0, 100.0))
        .build()
    )


def build_workload(
    n_entries: int,
    distinct_data: int = DEFAULT_DISTINCT,
    seed: int = 42,
) -> Tuple[GradientTable, List[AttributeVector]]:
    """A gradient table with ``n_entries`` live interests and the pool
    of distinct data vectors the stream cycles through."""
    rng = random.Random(seed)
    table = GradientTable()
    for i in range(n_entries):
        entry = table.entry_for(build_interest(i, rng))
        entry.update_gradient(neighbor=1, now=0.0, timeout=1e9)
    data_pool = [
        build_data(i % max(1, n_entries), rng) for i in range(distinct_data)
    ]
    return table, data_pool


def reference_matching_data(table: GradientTable, data_attrs, now: float, stats=None):
    """The pre-optimization ``GradientTable.matching_data``: a verbatim
    Figure 2 linear scan over every entry, re-materializing list copies
    per call (kept as the before-side of the benchmark)."""
    matches = []
    for entry in table.entries():
        if not entry.has_demand(now):
            continue
        if one_way_match(list(entry.attrs), list(data_attrs), stats):
            matches.append(entry)
    return matches


def count_comparisons(
    n_entries: int,
    messages: int = 200,
    distinct_data: int = DEFAULT_DISTINCT,
    seed: int = 42,
) -> Dict[str, int]:
    """Deterministic comparison counts for ``messages`` data messages
    through both paths, asserting identical verdicts along the way."""
    table, data_pool = build_workload(n_entries, distinct_data, seed)
    ref_stats = MatchStats()
    for i in range(messages):
        data = data_pool[i % len(data_pool)]
        want = {e.digest for e in reference_matching_data(table, data, 0.0, ref_stats)}
        got = {e.digest for e in table.matching_data(data, 0.0)}
        if want != got:
            raise AssertionError(
                f"fast path diverged from reference at message {i}"
            )
    return {
        "messages": messages,
        "reference_comparisons": ref_stats.comparisons,
        "engine_comparisons": table.match_index.comparisons,
        "memo_hits": table.data_memo_hits,
        "memo_misses": table.data_memo_misses,
    }


def measure_throughput(
    n_entries: int,
    messages: int = 2000,
    distinct_data: int = DEFAULT_DISTINCT,
    seed: int = 42,
) -> Dict[str, float]:
    """Wall-clock events/sec for both paths over an identical stream."""
    table, data_pool = build_workload(n_entries, distinct_data, seed)
    stream = [data_pool[i % len(data_pool)] for i in range(messages)]

    # Warm both paths (and the memo) outside the timed region.
    reference_matching_data(table, stream[0], 0.0)
    for data in data_pool:
        table.matching_data(data, 0.0)

    start = time.perf_counter()
    for data in stream:
        reference_matching_data(table, data, 0.0)
    reference_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    for data in stream:
        table.matching_data(data, 0.0)
    engine_elapsed = time.perf_counter() - start

    reference_eps = messages / reference_elapsed if reference_elapsed else 0.0
    engine_eps = messages / engine_elapsed if engine_elapsed else 0.0
    return {
        "reference_events_per_sec": reference_eps,
        "engine_events_per_sec": engine_eps,
        "speedup": engine_eps / reference_eps if reference_eps else 0.0,
    }


def run_bench(
    sizes=DEFAULT_SIZES,
    messages: int = 2000,
    seed: int = 42,
) -> Dict:
    """The full benchmark: throughput plus comparison counts per size."""
    results = []
    for n_entries in sizes:
        counts = count_comparisons(n_entries, seed=seed)
        throughput = measure_throughput(n_entries, messages=messages, seed=seed)
        per_msg_ref = counts["reference_comparisons"] / counts["messages"]
        per_msg_engine = counts["engine_comparisons"] / counts["messages"]
        results.append(
            {
                "interest_entries": n_entries,
                "reference": {
                    "events_per_sec": round(
                        throughput["reference_events_per_sec"], 1
                    ),
                    "comparisons_per_message": round(per_msg_ref, 2),
                },
                "engine": {
                    "events_per_sec": round(throughput["engine_events_per_sec"], 1),
                    "comparisons_per_message": round(per_msg_engine, 2),
                    "memo_hit_rate": round(
                        counts["memo_hits"]
                        / max(1, counts["memo_hits"] + counts["memo_misses"]),
                        4,
                    ),
                },
                "throughput_speedup": round(throughput["speedup"], 2),
                "comparison_reduction": round(
                    per_msg_ref / per_msg_engine, 1
                )
                if per_msg_engine
                else float("inf"),
            }
        )
    return {
        "benchmark": "matching-bound forwarding (GradientTable.matching_data)",
        "workload": (
            f"N interest entries, {DEFAULT_DISTINCT} distinct data vectors "
            f"cycled over {messages} messages (steady-state repetition)"
        ),
        "seed": seed,
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="matching-bound forwarding benchmark"
    )
    parser.add_argument(
        "--out", default="BENCH_matching.json", help="output JSON path"
    )
    parser.add_argument(
        "--messages", type=int, default=2000, help="messages per timed stream"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "deterministic CI mode: assert the engine's comparison count "
            "drops >=5x vs the reference scan on a 50-entry workload "
            "(counts, not wall time, so it cannot flake)"
        ),
    )
    args = parser.parse_args(argv)

    if args.smoke:
        counts = count_comparisons(n_entries=50, messages=200)
        ref = counts["reference_comparisons"]
        eng = counts["engine_comparisons"]
        ratio = ref / eng if eng else float("inf")
        print(
            f"match perf smoke: reference={ref} engine={eng} "
            f"comparisons over {counts['messages']} messages "
            f"({ratio:.1f}x reduction, "
            f"memo hits={counts['memo_hits']} misses={counts['memo_misses']})"
        )
        if ratio < 5.0:
            print(
                "FAIL: expected >=5x comparison-count reduction", file=sys.stderr
            )
            return 1
        return 0

    report = run_bench(messages=args.messages)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    for row in report["results"]:
        print(
            f"{row['interest_entries']:>4} entries: "
            f"{row['reference']['events_per_sec']:>10.0f} -> "
            f"{row['engine']['events_per_sec']:>10.0f} events/s "
            f"({row['throughput_speedup']:.2f}x), comparisons/msg "
            f"{row['reference']['comparisons_per_message']} -> "
            f"{row['engine']['comparisons_per_message']} "
            f"({row['comparison_reduction']}x)"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
