"""Figure 8: bytes per distinct event vs number of sources.

"Figure 8 measures bytes sent from diffusion in all nodes in the system
normalized to the number of distinct events received.  Each point in
this graph represents the mean of five 30-minute experiments with 95%
confidence intervals.  ...  With suppression the amount of traffic is
roughly constant regardless of the number of sources.  ...  suppression
is able to reduce traffic by up to 42% for four sources."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis import ConfidenceInterval, mean_ci
from repro.apps.surveillance import SurveillanceExperiment, SurveillanceResult
from repro.testbed import FIG8_SINK, FIG8_SOURCES, isi_testbed_network


def run_fig8_trial(
    sources: int,
    suppression: bool,
    seed: int,
    duration: float = 1800.0,
) -> SurveillanceResult:
    """One 30-minute experiment at the paper's configuration."""
    if not 1 <= sources <= len(FIG8_SOURCES):
        raise ValueError(f"sources must be within [1, {len(FIG8_SOURCES)}]")
    network = isi_testbed_network(seed=seed)
    experiment = SurveillanceExperiment(
        network,
        sink_id=FIG8_SINK,
        source_ids=FIG8_SOURCES[:sources],
        suppression=suppression,
    )
    return experiment.run(duration=duration)


@dataclass
class Fig8Point:
    """One point of Figure 8: mean bytes/event with a 95% CI."""

    sources: int
    suppression: bool
    bytes_per_event: ConfidenceInterval
    delivery_ratio: ConfidenceInterval
    trials: List[SurveillanceResult]


def run_fig8(
    source_counts: Sequence[int] = (1, 2, 3, 4),
    trials: int = 5,
    duration: float = 1800.0,
    base_seed: int = 100,
) -> List[Fig8Point]:
    """The full Figure 8 sweep: both curves, all source counts."""
    points: List[Fig8Point] = []
    for suppression in (True, False):
        for sources in source_counts:
            results = [
                run_fig8_trial(
                    sources,
                    suppression,
                    seed=base_seed + trial,
                    duration=duration,
                )
                for trial in range(trials)
            ]
            points.append(
                Fig8Point(
                    sources=sources,
                    suppression=suppression,
                    bytes_per_event=mean_ci([r.bytes_per_event for r in results]),
                    delivery_ratio=mean_ci([r.delivery_ratio for r in results]),
                    trials=results,
                )
            )
    return points


def savings_at(points: List[Fig8Point], sources: int) -> float:
    """Fractional traffic saved by suppression at a given source count."""
    with_supp = next(
        p for p in points if p.suppression and p.sources == sources
    )
    without = next(
        p for p in points if not p.suppression and p.sources == sources
    )
    return 1.0 - with_supp.bytes_per_event.mean / without.bytes_per_event.mean


def format_table(points: List[Fig8Point]) -> str:
    lines = [
        "Figure 8 — bytes sent per distinct event (mean ± 95% CI)",
        f"{'sources':>8} {'with suppression':>24} {'without suppression':>24}",
    ]
    by_sources = sorted({p.sources for p in points})
    for sources in by_sources:
        with_supp = next(
            (p for p in points if p.suppression and p.sources == sources), None
        )
        without = next(
            (p for p in points if not p.suppression and p.sources == sources), None
        )
        cells = []
        for p in (with_supp, without):
            cells.append(str(p.bytes_per_event) if p else "-")
        lines.append(f"{sources:>8} {cells[0]:>24} {cells[1]:>24}")
    return "\n".join(lines)


def format_chart(points: List[Fig8Point]) -> str:
    from repro.analysis.charts import line_chart

    series = {
        "with suppression": [
            (p.sources, p.bytes_per_event.mean) for p in points if p.suppression
        ],
        "without suppression": [
            (p.sources, p.bytes_per_event.mean)
            for p in points
            if not p.suppression
        ],
    }
    return line_chart(
        series,
        title="Figure 8: bytes/event vs sources",
        x_label="number of sources",
        y_label="B/event",
    )


def main(trials: int = 5, duration: float = 1800.0) -> List[Fig8Point]:
    points = run_fig8(trials=trials, duration=duration)
    print(format_table(points))
    print()
    print(format_chart(points))
    print(f"savings at 4 sources: {savings_at(points, 4):.0%} (paper: 42%)")
    return points


if __name__ == "__main__":
    main()
