"""Figures 10 & 11: run-time cost of attribute matching.

Figure 10 gives the attribute sets: an 8-element interest (set A)
matched against a 6-element data message (set B).  Figure 11 grows set
B from 6 to 30 attributes four ways:

* ``match/IS``    — extra *actuals* (``extra IS "lot"``): examined but
  never searched against, so the slope is shallow;
* ``match/EQ``    — extra *formals* (``class EQ interest``): each must
  be matched against set A, the steepest line;
* ``no-match/IS`` and ``no-match/EQ`` — set B's confidence is changed
  so a formal of set A fails; the two-way match aborts early, so added
  attributes in B cost almost nothing.

The paper measured ~500 µs/match on a 66 MHz 486; we report host-CPU
times and verify the *shape*: linear growth and the ordering of the
four lines.  Attribute order is randomized per measurement, as in the
paper.
"""

from __future__ import annotations

import enum
import random
import time
from dataclasses import dataclass
from typing import Callable, List

from repro.naming import Attribute, Operator, two_way_match
from repro.naming.keys import ClassValue, Key


class MatchingVariant(enum.Enum):
    """The four lines of Figure 11."""

    MATCH_IS = "match/is"
    MATCH_EQ = "match/eq"
    NO_MATCH_IS = "no-match/is"
    NO_MATCH_EQ = "no-match/eq"

    @property
    def matches(self) -> bool:
        return self in (MatchingVariant.MATCH_IS, MatchingVariant.MATCH_EQ)

    @property
    def extra_is_actual(self) -> bool:
        return self in (MatchingVariant.MATCH_IS, MatchingVariant.NO_MATCH_IS)


def build_set_a() -> List[Attribute]:
    """Figure 10 set A: the 8-attribute interest."""
    return [
        Attribute.int32(Key.CLASS, Operator.IS, int(ClassValue.INTEREST)),
        Attribute.string(Key.TASK, Operator.EQ, "detectAnimal"),
        Attribute.float64(Key.CONFIDENCE, Operator.GT, 50.0),
        Attribute.float64(Key.LATITUDE, Operator.GE, 10.0),
        Attribute.float64(Key.LATITUDE, Operator.LE, 101.0),
        Attribute.float64(Key.LONGITUDE, Operator.GE, 5.0),
        Attribute.float64(Key.LONGITUDE, Operator.LE, 95.0),
        Attribute.string(Key.TARGET, Operator.IS, "4-leg"),
    ]


def build_set_b(size: int, variant: MatchingVariant) -> List[Attribute]:
    """Figure 10 set B grown to ``size`` attributes per the variant."""
    if size < 6:
        raise ValueError("set B has at least its 6 base attributes")
    confidence = 90.0 if variant.matches else 10.0
    base = [
        Attribute.int32(Key.CLASS, Operator.IS, int(ClassValue.DATA)),
        Attribute.string(Key.TASK, Operator.IS, "detectAnimal"),
        Attribute.float64(Key.CONFIDENCE, Operator.IS, confidence),
        Attribute.float64(Key.LATITUDE, Operator.IS, 20.0),
        Attribute.float64(Key.LONGITUDE, Operator.IS, 80.0),
        Attribute.string(Key.TARGET, Operator.IS, "4-leg"),
    ]
    extra_count = size - len(base)
    if variant.extra_is_actual:
        extras = [
            Attribute.string(Key.PAYLOAD, Operator.IS, "lot")
            for _ in range(extra_count)
        ]
    else:
        # 'class EQ interest': formals that must search set A (and are
        # satisfied by A's 'class IS interest' actual).
        extras = [
            Attribute.int32(Key.CLASS, Operator.EQ, int(ClassValue.INTEREST))
            for _ in range(extra_count)
        ]
    return base + extras


@dataclass
class MatchingMeasurement:
    """Mean cost of one two-way match at a given set-B size."""

    variant: MatchingVariant
    set_b_size: int
    seconds_per_match: float
    matched: bool


def measure_matching(
    variant: MatchingVariant,
    set_b_size: int,
    iterations: int = 2000,
    rng: random.Random = None,
    clock: Callable[[], float] = time.perf_counter,
) -> MatchingMeasurement:
    """Time ``iterations`` two-way matches and normalize.

    "The order of attributes in each set is randomized each experiment"
    — we shuffle once per measurement, as reordering inside the timed
    loop would measure the shuffle instead.
    """
    rng = rng or random.Random(42)
    set_a = build_set_a()
    set_b = build_set_b(set_b_size, variant)
    rng.shuffle(set_a)
    rng.shuffle(set_b)
    expected = variant.matches
    # Warm-up and correctness check outside the timed region.
    result = two_way_match(set_a, set_b)
    if result != expected:
        raise AssertionError(
            f"variant {variant} expected match={expected}, got {result}"
        )
    start = clock()
    for _ in range(iterations):
        two_way_match(set_a, set_b)
    elapsed = clock() - start
    return MatchingMeasurement(
        variant=variant,
        set_b_size=set_b_size,
        seconds_per_match=elapsed / iterations,
        matched=result,
    )


def run_fig11(
    sizes=(6, 10, 14, 18, 22, 26, 30),
    iterations: int = 2000,
) -> List[MatchingMeasurement]:
    """All four Figure 11 lines across set-B sizes."""
    measurements = []
    for variant in MatchingVariant:
        for size in sizes:
            measurements.append(
                measure_matching(variant, size, iterations=iterations)
            )
    return measurements


def format_table(measurements: List[MatchingMeasurement]) -> str:
    sizes = sorted({m.set_b_size for m in measurements})
    lines = ["Figure 11 — microseconds per two-way match"]
    header = f"{'|B|':>5}" + "".join(
        f"{v.value:>14}" for v in MatchingVariant
    )
    lines.append(header)
    for size in sizes:
        row = f"{size:>5}"
        for variant in MatchingVariant:
            m = next(
                x
                for x in measurements
                if x.variant is variant and x.set_b_size == size
            )
            row += f"{m.seconds_per_match * 1e6:>14.2f}"
        lines.append(row)
    return "\n".join(lines)


def format_chart(measurements: List[MatchingMeasurement]) -> str:
    from repro.analysis.charts import line_chart

    series = {}
    for variant in MatchingVariant:
        series[variant.value] = [
            (m.set_b_size, m.seconds_per_match * 1e6)
            for m in measurements
            if m.variant is variant
        ]
    return line_chart(
        series,
        title="Figure 11: us per match vs attributes in set B",
        x_label="attributes in set B",
        y_label="us",
    )


def main(iterations: int = 2000) -> List[MatchingMeasurement]:
    measurements = run_fig11(iterations=iterations)
    print(format_table(measurements))
    print()
    print(format_chart(measurements))
    return measurements


if __name__ == "__main__":
    main()
