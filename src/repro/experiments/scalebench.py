"""Sharded-kernel scale benchmark (the engine behind BENCH_shard.json).

The single-queue :class:`~repro.sim.Simulator` executes one trial on
one core; :mod:`repro.shard` cuts the deployment into spatial shards
under conservative synchronization, with outcomes proven identical to
the single-queue oracle.  This benchmark measures what that buys and
what it costs:

* **equivalence first** — every reported row re-asserts that the
  sharded outcome equals the oracle's before any timing is trusted;
* **critical path** — the longest per-shard busy time (building plus
  window execution, measured inline where there is no scheduler
  interference).  ``oracle_wall / max(shard busy)`` is the wall-clock
  speedup an unloaded host with one core per shard realizes, and it is
  the honest headline on a CI box with fewer cores than shards;
* **process mode** — wall time of the real
  :class:`~repro.campaign.workers.WorkerCrew` crew plus per-worker CPU
  seconds (``time.process_time``, which excludes time blocked on peer
  pipes), so pipe/sync overhead is visible separately from simulation
  work;
* **scale ceiling** — the final row runs a 10,000-node regional
  diffusion trial through the sharded path, the size the paper's
  large-deployment arguments want and the single-queue kernel cannot
  touch interactively.

``python -m repro.experiments.scalebench`` writes BENCH_shard.json;
``--smoke`` is the CI gate: small grids, 1/2/4 shards, inline and
process transports, every outcome asserted bit-identical to the
oracle (counters, not wall time, so it cannot flake).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.shard import ShardPlan, run_oracle, run_sharded

#: shard counts swept in the full benchmark.
DEFAULT_SHARDS: Sequence[int] = (1, 2, 4)


def _outcome_scalar(outcome: Dict) -> Dict:
    """Outcome minus unbounded list fields, for compact JSON rows."""
    return {
        key: value
        for key, value in outcome.items()
        if not isinstance(value, list)
    }


def bench_row(
    plan: ShardPlan,
    oracle_outcome: Optional[Dict],
    oracle_wall: Optional[float],
    transport: str,
    check: bool = True,
) -> Dict:
    """Run ``plan`` on one transport; verdict-check against the oracle."""
    start = time.perf_counter()
    result = run_sharded(plan, transport=transport)
    wall = time.perf_counter() - start
    if check and oracle_outcome is not None:
        if result["outcome"] != oracle_outcome:
            raise AssertionError(
                f"sharded outcome diverged from oracle: "
                f"{plan.scenario} {plan.params} shards={plan.shards} "
                f"transport={transport}"
            )
    stats = result["shards"]
    profile = result["profile"]
    busy = [s["busy_seconds"] for s in stats]
    row = {
        "scenario": plan.scenario,
        "n_nodes": int(plan.params.get("columns", 10))
        * int(plan.params.get("rows", 5)),
        "duration": plan.duration,
        "shards": plan.shards,
        "transport": transport,
        "wall_seconds": round(wall, 3),
        "max_shard_busy_seconds": round(max(busy), 3),
        "rounds": max(s["rounds"] for s in stats),
        "exports": sum(s["exports"] for s in stats),
        "ghosts_admitted": sum(s["ghosts_admitted"] for s in stats),
        # Shard-sync profile: which promise term bound the windows,
        # how long shards idled at the barrier, what the exchange cost,
        # and how balanced the partition's work was.
        "windows_by_term": profile["windows_by_term"],
        "stall_seconds": [round(s, 3) for s in profile["stall_seconds"]],
        "exchange_bytes": profile["exchange_bytes"],
        "load_imbalance": round(profile["imbalance"], 3),
        "outcome": _outcome_scalar(result["outcome"]),
        "outcome_matches_oracle": (
            result["outcome"] == oracle_outcome
            if oracle_outcome is not None
            else None
        ),
    }
    if transport == "process":
        row["worker_cpu_seconds"] = [
            round(s["cpu_seconds"], 3) for s in stats
        ]
    if oracle_wall is not None:
        row["oracle_wall_seconds"] = round(oracle_wall, 3)
        row["speedup_wall"] = round(wall and oracle_wall / wall, 2)
        row["speedup_critical_path"] = round(
            oracle_wall / max(busy), 2
        )
    return row


def run_bench(include_10k: bool = True) -> Dict:
    results: List[Dict] = []

    # Flood on the largest BENCH_channel grid: pure channel workload.
    plan = ShardPlan(
        scenario="flood", params={"columns": 15, "rows": 10},
        seed=1, duration=30.0, shards=1,
    )
    start = time.perf_counter()
    oracle = run_oracle(plan)
    oracle_wall = time.perf_counter() - start
    for shards in DEFAULT_SHARDS:
        row = bench_row(
            ShardPlan(
                scenario=plan.scenario, params=plan.params,
                seed=plan.seed, duration=plan.duration, shards=shards,
            ),
            oracle, oracle_wall, transport="inline",
        )
        results.append(row)
        print(_format_row(row))

    # Regional diffusion at 1024 nodes: the scale workload, inline for
    # the clean critical path and process for the real crew.
    plan = ShardPlan(
        scenario="regional",
        params={"columns": 32, "rows": 32, "region": 8, "duration": 10.0},
        seed=3, duration=10.0, shards=1,
    )
    start = time.perf_counter()
    oracle = run_oracle(plan)
    oracle_wall = time.perf_counter() - start
    for shards in DEFAULT_SHARDS:
        row = bench_row(
            ShardPlan(
                scenario=plan.scenario, params=plan.params,
                seed=plan.seed, duration=plan.duration, shards=shards,
            ),
            oracle, oracle_wall, transport="inline",
        )
        results.append(row)
        print(_format_row(row))
    row = bench_row(
        ShardPlan(
            scenario=plan.scenario, params=plan.params,
            seed=plan.seed, duration=plan.duration, shards=4,
        ),
        oracle, oracle_wall, transport="process",
    )
    results.append(row)
    print(_format_row(row))

    # The headline: 10,000 nodes end to end through the sharded path.
    if include_10k:
        plan = ShardPlan(
            scenario="regional",
            params={
                "columns": 100, "rows": 100, "region": 10,
                "duration": 2.0,
            },
            seed=3, duration=2.0, shards=4,
        )
        start = time.perf_counter()
        oracle = run_oracle(plan)
        oracle_wall = time.perf_counter() - start
        row = bench_row(plan, oracle, oracle_wall, transport="inline")
        results.append(row)
        print(_format_row(row))

    import os

    return {
        "benchmark": "sharded conservative simulation vs single queue",
        "workloads": {
            "flood": (
                "every node beacons 27 bytes every ~0.5s through CSMA "
                "(hashed loss draws), 30s simulated"
            ),
            "regional": (
                "full diffusion stack, one local source->sink pair per "
                "region block of the grid (the paper's "
                "many-concurrent-local-tasks deployment shape)"
            ),
        },
        "method": (
            "every row's sharded outcome is asserted equal to the "
            "single-queue oracle before timing is reported; "
            "speedup_critical_path = oracle wall / max per-shard busy "
            "time, the wall-clock an unloaded host with one core per "
            "shard realizes"
        ),
        "host_cpus": os.cpu_count(),
        "results": results,
    }


def _format_row(row: Dict) -> str:
    speedup = row.get("speedup_critical_path")
    return (
        f"{row['scenario']:>9} {row['n_nodes']:>6} nodes, "
        f"{row['shards']} shard(s) [{row['transport']}]: "
        f"wall {row['wall_seconds']:.2f}s, max shard busy "
        f"{row['max_shard_busy_seconds']:.2f}s"
        + (f", critical-path speedup {speedup:.2f}x" if speedup else "")
        + (
            ""
            if row["outcome_matches_oracle"] is None
            else (
                ", outcome == oracle"
                if row["outcome_matches_oracle"]
                else ", OUTCOME MISMATCH"
            )
        )
    )


def run_smoke() -> int:
    """Deterministic CI gate: outcomes, not wall time."""
    checks = [
        ("flood", {"columns": 8, "rows": 4}, 5.0, (1, 2, 4), "inline"),
        ("mobility", {"columns": 8, "rows": 4}, 8.0, (2,), "inline"),
        (
            "diffusion",
            {"columns": 6, "rows": 4, "duration": 12.0},
            12.0, (2,), "inline",
        ),
        ("flood", {"columns": 8, "rows": 4}, 5.0, (2,), "process"),
    ]
    for scenario, params, duration, shard_counts, transport in checks:
        oracle = run_oracle(
            ShardPlan(
                scenario=scenario, params=params, seed=11,
                duration=duration, shards=1,
            )
        )
        for shards in shard_counts:
            plan = ShardPlan(
                scenario=scenario, params=params, seed=11,
                duration=duration, shards=shards,
            )
            result = run_sharded(plan, transport=transport)
            if result["outcome"] != oracle:
                print(
                    f"FAIL: {scenario} at {shards} shards "
                    f"({transport}) diverged from the single-queue "
                    f"oracle:\n  oracle:  {oracle}\n  sharded: "
                    f"{result['outcome']}",
                    file=sys.stderr,
                )
                return 1
            ghosts = sum(
                s["ghosts_admitted"] for s in result["shards"]
            )
            if shards > 1 and ghosts == 0:
                print(
                    f"FAIL: {scenario} at {shards} shards exchanged "
                    f"no boundary traffic — the cut is not being "
                    f"exercised",
                    file=sys.stderr,
                )
                return 1
            print(
                f"shard smoke {scenario} {shards} shard(s) "
                f"[{transport}]: outcome identical to oracle "
                f"({ghosts} ghosts, "
                f"{max(s['rounds'] for s in result['shards'])} rounds)"
            )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="sharded simulation scale benchmark"
    )
    parser.add_argument(
        "--out", default="BENCH_shard.json", help="output JSON path"
    )
    parser.add_argument(
        "--no-10k", action="store_true",
        help="skip the 10,000-node headline row",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=(
            "deterministic CI mode: assert sharded == oracle outcomes "
            "across scenarios, shard counts, and both transports"
        ),
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke()

    report = run_bench(include_10k=not args.no_10k)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
