"""Disruption-tolerance benchmark: delivery with and without custody.

The workload is :func:`repro.dtn.scenario.dtn_run` — one bulk transfer
across the resilience grid while a repeating partition splits it at a
configurable disruption duty cycle — plus the 2-partition data-mule
line (:func:`~repro.dtn.scenario.mule_run`) where the endpoints are
*never* simultaneously connected and only carried custody can deliver.
Each row reports:

* **delivery ratio** — blocks at the sink over blocks offered, split
  into during-partition and after-heal arrivals;
* **custody depth** — the high-water mark of blocks simultaneously
  under custody anywhere (the buffering the duty cycle costs);
* **loss attribution** — every undelivered block charged to a cause
  (``custody.*`` event or per-layer drop reason), with the
  unattributed count carried so the gate below can hold it at zero.

``python -m repro.experiments.dtnbench`` writes BENCH_dtn.json;
``--smoke`` is the CI gate: DTN-off must be bit-identical to a build
where the custody plumbing was never constructed, custody must engage
under disruption, the data mule must deliver what the baseline cannot,
replays must be seed-deterministic, and no loss may go unattributed.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List

from repro.dtn.scenario import dtn_run, mule_run

#: disruption duty cycles swept by the benchmark (fraction of each
#: 50 s period the grid spends split in half).
DUTIES = (0.0, 0.3, 0.6)


def run_trial(
    duty: float,
    custody: bool,
    mode: str = "flat",
    seed: int = 1,
    duration: float = 260.0,
) -> Dict[str, Any]:
    """One grid arm; returns the benchmark row."""
    start = time.perf_counter()
    result = dtn_run(
        seed=seed, duty=duty, custody=custody, mode=mode, duration=duration
    )
    wall = time.perf_counter() - start
    return {
        "scenario": "grid",
        "mode": mode,
        "duty": duty,
        "custody": custody,
        "seed": seed,
        "offered": result["offered"],
        "delivered": result["delivered"],
        "delivery_ratio": result["delivery_ratio"],
        "completed": result["completed"],
        "delivered_during_partition": result["delivery_during_partition"],
        "delivered_after_heal": result["delivery_after_partition"],
        "custody_depth_high_water": result["custody_stats"]["depth_high_water"],
        "custody_accepted": result["custody_stats"]["accepted"],
        "reinjections": result["custody_stats"]["reinjections"],
        "retransmits": result["transfer"]["retransmits"],
        "attribution": result["attribution"],
        "unattributed": result["unattributed"],
        "invariants_ok": result["invariants_ok"],
        "wall_seconds": round(wall, 2),
    }


def run_mule_trial(custody: bool, seed: int = 1) -> Dict[str, Any]:
    """One data-mule arm; returns the benchmark row."""
    start = time.perf_counter()
    result = mule_run(seed=seed, custody=custody)
    wall = time.perf_counter() - start
    return {
        "scenario": "mule",
        "custody": custody,
        "seed": seed,
        "offered": result["offered"],
        "delivered": result["delivered"],
        "delivery_ratio": result["delivery_ratio"],
        "delivered_during_partition": result["delivery_during_partition"],
        "delivered_after_heal": result["delivery_after_partition"],
        "custody_depth_high_water": result["custody_stats"]["depth_high_water"],
        "custody_accepted": result["custody_stats"]["accepted"],
        "beacons": result["custody_stats"]["beacons"],
        "custody_acks": result["custody_stats"]["custody_acks"],
        "attribution": result["attribution"],
        "unattributed": result["unattributed"],
        "invariants_ok": result["invariants_ok"],
        "wall_seconds": round(wall, 2),
    }


def _format_row(row: Dict[str, Any]) -> str:
    where = row["scenario"]
    if where == "grid":
        where = f"grid duty={row['duty']:.1f} {row['mode']}"
    arm = "custody" if row["custody"] else "baseline"
    return (
        f"{where:>22} {arm:>8}: "
        f"{row['delivered']:>3}/{row['offered']} blocks "
        f"({row['delivery_ratio']:.0%}), "
        f"depth {row['custody_depth_high_water']}, "
        f"unattributed {row['unattributed']} "
        f"[{row['wall_seconds']:.0f}s wall]"
    )


def run_bench() -> Dict[str, Any]:
    results: List[Dict[str, Any]] = []
    for mode in ("flat", "clustered"):
        for duty in DUTIES:
            for custody in (False, True):
                row = run_trial(duty, custody, mode=mode)
                results.append(row)
                print(_format_row(row))
    for custody in (False, True):
        row = run_mule_trial(custody)
        results.append(row)
        print(_format_row(row))
    return {
        "benchmark": (
            "disruption-tolerant bulk transfer: custody + retransmission "
            "vs the legacy stack across partition duty cycles"
        ),
        "workload": (
            "one corner-to-corner bulk transfer on the 4x3 resilience "
            "grid under a repeating half-grid partition, plus the "
            "3-node data-mule line whose endpoints never share a "
            "connected component"
        ),
        "results": results,
    }


def run_smoke() -> int:
    """Deterministic CI gate (counters and invariants, never wall time)."""
    seed = 1
    duty = 0.6

    # Gate 1 — equivalence: with custody off, a run where the DTN
    # plumbing was constructed disabled must be bit-identical to one
    # where it never existed.
    plain = dtn_run(seed=seed, duty=duty, custody=False)
    disabled = dtn_run(
        seed=seed, duty=duty, custody=False, install_disabled=True
    )
    if plain != disabled:
        diff = {
            key: (plain[key], disabled[key])
            for key in plain
            if plain[key] != disabled.get(key)
        }
        print(
            f"FAIL: disabled custody plumbing changed the run: {diff}",
            file=sys.stderr,
        )
        return 1
    print("dtn smoke: disabled custody plumbing is bit-identical")

    # Gate 2 — engagement: under disruption the custody layer must
    # actually take blocks, and every loss must be attributed.
    armed = dtn_run(seed=seed, duty=duty, custody=True)
    for run, label in ((plain, "baseline"), (armed, "custody")):
        if not run["invariants_ok"]:
            print(
                f"FAIL: {label} run violated invariants: "
                f"{run['violations'][:3]}",
                file=sys.stderr,
            )
            return 1
        if run["unattributed"]:
            print(
                f"FAIL: {label} run left {run['unattributed']} block(s) "
                f"unattributed: {run['attribution']}",
                file=sys.stderr,
            )
            return 1
    if armed["custody_stats"]["accepted"] <= 0:
        print(
            "FAIL: custody never engaged under a 60% partition duty",
            file=sys.stderr,
        )
        return 1
    if armed["delivered"] < plain["delivered"]:
        print(
            f"FAIL: custody delivered {armed['delivered']} < baseline "
            f"{plain['delivered']}",
            file=sys.stderr,
        )
        return 1
    print(
        f"dtn smoke: custody engaged ({armed['custody_stats']['accepted']} "
        f"accepts), delivery {armed['delivered']}/{armed['offered']} vs "
        f"baseline {plain['delivered']}/{plain['offered']}, all losses "
        "attributed"
    )

    # Gate 3 — the mule: endpoints never share a partition, so the
    # baseline cannot deliver during the disruption and custody must
    # carry strictly more across it than the baseline moves overall.
    mule_base = mule_run(seed=seed, custody=False)
    mule_dtn = mule_run(seed=seed, custody=True)
    if mule_dtn["delivered"] < max(1, 2 * max(1, mule_base["delivered"])):
        print(
            f"FAIL: mule custody delivered {mule_dtn['delivered']} "
            f"(baseline {mule_base['delivered']}; need >= 2x)",
            file=sys.stderr,
        )
        return 1
    if mule_dtn["delivery_during_partition"] <= 0:
        print(
            "FAIL: mule delivered nothing while partitioned — custody "
            "never crossed the gap",
            file=sys.stderr,
        )
        return 1
    if not mule_dtn["invariants_ok"]:
        print(
            f"FAIL: mule run violated invariants: "
            f"{mule_dtn['violations'][:3]}",
            file=sys.stderr,
        )
        return 1
    print(
        f"dtn smoke: mule carried {mule_dtn['delivered']}/"
        f"{mule_dtn['offered']} across the gap "
        f"({mule_dtn['delivery_during_partition']} while partitioned; "
        f"baseline {mule_base['delivered']})"
    )

    # Gate 4 — determinism: same seed, same outcome, bit for bit.
    replay = dtn_run(seed=seed, duty=duty, custody=True)
    if replay != armed:
        diff = {
            key: (armed[key], replay[key])
            for key in armed
            if armed[key] != replay.get(key)
        }
        print(f"FAIL: custody replay diverged: {diff}", file=sys.stderr)
        return 1
    print("dtn smoke: custody replay is seed-deterministic")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="disruption-tolerant transfer benchmark"
    )
    parser.add_argument(
        "--out", default="BENCH_dtn.json", help="output JSON path"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=(
            "deterministic CI mode: DTN-off bit-identity, custody "
            "engagement, mule delivery across the gap, zero "
            "unattributed losses, replay determinism"
        ),
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke()

    report = run_bench()
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
