"""Hierarchy ablation: flat vs clustered vs rendezvous propagation.

Flat directed diffusion floods every interest to every node, so the
control plane grows with deployment size even when every task is
local.  This benchmark quantifies what the two hierarchical modes in
:mod:`repro.hierarchy` buy on the regional workload (one local
source→sink pair per region block — the paper's
many-concurrent-local-tasks deployment shape):

* **control traffic** — interest transmissions plus cluster-control
  announcements, in messages and bytes (the per-class counters from
  ``diffusion.tx.messages{class=...}``);
* **delivery ratio** — application payloads received over payloads
  offered;
* **time to first data** — seconds from the first application send to
  the first sink delivery, the latency cost of funneling discovery
  through a backbone or a rendezvous region.

Every trial runs through the sharded kernel
(:class:`~repro.shard.ShardPlan`), so the 1024-node rows execute in
parallel, and every mode/row is seed-deterministic.

``python -m repro.experiments.hierarchybench`` writes
BENCH_hierarchy.json; ``--smoke`` is the CI gate: a small grid where
heads must be elected, member rebroadcasts must be suppressed, every
mode must deliver data, flat mode must be bit-identical to the classic
regional scenario, and the sharded clustered/rendezvous outcomes must
match the single-queue oracle.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.shard import ShardPlan, run_oracle, run_sharded

#: first application send (matches DiffusionScenario's schedule).
SEND_START = 2.0

#: hierarchy tuning used by the benchmark rows.  Announcements at 3x
#: the interest interval (their only steady-state job is liveness),
#: refresh damping past the second sink refresh but safely inside the
#: gradient timeout.
BENCH_HIERARCHY = {
    "announce_interval": 24.0,
    "announce_jitter": 3.0,
    "refresh_damping": 17.0,
}

MODES = ("flat", "clustered", "rendezvous")


def _pair_count(columns: int, rows: int, region: int) -> int:
    blocks_r = len(range(0, rows - region + 1, region))
    blocks_c = len(range(0, columns - region + 1, region))
    return blocks_r * blocks_c


def _trial_params(
    mode: str,
    columns: int,
    rows: int,
    region: int,
    duration: float,
    send_interval: float,
    hierarchy: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    return {
        "columns": columns,
        "rows": rows,
        "spacing": 15.0,
        "region": region,
        "duration": duration,
        "send_interval": send_interval,
        "mode": mode,
        "vectorized": True,
        "hierarchy": dict(BENCH_HIERARCHY, **(hierarchy or {})),
    }


def run_trial(
    mode: str,
    columns: int,
    rows: int,
    region: int = 8,
    duration: float = 90.0,
    send_interval: float = 2.0,
    seed: int = 3,
    shards: int = 1,
    hierarchy: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One mode on one grid; returns the benchmark row."""
    params = _trial_params(
        mode, columns, rows, region, duration, send_interval, hierarchy
    )
    plan = ShardPlan(
        scenario="hierarchy", params=params, seed=seed,
        duration=duration, shards=shards,
    )
    start = time.perf_counter()
    if shards > 1:
        outcome = run_sharded(plan)["outcome"]
    else:
        outcome = run_oracle(plan)
    wall = time.perf_counter() - start

    sends = int((duration - SEND_START) / send_interval)
    offered = _pair_count(columns, rows, region) * sends
    msgs = outcome["messages_by_class"]
    nbytes = outcome["bytes_by_class"]
    delivery_times = outcome["delivery_times"]
    return {
        "mode": mode,
        "n_nodes": columns * rows,
        "grid": f"{columns}x{rows}",
        "region": region,
        "duration": duration,
        "shards": shards,
        "seed": seed,
        "control_messages": msgs["interest"] + msgs["control"],
        "control_bytes": nbytes["interest"] + nbytes["control"],
        "messages_by_class": msgs,
        "bytes_by_class": nbytes,
        "offered": offered,
        "delivered": outcome["app_delivered"],
        "delivery_ratio": (
            round(outcome["app_delivered"] / offered, 4) if offered else 0.0
        ),
        "time_to_first_data": (
            round(min(delivery_times) - SEND_START, 3)
            if delivery_times
            else None
        ),
        "hierarchy": outcome["hierarchy"],
        "wall_seconds": round(wall, 2),
    }


def _format_row(row: Dict[str, Any]) -> str:
    ttfd = row["time_to_first_data"]
    return (
        f"{row['grid']:>7} {row['mode']:>10}: "
        f"ctrl {row['control_messages']:>6} msgs "
        f"/ {row['control_bytes']:>8} B, "
        f"delivery {row['delivered']:>4}/{row['offered']} "
        f"({row['delivery_ratio']:.0%}), "
        f"first data {'-' if ttfd is None else f'{ttfd:.1f}s'} "
        f"[{row['wall_seconds']:.0f}s wall]"
    )


def _reduction(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Per-grid control reduction factors relative to flat."""
    by_grid: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for row in rows:
        by_grid.setdefault(row["grid"], {})[row["mode"]] = row
    summary = {}
    for grid, modes in by_grid.items():
        flat = modes.get("flat")
        if flat is None:
            continue
        entry = {}
        for mode in ("clustered", "rendezvous"):
            other = modes.get(mode)
            if other is None or not other["control_messages"]:
                continue
            entry[mode] = {
                "control_message_reduction": round(
                    flat["control_messages"] / other["control_messages"], 2
                ),
                "control_byte_reduction": round(
                    flat["control_bytes"] / other["control_bytes"], 2
                ),
                "delivery_vs_flat": round(
                    (other["delivery_ratio"] - flat["delivery_ratio"])
                    / flat["delivery_ratio"],
                    4,
                )
                if flat["delivery_ratio"]
                else None,
            }
        summary[grid] = entry
    return summary


def flat_equivalence(
    columns: int = 10,
    rows: int = 10,
    region: int = 5,
    duration: float = 24.0,
    seed: int = 7,
) -> Tuple[bool, Dict[str, Any], Dict[str, Any]]:
    """Flat-mode hierarchy outcome vs the classic regional scenario.

    The hierarchy scenario with ``mode=flat`` installs no policy; the
    keys both scenarios share must match bit for bit, or the hooks in
    the diffusion core are not inert.
    """
    shared = dict(
        columns=columns, rows=rows, spacing=15.0, region=region,
        duration=duration, send_interval=2.0, vectorized=True,
    )
    classic = run_oracle(
        ShardPlan(
            scenario="regional", params=dict(shared), seed=seed,
            duration=duration, shards=1,
        )
    )
    flat = run_oracle(
        ShardPlan(
            scenario="hierarchy", params=dict(shared, mode="flat"),
            seed=seed, duration=duration, shards=1,
        )
    )
    flat_subset = {key: flat[key] for key in classic}
    return flat_subset == classic, classic, flat_subset


def run_bench() -> Dict[str, Any]:
    results: List[Dict[str, Any]] = []
    for columns, rows, shards in ((16, 16, 1), (32, 32, 4)):
        # Scale the rendezvous grid with the deployment so region cells
        # keep a roughly constant node count.
        regions = max(4, columns * 3 // 16)
        for mode in MODES:
            row = run_trial(
                mode, columns, rows, region=8, duration=90.0,
                send_interval=2.0, seed=3, shards=shards,
                hierarchy={"regions": regions},
            )
            results.append(row)
            print(_format_row(row))

    identical, _, _ = flat_equivalence()
    print(f"flat-mode bit-identity vs classic regional scenario: {identical}")

    return {
        "benchmark": (
            "hierarchical interest propagation vs flat flooding "
            "(regional workload, sharded kernel)"
        ),
        "workload": (
            "one local source->sink pair per region block of the grid, "
            "payloads every 2s; control = interest transmissions + "
            "cluster-control announcements"
        ),
        "hierarchy_params": BENCH_HIERARCHY,
        "flat_mode_bit_identical": identical,
        "reduction_vs_flat": _reduction(results),
        "results": results,
    }


def run_smoke() -> int:
    """Deterministic CI gate (counters and invariants, never wall time)."""
    columns = rows = 10
    region = 5
    duration = 24.0
    seed = 7
    hierarchy = {
        "announce_interval": 6.0,
        "announce_jitter": 1.0,
        "refresh_damping": 12.0,
    }

    identical, classic, flat_subset = flat_equivalence(
        columns, rows, region, duration, seed
    )
    if not identical:
        print(
            "FAIL: hierarchy scenario in flat mode diverged from the "
            f"classic regional scenario:\n  classic: {classic}\n"
            f"  flat:    {flat_subset}",
            file=sys.stderr,
        )
        return 1
    print("hierarchy smoke: flat mode bit-identical to classic regional")

    for mode in ("clustered", "rendezvous"):
        params = _trial_params(
            mode, columns, rows, region, duration, 2.0, hierarchy
        )
        plan = ShardPlan(
            scenario="hierarchy", params=params, seed=seed,
            duration=duration, shards=1,
        )
        oracle = run_oracle(plan)
        if oracle["app_delivered"] <= 0:
            print(f"FAIL: {mode} mode delivered no data", file=sys.stderr)
            return 1
        h = oracle["hierarchy"]
        if mode == "clustered":
            if h["heads"] <= 0:
                print("FAIL: no cluster heads elected", file=sys.stderr)
                return 1
            if h["heads"] >= columns * rows:
                print(
                    "FAIL: every node claims headship — election never "
                    "converged", file=sys.stderr,
                )
                return 1
            if h["suppressed_interests"] <= 0:
                print(
                    "FAIL: clustered mode suppressed no interest "
                    "rebroadcasts", file=sys.stderr,
                )
                return 1
        else:
            if h["suppressed_interests"] <= 0:
                print(
                    "FAIL: rendezvous mode suppressed no interest "
                    "rebroadcasts", file=sys.stderr,
                )
                return 1
        sharded = run_sharded(
            ShardPlan(
                scenario="hierarchy", params=params, seed=seed,
                duration=duration, shards=2,
            )
        )
        if sharded["outcome"] != oracle:
            print(
                f"FAIL: sharded {mode} outcome diverged from the "
                f"single-queue oracle:\n  oracle:  {oracle}\n"
                f"  sharded: {sharded['outcome']}",
                file=sys.stderr,
            )
            return 1
        print(
            f"hierarchy smoke {mode}: delivered={oracle['app_delivered']}, "
            f"heads={h['heads']}, suppressed_interests="
            f"{h['suppressed_interests']}, sharded == oracle"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="hierarchical interest propagation ablation"
    )
    parser.add_argument(
        "--out", default="BENCH_hierarchy.json", help="output JSON path"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=(
            "deterministic CI mode: flat bit-identity, heads elected, "
            "suppression active, delivery > 0, sharded == oracle"
        ),
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke()

    report = run_bench()
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
