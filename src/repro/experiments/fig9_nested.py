"""Figure 9: percentage of audio events delivered, nested vs flat.

"Figure 9 shows the percentage of light change events that successfully
result in audio data delivered to the user.  (Data points represent the
mean of three 20-minute experiments and show 95% confidence
intervals.)  ...  Even with one sensor the flat query shows
significantly greater loss than the nested query ...  nested queries
reduce loss rates by 15-30%."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis import ConfidenceInterval, mean_ci
from repro.apps.nestedquery import NestedQueryExperiment, NestedQueryResult
from repro.testbed import (
    FIG9_AUDIO,
    FIG9_LIGHTS,
    FIG9_USER,
    isi_testbed_network,
)


def run_fig9_trial(
    num_lights: int,
    nested: bool,
    seed: int,
    duration: float = 1200.0,
) -> NestedQueryResult:
    """One 20-minute experiment at the paper's configuration."""
    if not 1 <= num_lights <= len(FIG9_LIGHTS):
        raise ValueError(f"num_lights must be within [1, {len(FIG9_LIGHTS)}]")
    network = isi_testbed_network(seed=seed)
    experiment = NestedQueryExperiment(
        network,
        user_id=FIG9_USER,
        audio_id=FIG9_AUDIO,
        light_ids=FIG9_LIGHTS[:num_lights],
        nested=nested,
    )
    return experiment.run(duration=duration)


@dataclass
class Fig9Point:
    """One point of Figure 9: mean delivery % with a 95% CI."""

    num_lights: int
    nested: bool
    delivery_percentage: ConfidenceInterval
    trials: List[NestedQueryResult]


def run_fig9(
    light_counts: Sequence[int] = (1, 2, 3, 4),
    trials: int = 3,
    duration: float = 1200.0,
    base_seed: int = 200,
) -> List[Fig9Point]:
    """The full Figure 9 sweep: nested and flat, all sensor counts."""
    points: List[Fig9Point] = []
    for nested in (True, False):
        for num_lights in light_counts:
            results = [
                run_fig9_trial(
                    num_lights, nested, seed=base_seed + trial, duration=duration
                )
                for trial in range(trials)
            ]
            points.append(
                Fig9Point(
                    num_lights=num_lights,
                    nested=nested,
                    delivery_percentage=mean_ci(
                        [r.delivery_percentage for r in results]
                    ),
                    trials=results,
                )
            )
    return points


def loss_reduction_at(points: List[Fig9Point], num_lights: int) -> float:
    """Percentage points of loss removed by nesting at a sensor count."""
    nested = next(p for p in points if p.nested and p.num_lights == num_lights)
    flat = next(p for p in points if not p.nested and p.num_lights == num_lights)
    return nested.delivery_percentage.mean - flat.delivery_percentage.mean


def format_table(points: List[Fig9Point]) -> str:
    lines = [
        "Figure 9 — % audio events delivered to the user (mean ± 95% CI)",
        f"{'sensors':>8} {'nested (2-level)':>24} {'flat (1-level)':>24}",
    ]
    for num_lights in sorted({p.num_lights for p in points}):
        nested = next(
            (p for p in points if p.nested and p.num_lights == num_lights), None
        )
        flat = next(
            (p for p in points if not p.nested and p.num_lights == num_lights), None
        )
        cells = [
            str(p.delivery_percentage) if p else "-" for p in (nested, flat)
        ]
        lines.append(f"{num_lights:>8} {cells[0]:>24} {cells[1]:>24}")
    return "\n".join(lines)


def format_chart(points: List[Fig9Point]) -> str:
    from repro.analysis.charts import line_chart

    series = {
        "nested": [
            (p.num_lights, p.delivery_percentage.mean)
            for p in points
            if p.nested
        ],
        "flat": [
            (p.num_lights, p.delivery_percentage.mean)
            for p in points
            if not p.nested
        ],
    }
    return line_chart(
        series,
        title="Figure 9: % audio events delivered vs sensors",
        x_label="number of initial sensors",
        y_label="%",
    )


def main(trials: int = 3, duration: float = 1200.0) -> List[Fig9Point]:
    points = run_fig9(trials=trials, duration=duration)
    print(format_table(points))
    print()
    print(format_chart(points))
    for n in sorted({p.num_lights for p in points}):
        print(
            f"loss reduction from nesting at {n} sensor(s): "
            f"{loss_reduction_at(points, n):.0f} points (paper: 15-30)"
        )
    return points


if __name__ == "__main__":
    main()
