"""Section 6.1's duty-cycle energy analysis as a reproducible table.

The paper cannot measure energy directly and instead analyses
``Pd = d*pl*tl + pr*tr + ps*ts`` at several listen duty cycles,
concluding that d=1 is listen-dominated, d≈22% splits energy evenly
with listening, and d≈10% is send-dominated.
"""

from __future__ import annotations

from typing import List

from repro.energy.model import DutyCycleModel, paper_duty_cycle_table


def run_duty_cycle_analysis(model: DutyCycleModel = None) -> List[dict]:
    """Rows of the Section 6.1 analysis plus the two crossovers."""
    model = model or DutyCycleModel()
    rows = paper_duty_cycle_table(model)
    rows.append(
        {
            "duty_cycle": model.listen_half_duty_cycle(),
            "note": "listen = half of total energy (paper: ~22%)",
        }
    )
    rows.append(
        {
            "duty_cycle": model.send_dominance_duty_cycle(),
            "note": "below this, send energy exceeds listen (paper: ~10-15%)",
        }
    )
    return rows


def format_table(rows: List[dict]) -> str:
    lines = [
        "Section 6.1 — duty-cycle energy analysis "
        "(power 1:2:2, time listen-heavy)",
        f"{'duty':>6} {'listen%':>9} {'recv%':>7} {'send%':>7} {'rel. energy':>12}",
    ]
    for row in rows:
        if "note" in row:
            lines.append(f"{row['duty_cycle']:>6.2f}  <- {row['note']}")
        else:
            lines.append(
                f"{row['duty_cycle']:>6.2f} "
                f"{row['listen_fraction']:>8.0%} "
                f"{row['receive_fraction']:>6.0%} "
                f"{row['send_fraction']:>6.0%} "
                f"{row['relative_energy']:>12.1f}"
            )
    return "\n".join(lines)


def main() -> List[dict]:
    rows = run_duty_cycle_analysis()
    print(format_table(rows))
    return rows


if __name__ == "__main__":
    main()
