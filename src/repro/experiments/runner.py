"""Run every experiment and emit the EXPERIMENTS.md-style report.

Usage::

    python -m repro.experiments.runner            # full paper scale
    python -m repro.experiments.runner --quick    # reduced trials/durations
    python -m repro.experiments.runner --jobs 4   # sections in parallel
    python -m repro.experiments.runner --output report.md

With ``--jobs N`` the experiment sections are dispatched through the
:mod:`repro.campaign` worker pool and run in separate processes;
``--jobs 1`` (the default) preserves the original serial in-process
behaviour.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from repro.experiments import (
    fig8_aggregation,
    fig9_nested,
    fig11_matching,
    duty_cycle,
)
from repro.micro import MicroConfig
from repro.micro.footprint import footprint_report
from repro.analysis import TrafficModel

EXPERIMENT_ORDER = ("fig8", "fig9", "fig11", "duty", "model", "micro")


def run_traffic_model() -> None:
    model = TrafficModel()
    print("Section 6.1 analytical traffic model (B/event):")
    print(f"{'sources':>8} {'aggregated':>12} {'unaggregated':>14}")
    for row in model.table():
        print(
            f"{row['sources']:>8} {row['aggregated']:>12.0f} "
            f"{row['unaggregated']:>14.0f}"
        )
    print(
        f"paper: flat 990 with aggregation; 990 -> 3289 without "
        f"(ours reaches {model.bytes_per_event(4, False):.0f}; see EXPERIMENTS.md)"
    )


def run_micro_footprint() -> None:
    report = footprint_report(MicroConfig())
    print("Section 4.3 micro-diffusion footprint:")
    for key, value in report.items():
        print(f"   {key}: {value}")


def _experiment_callable(name: str, quick: bool) -> Callable[[], None]:
    if quick:
        fig8_kwargs = {"trials": 2, "duration": 600.0}
        fig9_kwargs = {"trials": 2, "duration": 600.0}
        fig11_kwargs = {"iterations": 500}
    else:
        fig8_kwargs = {"trials": 5, "duration": 1800.0}
        fig9_kwargs = {"trials": 3, "duration": 1200.0}
        fig11_kwargs = {"iterations": 2000}
    table: Dict[str, Callable[[], None]] = {
        "fig8": lambda: fig8_aggregation.main(**fig8_kwargs),
        "fig9": lambda: fig9_nested.main(**fig9_kwargs),
        "fig11": lambda: fig11_matching.main(**fig11_kwargs),
        "duty": duty_cycle.main,
        "model": run_traffic_model,
        "micro": run_micro_footprint,
    }
    return table[name]


def _run_experiment_captured(name: str, quick: bool) -> str:
    """One experiment section, stdout captured, timing line included."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        print("=" * 72)
        print(f"[{name}]")
        start = time.time()
        _experiment_callable(name, quick)()
        print(f"({name} took {time.time() - start:.1f}s)")
        print()
    return buffer.getvalue()


def _experiment_trial(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Campaign trial wrapper: one section per worker process."""
    name = params["name"]
    return {"name": name, "text": _run_experiment_captured(name, params["quick"])}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced trials and durations (~20x faster, noisier CIs)",
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=list(EXPERIMENT_ORDER),
        help="run a single experiment (repeatable)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run experiment sections across N worker processes",
    )
    parser.add_argument(
        "--output",
        help="also write the report to this file (fenced for markdown)",
    )
    args = parser.parse_args(argv)

    selected = [
        name for name in EXPERIMENT_ORDER
        if not args.only or name in args.only
    ]

    if args.jobs > 1 and len(selected) > 1:
        captured = _run_parallel(selected, args.quick, args.jobs)
    else:
        captured = []
        for name in selected:
            captured.append(_run_experiment_captured(name, args.quick))
    for text in captured:
        sys.stdout.write(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write("# Experiment report\n\n```text\n")
            handle.write("".join(captured))
            handle.write("```\n")
        print(f"report written to {args.output}")
    return 0


def _run_parallel(selected: List[str], quick: bool, jobs: int) -> List[str]:
    from repro.campaign import Campaign, run_campaign

    campaign = Campaign(
        name="experiments",
        trial="repro.experiments.runner:_experiment_trial",
        grid={"name": selected},
        fixed={"quick": quick},
        description="the EXPERIMENTS.md report, one section per trial",
    )
    report = run_campaign(campaign, jobs=jobs)
    by_name = {
        outcome.result["name"]: outcome.result["text"]
        for outcome in report.outcomes
        if outcome.ok
    }
    for outcome in report.outcomes:
        if not outcome.ok:
            by_name[outcome.spec.params["name"]] = (
                "=" * 72
                + f"\n[{outcome.spec.params['name']}] FAILED\n"
                + (outcome.error or "")
                + "\n"
            )
    return [by_name[name] for name in selected if name in by_name]


if __name__ == "__main__":
    sys.exit(main())
