"""Run every experiment and emit the EXPERIMENTS.md-style report.

Usage::

    python -m repro.experiments.runner            # full paper scale
    python -m repro.experiments.runner --quick    # reduced trials/durations
    python -m repro.experiments.runner --output report.md
"""

from __future__ import annotations

import argparse
import contextlib
import io
import sys
import time
from typing import Callable, List, Tuple

from repro.experiments import (
    fig8_aggregation,
    fig9_nested,
    fig11_matching,
    duty_cycle,
)
from repro.micro import MicroConfig
from repro.micro.footprint import footprint_report
from repro.analysis import TrafficModel


def run_traffic_model() -> None:
    model = TrafficModel()
    print("Section 6.1 analytical traffic model (B/event):")
    print(f"{'sources':>8} {'aggregated':>12} {'unaggregated':>14}")
    for row in model.table():
        print(
            f"{row['sources']:>8} {row['aggregated']:>12.0f} "
            f"{row['unaggregated']:>14.0f}"
        )
    print(
        f"paper: flat 990 with aggregation; 990 -> 3289 without "
        f"(ours reaches {model.bytes_per_event(4, False):.0f}; see EXPERIMENTS.md)"
    )


def run_micro_footprint() -> None:
    report = footprint_report(MicroConfig())
    print("Section 4.3 micro-diffusion footprint:")
    for key, value in report.items():
        print(f"   {key}: {value}")


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced trials and durations (~20x faster, noisier CIs)",
    )
    parser.add_argument(
        "--only",
        choices=["fig8", "fig9", "fig11", "duty", "model", "micro"],
        help="run a single experiment",
    )
    parser.add_argument(
        "--output",
        help="also write the report to this file (fenced for markdown)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        fig8_kwargs = {"trials": 2, "duration": 600.0}
        fig9_kwargs = {"trials": 2, "duration": 600.0}
        fig11_kwargs = {"iterations": 500}
    else:
        fig8_kwargs = {"trials": 5, "duration": 1800.0}
        fig9_kwargs = {"trials": 3, "duration": 1200.0}
        fig11_kwargs = {"iterations": 2000}

    experiments: List[Tuple[str, Callable[[], None]]] = [
        ("fig8", lambda: fig8_aggregation.main(**fig8_kwargs)),
        ("fig9", lambda: fig9_nested.main(**fig9_kwargs)),
        ("fig11", lambda: fig11_matching.main(**fig11_kwargs)),
        ("duty", duty_cycle.main),
        ("model", run_traffic_model),
        ("micro", run_micro_footprint),
    ]
    captured: List[str] = []
    for name, runner in experiments:
        if args.only and name != args.only:
            continue
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            print("=" * 72)
            print(f"[{name}]")
            start = time.time()
            runner()
            print(f"({name} took {time.time() - start:.1f}s)")
            print()
        text = buffer.getvalue()
        sys.stdout.write(text)
        captured.append(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write("# Experiment report\n\n```text\n")
            handle.write("".join(captured))
            handle.write("```\n")
        print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
