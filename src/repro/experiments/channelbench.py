"""Radio-channel benchmark (the engine behind BENCH_channel.json).

The reference channel pays O(N) per transmitted fragment (every
attached modem is probed for audibility) and O(N) per carrier-sense
query (every modem is scanned for an audible transmitter), so the cost
of one hop grows with the size of the *whole network* even though radio
range is local.  The neighborhood fast path
(:mod:`repro.radio.neighborhood`) replaces both scans with cached
audibility/carrier sets and an active-transmitter registry, making the
per-fragment cost O(audible) and the carrier-sense cost O(active
transmitters).

Three engines run each scenario on identical seeds, verdict-checked
against each other before reporting:

* ``reference`` — the O(N) per-fragment scan;
* ``indexed`` — the PR-4 neighborhood fast path (scalar memo walks);
* ``vectorized`` — the numpy batch engine
  (:mod:`repro.radio.vectorized`): struct-of-arrays bound rows, cached
  exact delivery rows, and set-membership carrier sense.  Skipped (and
  reported null) when numpy is unavailable or ``REPRO_NO_NUMPY`` is
  set.

Two scenarios:

* **radio flood** (primary) — every node broadcasts a periodic beacon
  through its CSMA MAC on a grid whose radio neighborhood stays
  constant while N grows.  This drives the channel directly (no
  diffusion on top), so the measured speedup is the channel's own:
  the per-fragment audibility scan and the per-backoff carrier scan
  dominate the run.
* **diffusion** (secondary) — the full stack (diffusion → frag → MAC →
  radio) with two corner sources streaming to a corner sink; shows
  what the fast path buys a whole-application run where upper layers
  share the bill.

Reported per scenario and size:

* **wall time** (best of ``REPS`` runs, to suppress scheduler noise)
  and the derived end-to-end speedup;
* **carrier-sense links examined per query** — deterministic, so it is
  what the CI perf smoke asserts on (wall time would flake): the
  reference scan examines ~N-1 links per query at every size, the
  indexed scan only the currently active transmitters.

``python -m repro.experiments.channelbench`` writes BENCH_channel.json;
``--smoke`` runs the deterministic equivalence + scan-cost checks only.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import time
from typing import Callable, Dict, List, Tuple

import repro.core.messages as core_messages
from repro.core import DiffusionConfig
from repro.mac import CsmaMac
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.radio import (
    Channel,
    DistancePropagation,
    Modem,
    Topology,
    vectorize,
    vectorized_available,
)
from repro.sim import SeedSequence, Simulator
from repro.testbed import SensorNetwork

#: (columns, rows) grids reported in BENCH_channel.json.
DEFAULT_GRIDS: Tuple[Tuple[int, int], ...] = ((7, 2), (10, 5), (15, 10))

#: the benchmark's engine axis, in report order.
ENGINES: Tuple[str, ...] = ("reference", "indexed", "vectorized")

#: wall-time runs per engine; the best is reported.
REPS = 3

#: flood grid spacing: each node hears only its immediate neighbors
#: (~4-8 nodes) regardless of N, so any per-fragment cost growth is
#: pure channel-scan overhead.
FLOOD_SPACING = 26.0
FLOOD_BEACON_INTERVAL = 0.5

#: diffusion scenario spacing keeps multihop links solid.
DIFFUSION_SPACING = 18.0

#: diffusion timers compressed so a short run exercises interest
#: flooding, reinforcement, and steady-state data forwarding.
CONFIG = DiffusionConfig(
    interest_interval=8.0,
    interest_jitter=0.3,
    exploratory_interval=8.0,
    gradient_timeout=25.0,
    reinforced_timeout=20.0,
)


def _channel_outcome(channel: Channel, extra: Dict) -> Dict:
    outcome = {
        "sent": channel.fragments_sent,
        "delivered": channel.fragments_delivered,
        "collided": channel.fragments_collided,
        "lost": channel.fragments_lost,
    }
    outcome.update(extra)
    return outcome


def _result(channel: Channel, wall: float, outcome: Dict) -> Dict:
    result = {
        "wall_seconds": wall,
        "outcome": outcome,
        "carrier_queries": channel.carrier_queries,
        "carrier_checks_per_query": (
            channel.carrier_checks / channel.carrier_queries
            if channel.carrier_queries
            else 0.0
        ),
    }
    if channel.index is not None:
        index = channel.index
        memo_total = index.memo_hits + index.memo_misses
        result["index"] = {
            "rebuilds": index.rebuilds,
            "set_builds": index.set_builds,
            "memo_hit_rate": (
                index.memo_hits / memo_total if memo_total else 0.0
            ),
        }
        result["batch_engaged"] = index.has_batch
    return result


def _normalize_engine(engine) -> str:
    """Accept the historical bool axis (False=reference, True=indexed)."""
    if engine is False:
        return "reference"
    if engine is True:
        return "indexed"
    if engine not in ENGINES:
        raise ValueError(f"unknown channel engine {engine!r}")
    return engine


def run_flood(
    columns: int,
    rows: int,
    engine="indexed",
    duration: float = 30.0,
    seed: int = 1,
) -> Dict:
    """Every node beacons through its CSMA MAC; no upper layers."""
    engine = _normalize_engine(engine)
    topo = Topology.grid(columns, rows, spacing=FLOOD_SPACING)
    sim = Simulator()
    seeds = SeedSequence(seed)
    propagation = DistancePropagation(topo, seed=seed)
    if engine == "vectorized":
        propagation = vectorize(propagation)
    channel = Channel(
        sim, propagation, seeds=seeds,
        indexed=engine != "reference",
    )
    heard = [0]

    def on_receive(payload, src, nbytes, link_dst):
        heard[0] += 1

    macs = {}
    for node_id in topo.node_ids():
        modem = Modem(sim, channel, node_id)
        modem.receive_callback = on_receive
        macs[node_id] = CsmaMac(
            sim, modem, rng=seeds.stream(f"mac:{node_id}")
        )

    interval = FLOOD_BEACON_INTERVAL

    def beacon_tick(node_id, rng):
        macs[node_id].enqueue(("beacon", node_id), 27)
        sim.schedule(
            interval * (0.5 + rng.random()), beacon_tick, node_id, rng,
            name="beacon",
        )

    for node_id in topo.node_ids():
        rng = seeds.stream(f"beacon:{node_id}")
        sim.schedule(
            rng.random() * interval, beacon_tick, node_id, rng, name="beacon"
        )

    start = time.perf_counter()
    sim.run(until=duration)
    wall = time.perf_counter() - start
    return _result(
        channel, wall, _channel_outcome(channel, {"heard": heard[0]})
    )


def run_diffusion(
    columns: int,
    rows: int,
    engine="indexed",
    duration: float = 30.0,
    seed: int = 1,
) -> Dict:
    """Full-stack run: two corner sources stream to a corner sink."""
    engine = _normalize_engine(engine)
    # msg ids draw from a process-global counter; restart it so paired
    # runs are bit-identical, not merely equivalent.
    core_messages._msg_counter = itertools.count(1)
    topo = Topology.grid(columns, rows, spacing=DIFFUSION_SPACING)
    net = SensorNetwork(
        topo, config=CONFIG, seed=seed,
        channel_indexed=engine != "reference",
        channel_vectorized=engine == "vectorized",
    )
    n_nodes = columns * rows

    delivered = []
    sink = 0
    sources = [n_nodes - 1, columns - 1]
    sub = AttributeVector.builder().eq(Key.TYPE, "chanbench").build()
    net.api(sink).subscribe(
        sub, lambda attrs, msg: delivered.append(net.sim.now)
    )
    for source in sources:
        pub = net.api(source).publish(
            AttributeVector.builder().actual(Key.TYPE, "chanbench").build()
        )
        sends = int((duration - 2.0) / 0.5)
        for i in range(sends):
            net.sim.schedule(
                2.0 + i * 0.5, net.api(source).send, pub,
                AttributeVector.builder().actual(Key.SEQUENCE, i).build(),
            )

    start = time.perf_counter()
    net.run(until=duration)
    wall = time.perf_counter() - start
    return _result(
        net.channel,
        wall,
        _channel_outcome(net.channel, {"app_delivered": len(delivered)}),
    )


def run_engines(
    runner: Callable[..., Dict],
    columns: int,
    rows: int,
    duration: float = 30.0,
    seed: int = 1,
    reps: int = 1,
    engines: Tuple[str, ...] = ENGINES,
) -> Dict[str, Dict]:
    """Run one scenario under every engine, verdict-checked.

    Every engine's outcome must equal the reference's — the whole
    benchmark is void if the fast paths change any verdict.  With
    ``reps > 1`` each engine runs that many times and reports its best
    wall time (outcomes are deterministic, so they are checked on every
    rep).  The vectorized engine is skipped (absent from the result)
    when numpy is unavailable.
    """
    engines = tuple(
        e for e in engines if e != "vectorized" or vectorized_available()
    )
    best: Dict[str, Dict] = {}
    for _ in range(reps):
        for engine in engines:
            result = runner(columns, rows, engine, duration, seed)
            baseline = best.get("reference", result if engine == "reference" else None)
            if baseline is not None and result["outcome"] != baseline["outcome"]:
                raise AssertionError(
                    f"{engine} channel diverged from reference on the "
                    f"{columns}x{rows} grid: {baseline['outcome']} != "
                    f"{result['outcome']}"
                )
            held = best.get(engine)
            if held is None or result["wall_seconds"] < held["wall_seconds"]:
                best[engine] = result
    return best


def run_pair(
    runner: Callable[..., Dict],
    columns: int,
    rows: int,
    duration: float = 30.0,
    seed: int = 1,
    reps: int = 1,
) -> Tuple[Dict, Dict]:
    """Reference + indexed runs of one scenario, verdict-checked."""
    results = run_engines(
        runner, columns, rows, duration, seed, reps,
        engines=("reference", "indexed"),
    )
    return results["reference"], results["indexed"]


def _engine_cell(result: Dict) -> Dict:
    cell = {
        "wall_seconds": round(result["wall_seconds"], 3),
        "carrier_checks_per_query": round(
            result["carrier_checks_per_query"], 2
        ),
    }
    if "index" in result:
        cell.update(result["index"])
    return cell


def _report_row(
    scenario: str, columns: int, rows: int, results: Dict[str, Dict]
) -> Dict:
    reference = results["reference"]
    fast = results["indexed"]
    row = {
        "scenario": scenario,
        "grid": f"{columns}x{rows}",
        "n_nodes": columns * rows,
        "outcome": fast["outcome"],
        "reference": _engine_cell(reference),
        "indexed": _engine_cell(fast),
        "speedup": round(
            reference["wall_seconds"] / fast["wall_seconds"], 2
        ),
    }
    vectorized = results.get("vectorized")
    if vectorized is not None:
        row["vectorized"] = _engine_cell(vectorized)
        row["vectorized"]["batch_engaged"] = vectorized.get(
            "batch_engaged", False
        )
        row["speedup_vectorized"] = round(
            reference["wall_seconds"] / vectorized["wall_seconds"], 2
        )
        row["speedup_vectorized_vs_indexed"] = round(
            fast["wall_seconds"] / vectorized["wall_seconds"], 2
        )
    return row


def run_bench(
    grids=DEFAULT_GRIDS, duration: float = 30.0, seed: int = 1
) -> Dict:
    results: List[Dict] = []
    for columns, rows in grids:
        engines = run_engines(
            run_flood, columns, rows, duration, seed, reps=REPS
        )
        results.append(_report_row("radio-flood", columns, rows, engines))
    # One full-stack data point at the largest size.
    columns, rows = grids[-1]
    engines = run_engines(
        run_diffusion, columns, rows, duration, seed, reps=REPS
    )
    results.append(_report_row("diffusion", columns, rows, engines))
    return {
        "benchmark": "radio channel delivery + carrier sense",
        "workloads": {
            "radio-flood": (
                f"every node broadcasts a 27-byte beacon every "
                f"~{FLOOD_BEACON_INTERVAL}s through CSMA on a grid at "
                f"spacing {FLOOD_SPACING} (constant radio neighborhood), "
                f"{duration}s simulated"
            ),
            "diffusion": (
                f"full diffusion stack at spacing {DIFFUSION_SPACING}, two "
                f"corner sources sending every 0.5s to a corner sink, "
                f"{duration}s simulated"
            ),
        },
        "wall_time": f"best of {REPS} runs per engine",
        "seed": seed,
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="radio channel benchmark")
    parser.add_argument(
        "--out", default="BENCH_channel.json", help="output JSON path"
    )
    parser.add_argument(
        "--duration", type=float, default=30.0,
        help="simulated seconds per run",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "deterministic CI mode: assert indexed == reference channel "
            "verdicts on two grid sizes and that the reference "
            "carrier-sense scan cost grows with N while the indexed scan "
            "cost tracks active transmitters (counters, not wall time, "
            "so it cannot flake)"
        ),
    )
    args = parser.parse_args(argv)

    if args.smoke:
        smoke_duration = 12.0
        rows = []
        for columns, nrows in ((7, 2), (10, 5)):
            reference, fast = run_pair(
                run_flood, columns, nrows, smoke_duration
            )
            rows.append((reference, fast))
            n = columns * nrows
            print(
                f"channel smoke flood {columns}x{nrows}: outcomes identical "
                f"({fast['outcome']['delivered']} delivered, "
                f"{fast['outcome']['collided']} collided), carrier "
                f"checks/query reference={reference['carrier_checks_per_query']:.2f} "
                f"indexed={fast['carrier_checks_per_query']:.2f}"
            )
            # The reference scan walks the whole modem table per query
            # (early exit on a busy carrier keeps it just under N-1).
            if reference["carrier_checks_per_query"] < (n - 1) / 2:
                print(
                    f"FAIL: reference scan should examine ~{n - 1} links "
                    f"per query", file=sys.stderr,
                )
                return 1
            # The indexed scan examines only currently active
            # transmitters (its checks/query IS the mean number on the
            # air, by construction), so it must sit far below the
            # whole-table scan at every size.
            if fast["carrier_checks_per_query"] > reference["carrier_checks_per_query"] / 8:
                print(
                    f"FAIL: indexed carrier-sense cost "
                    f"({fast['carrier_checks_per_query']:.2f} checks/query) "
                    f"is not well below the reference scan "
                    f"({reference['carrier_checks_per_query']:.2f})",
                    file=sys.stderr,
                )
                return 1
        small, large = rows[0], rows[1]
        small_ref = small[0]["carrier_checks_per_query"]
        large_ref = large[0]["carrier_checks_per_query"]
        if large_ref < 2.0 * small_ref:
            print(
                f"FAIL: reference carrier-sense cost should grow with N "
                f"({small_ref:.2f} -> {large_ref:.2f} checks/query)",
                file=sys.stderr,
            )
            return 1
        # Full-stack equivalence on one small grid (the pytest suite
        # covers this in depth; here it guards the CLI wiring).
        run_pair(run_diffusion, 7, 2, smoke_duration)
        print("channel smoke diffusion 7x2: outcomes identical")
        # Vectorized gate: the batch engine must produce identical
        # verdicts, and must actually engage when numpy is present.
        if vectorized_available():
            results = run_engines(run_flood, 10, 5, smoke_duration)
            if "vectorized" not in results:
                print("FAIL: vectorized engine did not run", file=sys.stderr)
                return 1
            vec = results["vectorized"]
            if vec["outcome"] != results["reference"]["outcome"]:
                print(
                    "FAIL: vectorized outcome diverged", file=sys.stderr
                )
                return 1
            if not vec.get("batch_engaged"):
                print(
                    "FAIL: vectorized run fell back to the scalar path",
                    file=sys.stderr,
                )
                return 1
            run_engines(run_diffusion, 7, 2, smoke_duration)
            print(
                "channel smoke vectorized: outcomes identical, batch "
                "path engaged"
            )
        else:
            print(
                "channel smoke vectorized: skipped (numpy unavailable "
                "or REPRO_NO_NUMPY set)"
            )
        return 0

    report = run_bench(duration=args.duration)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    for row in report["results"]:
        line = (
            f"{row['scenario']:>12} {row['n_nodes']:>4} nodes ({row['grid']}): "
            f"{row['reference']['wall_seconds']:>7.3f}s -> "
            f"{row['indexed']['wall_seconds']:>7.3f}s "
            f"({row['speedup']:.2f}x)"
        )
        if "vectorized" in row:
            line += (
                f" -> {row['vectorized']['wall_seconds']:>7.3f}s vectorized "
                f"({row['speedup_vectorized']:.2f}x vs reference, "
                f"{row['speedup_vectorized_vs_indexed']:.2f}x vs indexed)"
            )
        line += (
            f", carrier checks/query "
            f"{row['reference']['carrier_checks_per_query']} -> "
            f"{row['indexed']['carrier_checks_per_query']}"
        )
        print(line)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
