"""Canned resilience scenarios: one network, one fault, measured repair.

:func:`resilience_run` is the workhorse behind the scenario tests, the
builtin resilience campaign, and the ``faults`` CLI: a 4×3 grid with a
corner sink and the opposite-corner source streaming data, one
:func:`builtin_plan` fault injected mid-run, invariants monitored
throughout, and the repair report returned as a JSON-safe dict.  Runs
are bit-identical per (plan, seed): the fault timeline and every repair
metric replay exactly.

:func:`clock_skew_run` is the timesync variant: a single-hop square
running RBS (:mod:`repro.apps.timesync`) whose participant clocks live
in the fault engine, so a :class:`~repro.faults.plan.ClockSkew` action
knocks one clock out mid-run and the periodic sync rounds must pull it
back — repair measured in sync rounds instead of exploratory intervals.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

import repro.core.messages as core_messages
from repro.apps.timesync import SyncCoordinator, SyncParticipant, TimeBeacon
from repro.core import DiffusionConfig
from repro.faults.engine import FaultEngine
from repro.faults.metrics import ResilienceProbe
from repro.faults.monitors import MonitorSuite
from repro.faults.plan import (
    ClockSkew,
    EnergyBrownout,
    FaultPlan,
    FragmentCorruption,
    LinkFlap,
    NodeCrash,
    Partition,
    PlanError,
)
from repro.radio import Topology
from repro.sim.rng import make_rng
from repro.testbed import SensorNetwork

#: the standard resilience grid: 4 columns × 3 rows, 15 m spacing,
#: row-major ids — sink and source at opposite corners, everything else
#: a potential relay.
GRID_COLUMNS = 4
GRID_ROWS = 3
GRID_SPACING = 15.0
SINK = 0
SOURCE = GRID_COLUMNS * GRID_ROWS - 1
#: a mid-grid relay on the sink–source diagonal.
RELAY = GRID_COLUMNS + 1

DATA_TYPE = "fault-demo"

#: name -> plan factory over the standard grid.  Fault windows sit in
#: the middle of the default 160 s run, after paths have formed.
_BUILTIN_PLANS = {
    # Kill the diagonal relay, power-cycle it 30 s later (state wiped).
    "crash": lambda: FaultPlan(
        (NodeCrash(node=RELAY, at=40.0, recover_at=70.0, clear_state=True),)
    ),
    # Flap the sink's diagonal link three times.
    "link-flap": lambda: FaultPlan(
        (LinkFlap(a=SINK, b=RELAY, at=40.0, down=8.0, flaps=3, period=16.0),)
    ),
    # Split the grid down the middle for twice the gradient lifetime.
    "partition": lambda: FaultPlan(
        (
            Partition(
                groups=(
                    tuple(
                        row * GRID_COLUMNS + col
                        for row in range(GRID_ROWS)
                        for col in (0, 1)
                    ),
                    tuple(
                        row * GRID_COLUMNS + col
                        for row in range(GRID_ROWS)
                        for col in (2, 3)
                    ),
                ),
                at=40.0,
                heal_at=90.0,
            ),
        )
    ),
    # Step a relay's clock by two seconds (timesync scenarios use this).
    "clock-skew": lambda: FaultPlan(
        (ClockSkew(node=RELAY, at=40.0, offset=2.0),)
    ),
    # Half of the relay's inbound fragments die at the link layer.
    "corruption": lambda: FaultPlan(
        (FragmentCorruption(node=RELAY, at=40.0, duration=30.0, rate=0.5),)
    ),
    # The relay browns out to a 20 % duty cycle for 30 s.
    "brownout": lambda: FaultPlan(
        (EnergyBrownout(node=RELAY, at=40.0, duration=30.0, duty_cycle=0.2),)
    ),
}


def builtin_names() -> List[str]:
    return sorted(_BUILTIN_PLANS)


def builtin_plan(name: str) -> FaultPlan:
    """The named builtin plan over the standard grid."""
    factory = _BUILTIN_PLANS.get(name)
    if factory is None:
        raise PlanError(
            f"unknown builtin plan {name!r} (known: {', '.join(builtin_names())})"
        )
    return factory()


def _compressed_config(exploratory_interval: float) -> DiffusionConfig:
    """Timer set compressed so soft state turns over inside short runs
    (the paper's 60 s/100 s timers scaled down together)."""
    return DiffusionConfig(
        interest_interval=10.0,
        interest_jitter=0.5,
        gradient_timeout=25.0,
        exploratory_interval=exploratory_interval,
        reinforced_timeout=20.0,
        reinforcement_jitter=0.3,
    )


def resilience_run(
    fault: str = "crash",
    seed: int = 1,
    exploratory_interval: float = 8.0,
    duration: float = 160.0,
    plan: Optional[FaultPlan] = None,
    data_period: float = 1.0,
    flight_recorder: Optional[str] = None,
    monitor_max_entries: int = 32,
) -> dict:
    """One fault on the standard grid; returns the JSON-safe verdict.

    With ``flight_recorder`` set to a path, a
    :class:`~repro.sim.trace.FlightRecorder` rides the trace bus and the
    monitors dump its rings there on the first invariant violation (or,
    if the run stays clean, at the end — a postmortem of a healthy run
    is still a trace worth keeping).  ``monitor_max_entries`` is the
    gradient-bound threshold, exposed so demos/tests can tighten it to
    provoke a violation on an otherwise healthy run.
    """
    # msg ids draw from a process-global counter; restart it so paired
    # runs are bit-identical, not merely equivalent (channelbench does
    # the same for its reference/indexed comparisons).
    core_messages._msg_counter = itertools.count(1)
    from repro.naming import AttributeVector
    from repro.naming.keys import Key
    from repro.sim.trace import FlightRecorder

    network = SensorNetwork(
        Topology.grid(GRID_COLUMNS, GRID_ROWS, spacing=GRID_SPACING),
        seed=seed,
        config=_compressed_config(exploratory_interval),
    )
    active_plan = plan if plan is not None else builtin_plan(fault)
    engine = FaultEngine(network, active_plan)
    recorder = (
        FlightRecorder(network.trace) if flight_recorder is not None else None
    )
    monitors = MonitorSuite(
        network,
        max_entries=monitor_max_entries,
        recorder=recorder,
        dump_path=flight_recorder,
    )
    probe = ResilienceProbe(network, SINK, sources=[SOURCE])

    delivered: List[float] = []
    network.api(SINK).subscribe(
        AttributeVector.builder().eq(Key.TYPE, DATA_TYPE).build(),
        lambda attrs, msg: delivered.append(network.sim.now),
    )
    publication = network.api(SOURCE).publish(
        AttributeVector.builder().actual(Key.TYPE, DATA_TYPE).build()
    )
    sends = int((duration - 7.0) / data_period)
    for i in range(sends):
        network.sim.schedule(
            5.0 + i * data_period,
            network.api(SOURCE).send,
            publication,
            AttributeVector.builder().actual(Key.SEQUENCE, i).build(),
            name="faults.source-send",
        )

    network.run(until=duration)
    monitors.check()
    monitors.detach()
    probe.record_metrics()
    probe.detach()
    report = probe.report(engine.timeline, exploratory_interval, duration)
    result = {
        "fault": fault if plan is None else "custom",
        "seed": seed,
        "exploratory_interval": exploratory_interval,
        "duration": duration,
        "timeline": engine.timeline,
        "report": report,
        "fragments_corrupted": engine.fragments_corrupted,
        "violations": [v.describe() for v in monitors.violations],
        "invariants_ok": monitors.ok,
    }
    if recorder is not None:
        recorder.detach()
        if monitors.dumped is None:
            # Clean run: dump the tail anyway so the requested
            # postmortem file always exists.
            monitors.dumped = recorder.dump(
                flight_recorder, reason="end-of-run"
            )
        result["flight_recorder"] = {
            "path": str(flight_recorder),
            "records": monitors.dumped,
            "records_seen": recorder.records_seen,
        }
    return result


def clock_skew_run(
    seed: int = 1,
    sync_interval: float = 8.0,
    duration: float = 120.0,
    skew: float = 2.0,
    skew_at: float = 40.0,
    threshold: float = 0.25,
) -> dict:
    """RBS under a clock-skew fault: one participant's clock steps by
    ``skew`` seconds mid-run; periodic sync rounds must re-pull it
    within the threshold.  Repair is measured in sync rounds."""
    core_messages._msg_counter = itertools.count(1)
    # A single-hop square: every node hears every beacon directly, so
    # observation differences are pure clock offset (no path-delay
    # bias), which is RBS's operating assumption.
    topology = Topology()
    topology.add_node(0, 0.0, 0.0)     # beacon
    topology.add_node(1, 12.0, 0.0)    # reference participant + coordinator
    topology.add_node(2, 0.0, 12.0)
    topology.add_node(3, 12.0, 12.0)   # the clock that gets skewed
    network = SensorNetwork(
        topology, seed=seed, config=_compressed_config(10.0)
    )
    plan = FaultPlan((ClockSkew(node=3, at=skew_at, offset=skew),))
    engine = FaultEngine(network, plan)
    monitors = MonitorSuite(network)

    # Start the participant clocks deterministically off-true, so the
    # first sync rounds do real work before the fault ever lands.
    init = make_rng(seed, "faults:clock-init")
    participants = {}
    for node in (1, 2, 3):
        clock = engine.clock(node)
        clock.offset = init.uniform(-0.5, 0.5)
        participants[node] = SyncParticipant(network.api(node), clock)
    beacon = TimeBeacon(network.api(0), interval=2.0)
    coordinator = SyncCoordinator(network.api(1))

    errors: List[List[float]] = []

    def sync_round() -> None:
        now = network.sim.now
        coordinator.apply_corrections(
            {n: engine.clock(n) for n in (1, 2, 3)}, reference=1
        )
        # Slide the estimation window: stale observations straddle any
        # step (correction or fault) and would bias the next estimate.
        coordinator.reset_window()
        errors.append(
            [now, engine.clock(3).error_vs(engine.clock(1), now)]
        )
        network.sim.schedule(sync_interval, sync_round, name="rbs.sync-round")

    network.sim.schedule(sync_interval, sync_round, name="rbs.sync-round")
    network.run(until=duration)
    beacon.stop()
    monitors.check()
    monitors.detach()

    repaired_at: Optional[float] = None
    for t, error in errors:
        if t <= skew_at:
            continue
        if error <= threshold:
            repaired_at = t
            break
    return {
        "seed": seed,
        "skew": skew,
        "skew_at": skew_at,
        "sync_interval": sync_interval,
        "threshold": threshold,
        "errors": errors,
        "repaired_at": repaired_at,
        "repair_rounds": (
            (repaired_at - skew_at) / sync_interval
            if repaired_at is not None
            else None
        ),
        "timeline": engine.timeline,
        "violations": [v.describe() for v in monitors.violations],
        "invariants_ok": monitors.ok,
    }
