"""Deterministic fault injection and resilience verification.

The paper's robustness story — soft state plus periodic exploratory
messages "adjust gradients in the case of network changes (due to node
failure, energy depletion, or mobility)" — becomes a measured property
here:

* :mod:`repro.faults.plan` — the FaultPlan DSL: typed, schedulable,
  JSON-round-trippable fault actions;
* :mod:`repro.faults.overlay` — link cuts/partitions as a propagation
  overlay honoring the radio fast-path epoch contract;
* :mod:`repro.faults.engine` — executes a plan against a
  SensorNetwork, seed-reproducibly, recording a timeline;
* :mod:`repro.faults.monitors` — online invariant monitors (forwarding
  loops, gradient bounds, reinforcement uniqueness, reboot coherence);
* :mod:`repro.faults.metrics` — delivery-ratio and time-to-repair
  accounting;
* :mod:`repro.faults.scenarios` — canned resilience runs behind the
  tests, the builtin campaign, and ``python -m repro faults``.
"""

from repro.faults.engine import FaultEngine
from repro.faults.metrics import ResilienceProbe
from repro.faults.monitors import (
    InvariantViolationError,
    MonitorSuite,
    Violation,
)
from repro.faults.overlay import FaultOverlayPropagation
from repro.faults.plan import (
    ACTION_KINDS,
    ClockSkew,
    EnergyBrownout,
    FaultPlan,
    FragmentCorruption,
    LinkFlap,
    NodeCrash,
    Partition,
    PlanError,
)
from repro.faults.scenarios import (
    builtin_names,
    builtin_plan,
    clock_skew_run,
    resilience_run,
)

__all__ = [
    "ACTION_KINDS",
    "ClockSkew",
    "EnergyBrownout",
    "FaultEngine",
    "FaultOverlayPropagation",
    "FaultPlan",
    "FragmentCorruption",
    "InvariantViolationError",
    "LinkFlap",
    "MonitorSuite",
    "NodeCrash",
    "Partition",
    "PlanError",
    "ResilienceProbe",
    "Violation",
    "builtin_names",
    "builtin_plan",
    "clock_skew_run",
    "resilience_run",
]
