"""Fault overlay: link cuts and partitions on top of any propagation model.

Link-level faults (flaps, partitions) are injected *below* the channel,
as a propagation overlay: a cut directed link answers PRR 0 regardless
of what the base model says, so the dead link disappears from both
delivery and carrier sensing.  Everything else delegates to the base
model unchanged.

The overlay honors the radio fast-path contract
(:class:`~repro.radio.propagation.FastPathPropagation`): its epoch token
pairs an overlay version counter with the base epoch, and every
mutation (block, unblock, partition, heal) bumps the version — so a
:class:`~repro.radio.neighborhood.NeighborhoodIndex` built over the
overlay drops its cached audibility/carrier sets the moment the fault
landscape changes, exactly as it would for a topology move.  A cut
link's bound is 0 (never underestimating the truth — the truth *is* 0)
and its window is valid forever (any change bumps the epoch first).

Partition semantics: nodes assigned to different groups cannot hear
each other; nodes in the same group, and nodes assigned to *no* group,
are untouched.  Unlisted nodes therefore straddle the partition — handy
for modelling a mobile node that both islands can still reach.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Set, Tuple


class FaultOverlayPropagation:
    """Wraps a propagation model with a mutable set of dead links."""

    def __init__(self, base) -> None:
        self.base = base
        self._blocked: Set[Tuple[int, int]] = set()
        self._group: Dict[int, int] = {}
        self._version = 0
        #: mutation count, for tests and reporting.
        self.changes = 0

    # -- mutation ------------------------------------------------------------

    def _bump(self) -> None:
        self._version += 1
        self.changes += 1

    def block_link(self, src: int, dst: int, symmetric: bool = True) -> None:
        self._blocked.add((src, dst))
        if symmetric:
            self._blocked.add((dst, src))
        self._bump()

    def unblock_link(self, src: int, dst: int, symmetric: bool = True) -> None:
        self._blocked.discard((src, dst))
        if symmetric:
            self._blocked.discard((dst, src))
        self._bump()

    def set_partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Install a partition; replaces any existing one."""
        assignment: Dict[int, int] = {}
        for group_id, group in enumerate(groups):
            for node in group:
                assignment[node] = group_id
        self._group = assignment
        self._bump()

    def clear_partition(self) -> None:
        self._group = {}
        self._bump()

    # -- queries -------------------------------------------------------------

    def is_cut(self, src: int, dst: int) -> bool:
        if (src, dst) in self._blocked:
            return True
        if self._group:
            src_group = self._group.get(src)
            dst_group = self._group.get(dst)
            if src_group is not None and dst_group is not None:
                return src_group != dst_group
        return False

    def link_prr(self, src: int, dst: int, now: float) -> float:
        if self.is_cut(src, dst):
            return 0.0
        return self.base.link_prr(src, dst, now)

    # -- fast-path protocol (repro.radio.neighborhood) -----------------------

    def prr_epoch(self) -> object:
        # Raises AttributeError when the base model does not support the
        # fast path; supports_fast_path treats that as "reference scan".
        return (self._version, self.base.prr_epoch())

    def link_prr_bound(self, src: int, dst: int) -> float:
        if self.is_cut(src, dst):
            return 0.0
        return self.base.link_prr_bound(src, dst)

    def link_prr_window(self, src: int, dst: int, now: float) -> Tuple[float, float]:
        if self.is_cut(src, dst):
            # Constant until the next mutation, which bumps the epoch
            # and drops every memoized window anyway.
            return 0.0, math.inf
        return self.base.link_prr_window(src, dst, now)
