"""FaultPlan: a declarative, schedulable description of what goes wrong.

The paper motivates diffusion's soft state with "node failure, energy
depletion, or mobility"; a *plan* makes those events first-class
experiment inputs instead of hand-rolled scripts.  A plan is a sequence
of typed fault actions, each pinned to simulation time:

* :class:`NodeCrash` — kill a node; optionally reboot it later, with
  the reboot wiping soft state (gradients, cache, reassembly buffers)
  the way a real power cycle would;
* :class:`LinkFlap` — force one link dead for a window, optionally
  repeating (flapping);
* :class:`Partition` — cut every link between node groups, then heal;
* :class:`ClockSkew` — step/skew a node's local clock;
* :class:`FragmentCorruption` — corrupt inbound fragments at a node
  (truncation/CRC failure at the link layer) with a given probability;
* :class:`EnergyBrownout` — degrade a node to a forced duty cycle, as a
  browning-out battery would.

Plans are plain frozen dataclasses: hashable, comparable, and
round-trippable through JSON (:meth:`FaultPlan.to_json` /
:meth:`FaultPlan.from_json`), so a campaign trial or a CLI run can
carry its fault schedule as data.  Validation is separate from
construction — :meth:`FaultPlan.validate` needs the network's node ids.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import ClassVar, Dict, Iterable, List, Optional, Tuple, Type, Union


class PlanError(ValueError):
    """A fault plan that cannot be executed as written."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise PlanError(message)


@dataclass(frozen=True)
class NodeCrash:
    """Kill ``node`` at ``at``; optionally reboot it at ``recover_at``.

    ``clear_state`` chooses reboot semantics: True (default) wipes the
    node's soft state — gradients, duplicate cache, partial reassembly —
    so repair must come from exploratory traffic; False re-attaches the
    radio with pre-crash state intact (the legacy recovery model).
    """

    kind: ClassVar[str] = "node-crash"

    node: int
    at: float
    recover_at: Optional[float] = None
    clear_state: bool = True

    def validate(self, node_ids: Iterable[int]) -> None:
        _require(self.node in set(node_ids), f"unknown node {self.node}")
        _require(self.at >= 0.0, "crash time must be non-negative")
        if self.recover_at is not None:
            _require(
                self.recover_at > self.at,
                f"recovery at {self.recover_at} must follow crash at {self.at}",
            )

    def window(self) -> Tuple[float, Optional[float]]:
        return self.at, self.recover_at


@dataclass(frozen=True)
class LinkFlap:
    """Force the ``a``–``b`` link dead for ``down`` seconds, ``flaps``
    times, ``period`` seconds apart (default: back up as long as down).
    ``symmetric`` cuts both directions (the default)."""

    kind: ClassVar[str] = "link-flap"

    a: int
    b: int
    at: float
    down: float = 10.0
    flaps: int = 1
    period: Optional[float] = None
    symmetric: bool = True

    def validate(self, node_ids: Iterable[int]) -> None:
        known = set(node_ids)
        _require(self.a in known, f"unknown node {self.a}")
        _require(self.b in known, f"unknown node {self.b}")
        _require(self.a != self.b, "a link needs two distinct endpoints")
        _require(self.at >= 0.0, "flap time must be non-negative")
        _require(self.down > 0.0, "down duration must be positive")
        _require(self.flaps >= 1, "flaps must be >= 1")
        if self.flaps > 1:
            _require(
                self.effective_period > self.down,
                "flap period must exceed the down window",
            )

    @property
    def effective_period(self) -> float:
        return self.period if self.period is not None else 2.0 * self.down

    def window(self) -> Tuple[float, Optional[float]]:
        last_down = self.at + (self.flaps - 1) * self.effective_period
        return self.at, last_down + self.down


@dataclass(frozen=True)
class Partition:
    """Cut every link between the given node groups from ``at`` to
    ``heal_at``.  Nodes not listed in any group keep all their links
    (they straddle the partition — e.g. a mobile node)."""

    kind: ClassVar[str] = "partition"

    groups: Tuple[Tuple[int, ...], ...]
    at: float
    heal_at: float

    def validate(self, node_ids: Iterable[int]) -> None:
        known = set(node_ids)
        _require(len(self.groups) >= 2, "a partition needs at least two groups")
        seen: set = set()
        for group in self.groups:
            _require(len(group) >= 1, "partition groups must be non-empty")
            for node in group:
                _require(node in known, f"unknown node {node}")
                _require(node not in seen, f"node {node} appears in two groups")
                seen.add(node)
        _require(self.at >= 0.0, "partition time must be non-negative")
        _require(
            self.heal_at > self.at,
            f"heal at {self.heal_at} must follow partition at {self.at}",
        )

    def window(self) -> Tuple[float, Optional[float]]:
        return self.at, self.heal_at


@dataclass(frozen=True)
class ClockSkew:
    """Step ``node``'s local clock by ``offset`` seconds and/or add
    ``drift_ppm`` of frequency error at ``at`` (a crystal glitch, a
    temperature step, a bad battery)."""

    kind: ClassVar[str] = "clock-skew"

    node: int
    at: float
    offset: float = 0.0
    drift_ppm: float = 0.0

    def validate(self, node_ids: Iterable[int]) -> None:
        _require(self.node in set(node_ids), f"unknown node {self.node}")
        _require(self.at >= 0.0, "skew time must be non-negative")
        _require(
            self.offset != 0.0 or self.drift_ppm != 0.0,
            "clock skew must change offset or drift",
        )

    def window(self) -> Tuple[float, Optional[float]]:
        return self.at, self.at


@dataclass(frozen=True)
class FragmentCorruption:
    """Corrupt inbound fragments at ``node`` with probability ``rate``
    during [``at``, ``at + duration``) — truncation or CRC failure at
    the link layer; a corrupted fragment never reaches reassembly, so
    one hit loses its whole message (no ARQ)."""

    kind: ClassVar[str] = "fragment-corruption"

    node: int
    at: float
    duration: float
    rate: float = 0.5

    def validate(self, node_ids: Iterable[int]) -> None:
        _require(self.node in set(node_ids), f"unknown node {self.node}")
        _require(self.at >= 0.0, "corruption time must be non-negative")
        _require(self.duration > 0.0, "corruption duration must be positive")
        _require(0.0 < self.rate <= 1.0, "corruption rate must be in (0, 1]")

    def window(self) -> Tuple[float, Optional[float]]:
        return self.at, self.at + self.duration


@dataclass(frozen=True)
class EnergyBrownout:
    """Force ``node`` onto an emergency ``duty_cycle`` during
    [``at``, ``at + duration``): the radio sleeps for the first
    ``(1 - duty_cycle)`` of every ``period`` and transmissions defer to
    the awake slice, as a browning-out node's power manager would."""

    kind: ClassVar[str] = "energy-brownout"

    node: int
    at: float
    duration: float
    duty_cycle: float = 0.2
    period: float = 1.0

    def validate(self, node_ids: Iterable[int]) -> None:
        _require(self.node in set(node_ids), f"unknown node {self.node}")
        _require(self.at >= 0.0, "brownout time must be non-negative")
        _require(self.duration > 0.0, "brownout duration must be positive")
        _require(0.0 < self.duty_cycle < 1.0, "duty_cycle must be in (0, 1)")
        _require(self.period > 0.0, "period must be positive")

    def window(self) -> Tuple[float, Optional[float]]:
        return self.at, self.at + self.duration


FaultAction = Union[
    NodeCrash,
    LinkFlap,
    Partition,
    ClockSkew,
    FragmentCorruption,
    EnergyBrownout,
]

ACTION_KINDS: Dict[str, Type] = {
    cls.kind: cls
    for cls in (
        NodeCrash,
        LinkFlap,
        Partition,
        ClockSkew,
        FragmentCorruption,
        EnergyBrownout,
    )
}

#: actions that alter link reachability and therefore need the
#: propagation overlay installed (see :mod:`repro.faults.overlay`).
LINK_ACTIONS = (LinkFlap, Partition)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of fault actions."""

    actions: Tuple[FaultAction, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Accept any iterable of actions at construction.
        object.__setattr__(self, "actions", tuple(self.actions))

    def __len__(self) -> int:
        return len(self.actions)

    def validate(self, node_ids: Iterable[int]) -> "FaultPlan":
        """Check every action against the network; returns self."""
        known = list(node_ids)
        for index, action in enumerate(self.actions):
            try:
                action.validate(known)
            except PlanError as exc:
                raise PlanError(f"action {index} ({action.kind}): {exc}") from None
        return self

    def needs_overlay(self) -> bool:
        return any(isinstance(action, LINK_ACTIONS) for action in self.actions)

    def horizon(self) -> float:
        """The latest time any action touches — a lower bound on how
        long a run must last to see every fault complete."""
        latest = 0.0
        for action in self.actions:
            start, end = action.window()
            latest = max(latest, end if end is not None else start)
        return latest

    # -- serialization -------------------------------------------------------

    def to_json(self) -> dict:
        payload = []
        for action in self.actions:
            entry = {"kind": action.kind}
            entry.update(asdict(action))
            payload.append(entry)
        return {"actions": payload}

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        raw_actions = data.get("actions")
        if not isinstance(raw_actions, list):
            raise PlanError("plan JSON must have an 'actions' list")
        actions: List[FaultAction] = []
        for index, raw in enumerate(raw_actions):
            if not isinstance(raw, dict) or "kind" not in raw:
                raise PlanError(f"action {index} must be an object with a 'kind'")
            kind = raw["kind"]
            action_cls = ACTION_KINDS.get(kind)
            if action_cls is None:
                known = ", ".join(sorted(ACTION_KINDS))
                raise PlanError(f"action {index}: unknown kind {kind!r} (known: {known})")
            known_fields = {f.name for f in fields(action_cls)}
            kwargs = {}
            for key, value in raw.items():
                if key == "kind":
                    continue
                if key not in known_fields:
                    raise PlanError(f"action {index} ({kind}): unknown field {key!r}")
                kwargs[key] = value
            if action_cls is Partition and "groups" in kwargs:
                kwargs["groups"] = tuple(tuple(group) for group in kwargs["groups"])
            try:
                actions.append(action_cls(**kwargs))
            except TypeError as exc:
                raise PlanError(f"action {index} ({kind}): {exc}") from None
        return cls(actions=tuple(actions))
