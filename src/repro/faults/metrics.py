"""Repair metrics: how badly a fault hurt, and how fast repair came.

:class:`ResilienceProbe` watches the trace bus for data originated at
the sources (``path.origin``) and delivered at the sink
(``app.deliver``), then derives:

* **delivery ratio** over any window — during the fault, after the heal;
* **time-to-repair** — from the heal instant to the first delivery of a
  message originated *after* the heal (pre-fault messages still in
  flight don't count as repair);
* **repair intervals** — time-to-repair divided by the exploratory
  interval, the paper-native unit: soft-state repair cannot outrun the
  exploratory clock, so "repaired within k intervals" is the bounded
  reconvergence claim the tests assert.

Gauges land in the active :class:`~repro.sim.metrics.MetricsRegistry`
via :meth:`record_metrics`, so campaign trials export them uniformly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.metrics import current_registry
from repro.sim.trace import TraceRecord

#: message types that count as data for delivery accounting.
_DATA_TYPES = ("DATA", "EXPLORATORY_DATA")


class ResilienceProbe:
    """Delivery bookkeeping for one sink and a set of sources."""

    def __init__(self, network, sink: int, sources: Optional[List[int]] = None) -> None:
        self.network = network
        self.sink = sink
        self.sources = set(sources) if sources is not None else None
        #: (origination time, trace id), in event order.
        self.origins: List[Tuple[float, str]] = []
        #: trace id -> first delivery time at the sink.
        self.delivered: Dict[str, float] = {}
        self._attached = True
        network.trace.subscribe("path.origin", self._on_origin)
        network.trace.subscribe("app.deliver", self._on_deliver)

    def _on_origin(self, record: TraceRecord) -> None:
        if record.data.get("msg_type") not in _DATA_TYPES:
            return
        if self.sources is not None and record.node not in self.sources:
            return
        trace = record.data.get("trace")
        if trace is not None:
            self.origins.append((record.time, trace))

    def _on_deliver(self, record: TraceRecord) -> None:
        if record.node != self.sink:
            return
        if record.data.get("msg_type") not in _DATA_TYPES:
            return
        trace = record.data.get("trace")
        if trace is not None and trace not in self.delivered:
            self.delivered[trace] = record.time

    def detach(self) -> None:
        if not self._attached:
            return
        self._attached = False
        self.network.trace.unsubscribe("path.origin", self._on_origin)
        self.network.trace.unsubscribe("app.deliver", self._on_deliver)

    # -- derived metrics ------------------------------------------------------

    def delivery_ratio(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> Optional[float]:
        """Delivered fraction of messages originated in [start, end);
        None when nothing was originated in the window."""
        originated = 0
        delivered = 0
        for t, trace in self.origins:
            if t < start or (end is not None and t >= end):
                continue
            originated += 1
            if trace in self.delivered:
                delivered += 1
        if originated == 0:
            return None
        return delivered / originated

    def time_to_repair(self, heal_at: float) -> Optional[float]:
        """Delay from ``heal_at`` to the first delivery of a message
        originated at or after ``heal_at``; None if none arrived."""
        best: Optional[float] = None
        for t, trace in self.origins:
            if t < heal_at:
                continue
            arrival = self.delivered.get(trace)
            if arrival is None:
                continue
            delay = arrival - heal_at
            if best is None or delay < best:
                best = delay
        return best

    # -- reporting ------------------------------------------------------------

    def report(
        self,
        timeline: List[dict],
        exploratory_interval: float,
        run_until: float,
    ) -> dict:
        """Per-fault repair summary against an engine timeline."""
        by_index: Dict[int, List[dict]] = {}
        for entry in timeline:
            by_index.setdefault(entry["index"], []).append(entry)
        faults = []
        for index in sorted(by_index):
            entries = by_index[index]
            injects = [e["t"] for e in entries if e["phase"] == "inject"]
            heals = [e["t"] for e in entries if e["phase"] == "heal"]
            inject_at = min(injects) if injects else None
            heal_at = max(heals) if heals else None
            window_end = heal_at if heal_at is not None else run_until
            during = (
                self.delivery_ratio(inject_at, window_end)
                if inject_at is not None
                else None
            )
            after = (
                self.delivery_ratio(heal_at, run_until)
                if heal_at is not None
                else None
            )
            ttr = self.time_to_repair(heal_at) if heal_at is not None else None
            faults.append(
                {
                    "index": index,
                    "kind": entries[0]["kind"],
                    "inject_at": inject_at,
                    "heal_at": heal_at,
                    "delivery_during": during,
                    "delivery_after": after,
                    "time_to_repair": ttr,
                    "repair_intervals": (
                        ttr / exploratory_interval if ttr is not None else None
                    ),
                }
            )
        return {
            "faults": faults,
            "overall_delivery": self.delivery_ratio(0.0, run_until),
            "messages_originated": len(self.origins),
            "messages_delivered": len(self.delivered),
            "exploratory_interval": exploratory_interval,
        }

    def record_metrics(self) -> None:
        """Export headline numbers to the active metrics registry."""
        registry = current_registry()
        overall = self.delivery_ratio()
        if overall is not None:
            registry.gauge("faults.delivery_ratio").set(overall)
        registry.gauge("faults.messages_originated").set(len(self.origins))
        registry.gauge("faults.messages_delivered").set(len(self.delivered))
