"""Online invariant monitors: what must stay true while things break.

The monitors ride the observability buses (PR-2): trace-driven checks
react to individual protocol events; state-driven checks probe node
tables on a periodic schedule.  A violated invariant is recorded as a
:class:`Violation` — with the causal trace id when one exists — and
counted on the ``faults.violations`` metric; :meth:`MonitorSuite.assert_ok`
raises so tests fail loudly.

Invariants (from the paper's protocol obligations):

no-forwarding-loop
    A data message must never be transmitted by the same node at two
    different hop counts — that is a routing loop.  (One node may
    legitimately transmit the same trace several times at the *same*
    hop count: exploratory data fans out to every gradient neighbor.)

gradient-bound
    Soft state must stay bounded: a node's gradient table holds at most
    ``max_entries`` interests, and no entry accumulates more gradients
    than the network has nodes.  Expiry sweeps, not faults, enforce
    this — a fault that breaks sweeping shows up here.

reinforcement-uniqueness
    A sink reinforces at most ``multipath_degree`` distinct next-hops
    per data origin (Section 4's "reinforce one particular neighbor"),
    with no duplicates in the preferred list.

reboot-coherence
    Immediately after a reboot-with-state-loss the node's gradient
    table and duplicate cache must be empty — inherited soft state
    would fake repair and mask real convergence time.

custody-conservation
    Custody is a promise: a block accepted into a
    :class:`~repro.dtn.custody.CustodyStore` must leave it only through
    an explicit ``custody.transfer`` or ``custody.expire`` event, and
    those events must refer to a block that was actually accepted.  The
    trace-driven side mirrors the ``custody.*`` bus events into a
    held-set; the state-driven side (for agents registered via
    :meth:`MonitorSuite.watch_custody`) cross-validates each store
    against that mirror on every probe — an entry in the store with no
    accept event is a ghost, a mirrored promise missing from the store
    was dropped silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.sim.metrics import current_registry
from repro.sim.trace import FlightRecorder, TraceRecord


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    time: float
    invariant: str
    node: Optional[int]
    trace: Optional[str] = None
    detail: Dict[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        where = f"node {self.node}" if self.node is not None else "network"
        cause = f" trace={self.trace}" if self.trace else ""
        extra = f" {self.detail}" if self.detail else ""
        return f"t={self.time:.3f} [{self.invariant}] {where}{cause}{extra}"


class InvariantViolationError(AssertionError):
    """Raised by :meth:`MonitorSuite.assert_ok` when invariants broke."""

    def __init__(self, violations: List[Violation]) -> None:
        lines = "\n".join(v.describe() for v in violations[:20])
        more = len(violations) - 20
        if more > 0:
            lines += f"\n... and {more} more"
        super().__init__(f"{len(violations)} invariant violation(s):\n{lines}")
        self.violations = violations


class MonitorSuite:
    """All invariant monitors over one :class:`SensorNetwork`.

    Trace-driven checks (forwarding loops, reboot coherence) fire
    synchronously on bus events; state-driven checks (gradient bounds,
    reinforcement uniqueness) run every ``probe_interval`` seconds and
    once more at :meth:`detach`.

    Pass a :class:`~repro.sim.trace.FlightRecorder` (plus a
    ``dump_path``) to get a postmortem on the *first* violation: the
    recorder's rings — the most recent trace events per node, all of
    which causally precede the violation since recording and checking
    are synchronous on the same bus — are dumped to JSONL before the
    run continues, so the lead-up survives even if the process dies
    later.
    """

    #: retain at most this many (node, trace) hop records for loop
    #: detection; traces are short-lived, so eviction of the oldest
    #: entries cannot miss a live loop.
    LOOP_WINDOW = 4096

    def __init__(
        self,
        network,
        probe_interval: float = 5.0,
        max_entries: int = 32,
        max_hops: Optional[int] = None,
        recorder: Optional[FlightRecorder] = None,
        dump_path: Optional[Union[str, Path]] = None,
    ) -> None:
        self.network = network
        self.recorder = recorder
        self.dump_path = Path(dump_path) if dump_path is not None else None
        self.dumped: Optional[int] = None   # records written, once dumped
        self.max_entries = max_entries
        self.max_hops = (
            max_hops if max_hops is not None else 2 * len(network.node_ids())
        )
        self.violations: List[Violation] = []
        self._m_violations = current_registry().counter("faults.violations")
        # (node, trace) -> hop count at first transmission
        self._tx_hops: Dict[Tuple[int, str], int] = {}
        # (node, object, index) -> trace id, mirrored from custody.* events
        self._custody_held: Dict[Tuple[int, str, int], Optional[str]] = {}
        self._custody_agents: List = []
        self._attached = True
        network.trace.subscribe("diffusion.tx", self._on_tx)
        network.trace.subscribe("node.reboot", self._on_reboot)
        network.trace.subscribe("custody.accept", self._on_custody)
        network.trace.subscribe("custody.transfer", self._on_custody)
        network.trace.subscribe("custody.expire", self._on_custody)
        self._probe_event = network.sim.schedule(
            probe_interval, self._probe, probe_interval, name="faults.probe"
        )

    # -- recording -----------------------------------------------------------

    def _record(
        self,
        invariant: str,
        node: Optional[int],
        trace: Optional[str] = None,
        **detail,
    ) -> None:
        violation = Violation(
            time=self.network.sim.now,
            invariant=invariant,
            node=node,
            trace=trace,
            detail=detail,
        )
        self.violations.append(violation)
        self._m_violations.inc()
        if (
            self.recorder is not None
            and self.dump_path is not None
            and self.dumped is None
        ):
            # First violation: freeze the causal lead-up to disk now,
            # while the rings still end exactly at the breach.
            self.dumped = self.recorder.dump(
                self.dump_path,
                reason="invariant-violation",
                violation=violation.describe(),
                invariant=invariant,
            )

    # -- trace-driven invariants ----------------------------------------------

    def _on_tx(self, record: TraceRecord) -> None:
        if record.data.get("msg_type") not in ("DATA", "EXPLORATORY_DATA"):
            return
        trace = record.data.get("trace")
        node = record.node
        hops = record.data.get("hops")
        if trace is None or node is None or hops is None:
            return
        key = (node, trace)
        first = self._tx_hops.get(key)
        if first is None:
            if len(self._tx_hops) >= self.LOOP_WINDOW:
                self._tx_hops.pop(next(iter(self._tx_hops)))
            self._tx_hops[key] = hops
        elif first != hops:
            # Same node transmitting the same message at a different hop
            # count means the message came back around: a loop.
            self._record(
                "no-forwarding-loop", node, trace,
                first_hops=first, again_hops=hops,
            )
        if self.max_hops is not None and hops > self.max_hops:
            self._record(
                "no-forwarding-loop", node, trace,
                hops=hops, max_hops=self.max_hops,
            )

    def _on_custody(self, record: TraceRecord) -> None:
        data = record.data
        obj, index = data.get("object"), data.get("index")
        if record.node is None or obj is None or index is None:
            return
        key = (record.node, obj, index)
        if record.category == "custody.accept":
            if key in self._custody_held:
                # Accepting a block already under custody here would
                # double-count the promise.
                self._record(
                    "custody-conservation", record.node, data.get("trace"),
                    event="double-accept", object=obj, index=index,
                )
            self._custody_held[key] = data.get("trace")
        elif key in self._custody_held:
            del self._custody_held[key]
        else:
            # transfer/expire of a block never accepted: custody
            # appeared from nowhere.
            self._record(
                "custody-conservation", record.node, data.get("trace"),
                event=record.category, object=obj, index=index,
                detail_kind="release-without-accept",
            )

    def watch_custody(self, agent) -> None:
        """Cross-validate this agent's store on every state probe."""
        self._custody_agents.append(agent)

    def _on_reboot(self, record: TraceRecord) -> None:
        node = self.network.node(record.node)
        if len(node.gradients) != 0:
            self._record(
                "reboot-coherence", record.node,
                gradient_entries=len(node.gradients),
            )
        if len(node.cache) != 0:
            self._record(
                "reboot-coherence", record.node, cache_entries=len(node.cache)
            )

    # -- state-driven invariants ----------------------------------------------

    def _probe(self, interval: float) -> None:
        self.check()
        self._probe_event = self.network.sim.schedule(
            interval, self._probe, interval, name="faults.probe"
        )

    def check(self) -> None:
        """Probe every node's tables once (also runs on a schedule)."""
        node_count = len(self.network.node_ids())
        degree = self.network.config.multipath_degree
        for node_id in self.network.node_ids():
            node = self.network.node(node_id)
            table = node.gradients
            if len(table) > self.max_entries:
                self._record(
                    "gradient-bound", node_id,
                    entries=len(table), max_entries=self.max_entries,
                )
            for entry in table.entries():
                if len(entry.gradients) > node_count:
                    self._record(
                        "gradient-bound", node_id,
                        gradients=len(entry.gradients), nodes=node_count,
                    )
                for origin, preferred in entry.sink_preferred.items():
                    if len(preferred) > degree or len(set(preferred)) != len(
                        preferred
                    ):
                        self._record(
                            "reinforcement-uniqueness", node_id,
                            origin=origin,
                            preferred=list(preferred),
                            multipath_degree=degree,
                        )
        for agent in self._custody_agents:
            node_id = agent.node.node_id
            in_store = {
                (node_id, entry.object_id, entry.index): entry.trace
                for entry in agent.store.entries()
            }
            mirrored = {
                key: trace
                for key, trace in self._custody_held.items()
                if key[0] == node_id
            }
            for key, trace in in_store.items():
                if key not in mirrored:
                    self._record(
                        "custody-conservation", node_id, trace,
                        object=key[1], index=key[2],
                        detail_kind="ghost-entry",
                    )
            for key, trace in mirrored.items():
                if key not in in_store:
                    self._record(
                        "custody-conservation", node_id, trace,
                        object=key[1], index=key[2],
                        detail_kind="silent-drop",
                    )

    # -- lifecycle ------------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations

    def assert_ok(self) -> None:
        """Final check plus a loud failure if anything broke."""
        self.check()
        if self.violations:
            raise InvariantViolationError(self.violations)

    def detach(self) -> None:
        """Stop probing and unsubscribe (records stay readable)."""
        if not self._attached:
            return
        self._attached = False
        self.network.trace.unsubscribe("diffusion.tx", self._on_tx)
        self.network.trace.unsubscribe("node.reboot", self._on_reboot)
        self.network.trace.unsubscribe("custody.accept", self._on_custody)
        self.network.trace.unsubscribe("custody.transfer", self._on_custody)
        self.network.trace.unsubscribe("custody.expire", self._on_custody)
        if self._probe_event is not None:
            self._probe_event.cancel()
