"""``python -m repro faults`` — validate, run, and report fault plans.

Subcommands::

    faults validate plan.json [--nodes 12]   check a plan file
    faults run [--fault crash] [--plan f]    run a resilience scenario
    faults report result.json                render a saved result
    faults --smoke                           deterministic CI gate

The smoke gate is counter-based, not wall-time (matchbench/channelbench
precedent): it replays the crash scenario twice on one seed and demands
*bit-identical* results — same fault timeline, same repair metrics —
then checks that invariants held and repair landed within a bounded
number of exploratory intervals, for both the crash and the partition
plans.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.resilience import format_resilience_report
from repro.faults.plan import FaultPlan, PlanError
from repro.faults.scenarios import builtin_names, builtin_plan, resilience_run

#: smoke bound: repair must land within this many exploratory intervals.
SMOKE_REPAIR_INTERVALS = 4.0


def _load_plan(path: str) -> FaultPlan:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return FaultPlan.from_json(data)


def _cmd_validate(args) -> int:
    try:
        plan = _load_plan(args.plan)
        plan.validate(range(args.nodes))
    except (OSError, json.JSONDecodeError, PlanError) as exc:
        print(f"invalid plan: {exc}", file=sys.stderr)
        return 1
    print(
        f"plan OK: {len(plan)} action(s), horizon {plan.horizon():g}s, "
        f"overlay {'required' if plan.needs_overlay() else 'not required'}"
    )
    return 0


def _cmd_run(args) -> int:
    plan: Optional[FaultPlan] = None
    if args.plan is not None:
        try:
            plan = _load_plan(args.plan)
        except (OSError, json.JSONDecodeError, PlanError) as exc:
            print(f"invalid plan: {exc}", file=sys.stderr)
            return 1
    result = resilience_run(
        fault=args.fault,
        seed=args.seed,
        exploratory_interval=args.exploratory_interval,
        duration=args.duration,
        plan=plan,
        flight_recorder=args.flight_recorder,
        monitor_max_entries=(
            0 if args.demo_violation else 32
        ),
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
        print(f"wrote {args.out}")
    print(format_resilience_report(result))
    info = result.get("flight_recorder")
    if info is not None:
        print(
            f"flight recorder: {info['records']} of {info['records_seen']} "
            f"events dumped to {info['path']}"
        )
    if args.demo_violation:
        # The point of the demo is the postmortem itself: succeed iff a
        # violation fired AND its causal lead-up was captured.
        captured = not result["invariants_ok"] and (
            args.flight_recorder is None
            or (info is not None and info["records"] > 0)
        )
        return 0 if captured else 1
    return 0 if result["invariants_ok"] else 1


def _cmd_report(args) -> int:
    try:
        with open(args.result, "r", encoding="utf-8") as handle:
            result = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read result: {exc}", file=sys.stderr)
        return 1
    print(format_resilience_report(result))
    return 0


def _check(condition: bool, message: str, failures: List[str]) -> None:
    if not condition:
        failures.append(message)


def _smoke() -> int:
    failures: List[str] = []

    # 1. Bit-identical replay: one seed, two runs, equal dicts.
    first = resilience_run(
        fault="crash", seed=7, duration=140.0, exploratory_interval=8.0
    )
    second = resilience_run(
        fault="crash", seed=7, duration=140.0, exploratory_interval=8.0
    )
    _check(first == second, "crash run is not replay-identical", failures)
    _check(first["invariants_ok"], "crash run violated invariants", failures)
    crash = first["report"]["faults"][0]
    _check(
        crash["time_to_repair"] is not None,
        "crash run never repaired",
        failures,
    )
    if crash["repair_intervals"] is not None:
        _check(
            crash["repair_intervals"] <= SMOKE_REPAIR_INTERVALS,
            f"crash repair took {crash['repair_intervals']:.2f} exploratory "
            f"intervals (bound {SMOKE_REPAIR_INTERVALS})",
            failures,
        )

    # 2. Partition: delivery must collapse during the cut and repair
    #    within the bound after the heal.
    part = resilience_run(
        fault="partition", seed=7, duration=160.0, exploratory_interval=8.0
    )
    _check(part["invariants_ok"], "partition run violated invariants", failures)
    entry = part["report"]["faults"][0]
    during = entry["delivery_during"]
    _check(
        during is not None and during < 0.2,
        f"partition did not cut delivery (during={during})",
        failures,
    )
    _check(
        entry["repair_intervals"] is not None
        and entry["repair_intervals"] <= SMOKE_REPAIR_INTERVALS,
        f"partition repair_intervals={entry['repair_intervals']} "
        f"(bound {SMOKE_REPAIR_INTERVALS})",
        failures,
    )

    if failures:
        for failure in failures:
            print(f"SMOKE FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "faults smoke OK: replay bit-identical, invariants held, "
        f"repair within {SMOKE_REPAIR_INTERVALS:g} exploratory intervals"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro faults",
        description="deterministic fault injection and resilience verification",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the deterministic CI gate and exit",
    )
    sub = parser.add_subparsers(dest="command")

    val = sub.add_parser("validate", help="check a plan JSON file")
    val.add_argument("plan")
    val.add_argument(
        "--nodes", type=int, default=12,
        help="validate against node ids 0..N-1 (default: 12, the standard grid)",
    )

    run = sub.add_parser("run", help="run a resilience scenario")
    run.add_argument(
        "--fault", choices=builtin_names(), default="crash",
        help="builtin fault plan (ignored with --plan)",
    )
    run.add_argument("--plan", help="custom plan JSON file")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--duration", type=float, default=160.0)
    run.add_argument("--exploratory-interval", type=float, default=8.0)
    run.add_argument("--out", help="write the full result JSON here")
    run.add_argument(
        "--flight-recorder", metavar="PATH",
        help="ride a flight recorder on the trace bus and dump its rings "
        "to PATH (JSONL) on the first invariant violation, or at end of "
        "run if none fires",
    )
    run.add_argument(
        "--demo-violation", action="store_true",
        help="tighten the gradient-bound invariant to zero entries so a "
        "violation fires immediately; exit 0 iff the violation was "
        "captured (with --flight-recorder: and its lead-up dumped)",
    )

    rep = sub.add_parser("report", help="render a saved result JSON")
    rep.add_argument("result")

    args = parser.parse_args(argv)
    if args.smoke:
        return _smoke()
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "report":
        return _cmd_report(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
