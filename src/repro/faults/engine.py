"""FaultEngine: executes a FaultPlan against a SensorNetwork.

The engine translates each plan action into simulator events at
construction time, so a seeded run replays bit-identically: the same
plan and seed produce the same fault timeline, the same protocol
behaviour, and the same repair metrics.  Every injection and heal is

* appended to :attr:`FaultEngine.timeline` (JSON-safe dicts, in event
  order — the replay-equality witness),
* emitted on the network's trace bus as ``fault.inject`` /
  ``fault.heal`` records (so trace tooling can correlate protocol
  events with the faults that caused them), and
* counted on the ``faults.injected`` / ``faults.healed`` metrics.

Injection points per action kind:

==================== =====================================================
NodeCrash            ``SensorNetwork.fail_node`` /
                     ``SensorNetwork.resurrect_node(clear_state=...)``
LinkFlap, Partition  :class:`~repro.faults.overlay.FaultOverlayPropagation`
                     spliced under the channel (epoch-bumping, so the
                     neighborhood index invalidates correctly)
ClockSkew            the engine's per-node :class:`NodeClock` registry
FragmentCorruption   the fragmentation layer's ``inbound_filter`` hook
EnergyBrownout       ``modem.sleeping`` toggled on a forced duty cycle,
                     with the MAC's ``_transmit_head`` gated so a parked
                     radio defers instead of raising
==================== =====================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.faults.overlay import FaultOverlayPropagation
from repro.faults.plan import (
    ClockSkew,
    EnergyBrownout,
    FaultPlan,
    FragmentCorruption,
    LinkFlap,
    NodeCrash,
    Partition,
)
from repro.radio.channel import Channel
from repro.radio.neighborhood import NeighborhoodIndex
from repro.sim.clock import NodeClock
from repro.sim.metrics import current_registry
from repro.sim.rng import derive_seed, make_rng
from repro.sim.trace import trace_id_of


class FaultEngine:
    """Schedules and applies one plan's faults on one network."""

    def __init__(
        self,
        network,
        plan: FaultPlan,
        seed: Optional[int] = None,
        clocks: Optional[Dict[int, NodeClock]] = None,
    ) -> None:
        plan.validate(network.node_ids())
        self.network = network
        self.plan = plan
        self.seed = network.seed if seed is None else seed
        self.trace = network.trace
        #: event-ordered record of every inject/heal, JSON-safe.
        self.timeline: List[dict] = []
        #: per-node local clocks the engine skews; tests and timesync
        #: scenarios share these via :meth:`clock`.
        self.clocks: Dict[int, NodeClock] = dict(clocks or {})
        self.fragments_corrupted = 0
        registry = current_registry()
        self._m_injected = registry.counter("faults.injected")
        self._m_healed = registry.counter("faults.healed")
        self._fault_seed = derive_seed(self.seed, "faults")
        self._brownout_wake: Dict[int, float] = {}
        self.overlay: Optional[FaultOverlayPropagation] = None
        if plan.needs_overlay():
            self._install_overlay()
        for index, action in enumerate(plan.actions):
            self._schedule(index, action)

    # -- wiring --------------------------------------------------------------

    def _install_overlay(self) -> None:
        """Splice the link-fault overlay between the channel and its
        propagation model, rebuilding the neighborhood index so the
        fast path keeps honoring the (now overlay-owned) epoch."""
        network = self.network
        overlay = FaultOverlayPropagation(network.propagation)
        network.propagation = overlay
        channel = network.channel
        channel.propagation = overlay
        if channel.index is not None:
            index = NeighborhoodIndex(overlay, Channel.CARRIER_SENSE_THRESHOLD)
            for node_id in channel.node_ids():
                index.add_node(node_id)
            channel.index = index
        self.overlay = overlay

    def clock(self, node_id: int) -> NodeClock:
        """The engine's local clock for ``node_id`` (created on first
        use, with a seed-derived jitter stream)."""
        clock = self.clocks.get(node_id)
        if clock is None:
            clock = NodeClock(rng=make_rng(self._fault_seed, f"clock:{node_id}"))
            self.clocks[node_id] = clock
        return clock

    def _note(self, index: int, action, phase: str, **detail) -> None:
        now = self.network.sim.now
        entry = {"t": now, "index": index, "kind": action.kind, "phase": phase}
        entry.update(detail)
        self.timeline.append(entry)
        self.trace.emit(
            now, f"fault.{phase}",
            node=detail.get("node"), kind=action.kind, index=index,
        )
        if phase == "inject":
            self._m_injected.inc()
        else:
            self._m_healed.inc()

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, index: int, action) -> None:
        sim = self.network.sim
        if isinstance(action, NodeCrash):
            sim.schedule_at(action.at, self._crash, index, action, name="fault.crash")
            if action.recover_at is not None:
                sim.schedule_at(
                    action.recover_at, self._reboot, index, action,
                    name="fault.reboot",
                )
        elif isinstance(action, LinkFlap):
            period = action.effective_period
            for cycle in range(action.flaps):
                start = action.at + cycle * period
                sim.schedule_at(
                    start, self._link_down, index, action, name="fault.linkdown"
                )
                sim.schedule_at(
                    start + action.down, self._link_up, index, action,
                    name="fault.linkup",
                )
        elif isinstance(action, Partition):
            sim.schedule_at(
                action.at, self._partition, index, action, name="fault.partition"
            )
            sim.schedule_at(
                action.heal_at, self._heal_partition, index, action,
                name="fault.heal",
            )
        elif isinstance(action, ClockSkew):
            sim.schedule_at(action.at, self._skew, index, action, name="fault.skew")
        elif isinstance(action, FragmentCorruption):
            sim.schedule_at(
                action.at, self._corruption_on, index, action, name="fault.corrupt"
            )
            sim.schedule_at(
                action.at + action.duration, self._corruption_off, index, action,
                name="fault.heal",
            )
        elif isinstance(action, EnergyBrownout):
            sim.schedule_at(
                action.at, self._brownout_begin, index, action,
                name="fault.brownout",
            )
        else:  # pragma: no cover - plan validation keeps this unreachable
            raise TypeError(f"unknown fault action {type(action).__name__}")

    # -- node crash / reboot -------------------------------------------------

    def _crash(self, index: int, action: NodeCrash) -> None:
        self.network.fail_node(action.node)
        self._note(index, action, "inject", node=action.node)

    def _reboot(self, index: int, action: NodeCrash) -> None:
        self.network.resurrect_node(action.node, clear_state=action.clear_state)
        self._note(
            index, action, "heal",
            node=action.node, clear_state=action.clear_state,
        )

    # -- link faults ---------------------------------------------------------

    def _link_down(self, index: int, action: LinkFlap) -> None:
        self.overlay.block_link(action.a, action.b, symmetric=action.symmetric)
        self._note(index, action, "inject", a=action.a, b=action.b)

    def _link_up(self, index: int, action: LinkFlap) -> None:
        self.overlay.unblock_link(action.a, action.b, symmetric=action.symmetric)
        self._note(index, action, "heal", a=action.a, b=action.b)

    def _partition(self, index: int, action: Partition) -> None:
        self.overlay.set_partition(action.groups)
        self._note(
            index, action, "inject",
            groups=[list(group) for group in action.groups],
        )

    def _heal_partition(self, index: int, action: Partition) -> None:
        self.overlay.clear_partition()
        self._note(index, action, "heal")

    # -- clock skew ----------------------------------------------------------

    def _skew(self, index: int, action: ClockSkew) -> None:
        clock = self.clock(action.node)
        if action.offset:
            clock.adjust(action.offset)
        if action.drift_ppm:
            clock.drift_ppm += action.drift_ppm
        self._note(
            index, action, "inject",
            node=action.node, offset=action.offset, drift_ppm=action.drift_ppm,
        )

    # -- fragment corruption -------------------------------------------------

    def _corruption_on(self, index: int, action: FragmentCorruption) -> None:
        stack = self.network.stack(action.node)
        rng = make_rng(self._fault_seed, f"corruption:{index}")

        def corrupt(fragment, src) -> bool:
            if rng.random() >= action.rate:
                return True
            self.fragments_corrupted += 1
            trace_id = trace_id_of(fragment)
            if trace_id is not None:
                self.trace.emit(
                    self.network.sim.now,
                    "path.drop",
                    node=action.node,
                    trace=trace_id,
                    reason="fault-corruption",
                    layer="link",
                    src=src,
                )
            return False

        # One corruption window per node at a time; a later action on
        # the same node replaces the filter (documented in DESIGN.md).
        stack.frag.inbound_filter = corrupt
        self._note(index, action, "inject", node=action.node, rate=action.rate)

    def _corruption_off(self, index: int, action: FragmentCorruption) -> None:
        self.network.stack(action.node).frag.inbound_filter = None
        self._note(index, action, "heal", node=action.node)

    # -- energy brownout -----------------------------------------------------

    def _brownout_begin(self, index: int, action: EnergyBrownout) -> None:
        stack = self.network.stack(action.node)
        mac = stack.mac
        modem = stack.modem
        engine = self

        def gated_transmit_head() -> None:
            # A parked radio must not transmit (the modem would raise);
            # park the head fragment until the next wakeup instead.
            # Instance-attribute shadowing intercepts every call site:
            # _attempt looks _transmit_head up at call time.
            if modem.sleeping:
                wake = engine._brownout_wake.get(action.node, engine.network.sim.now)
                engine.network.sim.schedule_at(
                    max(wake, engine.network.sim.now), mac._attempt,
                    name="fault.brownout-defer",
                )
                return
            type(mac)._transmit_head(mac)

        mac._transmit_head = gated_transmit_head
        self._note(
            index, action, "inject",
            node=action.node, duty_cycle=action.duty_cycle,
        )
        self._brownout_sleep(index, action, action.at + action.duration)

    def _brownout_sleep(self, index: int, action: EnergyBrownout, end: float) -> None:
        sim = self.network.sim
        stack = self.network.stack(action.node)
        if sim.now >= end:
            self._brownout_finish(index, action)
            return
        if stack.modem.transmitting:
            # Never park the radio mid-transmission; re-check just after
            # the fragment clears the air (mirrors DutyCycledCsmaMac).
            sim.schedule(
                0.001, self._brownout_sleep, index, action, end,
                name="fault.brownout-retry",
            )
            return
        stack.modem.sleeping = True
        wake = min(sim.now + (1.0 - action.duty_cycle) * action.period, end)
        self._brownout_wake[action.node] = wake
        sim.schedule_at(
            wake, self._brownout_awake, index, action, end,
            name="fault.brownout-wake",
        )

    def _brownout_awake(self, index: int, action: EnergyBrownout, end: float) -> None:
        sim = self.network.sim
        stack = self.network.stack(action.node)
        stack.modem.sleeping = False
        self._brownout_wake.pop(action.node, None)
        if sim.now >= end:
            self._brownout_finish(index, action)
            return
        sim.schedule_at(
            min(sim.now + action.duty_cycle * action.period, end),
            self._brownout_sleep, index, action, end,
            name="fault.brownout-sleep",
        )

    def _brownout_finish(self, index: int, action: EnergyBrownout) -> None:
        stack = self.network.stack(action.node)
        stack.modem.sleeping = False
        stack.mac.__dict__.pop("_transmit_head", None)
        self._brownout_wake.pop(action.node, None)
        self._note(index, action, "heal", node=action.node)
