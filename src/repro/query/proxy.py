"""The query proxy: submits parsed queries over the Figure 4 API.

The Cornell stack put a query proxy in each sensor node and a database
front end at the user.  This class is the front end: it turns query
text into a subscription, converts matching data messages back into
row-like results, and enforces the query's FOR duration by
unsubscribing when it expires.

It works over either protocol implementation (diffusion or declarative
routing) because it uses only the portable API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.core.api import DiffusionRouting, SubscriptionHandle
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.query.language import FIELD_KEYS, ParsedQuery, parse_query

#: data-attribute keys surfaced as result columns, by readable name
RESULT_FIELDS = dict(FIELD_KEYS)


@dataclass
class QueryResult:
    """One row: the data attributes of a matching message."""

    time: float
    values: Dict[str, Union[int, float, str, bytes]]

    def __getitem__(self, name: str):
        return self.values[name]

    def get(self, name: str, default=None):
        return self.values.get(name, default)


@dataclass
class QueryHandle:
    """A running query."""

    query: ParsedQuery
    subscription: SubscriptionHandle
    results: List[QueryResult] = field(default_factory=list)
    stopped: bool = False
    _expiry_event: object = None

    @property
    def row_count(self) -> int:
        return len(self.results)


class QueryProxy:
    """Runs queries for a user attached at one node."""

    def __init__(self, api: DiffusionRouting) -> None:
        self.api = api
        self.queries: List[QueryHandle] = []

    def submit(
        self,
        query_text: str,
        on_result: Optional[Callable[[QueryResult], None]] = None,
    ) -> QueryHandle:
        """Parse and launch a query; results accumulate on the handle."""
        parsed = parse_query(query_text)
        handle_box: List[QueryHandle] = []

        def deliver(attrs: AttributeVector, message) -> None:
            handle = handle_box[0]
            if handle.stopped:
                return
            result = QueryResult(
                time=self.api.node.sim.now,
                values=self._row_from(attrs),
            )
            handle.results.append(result)
            if on_result is not None:
                on_result(result)

        subscription = self.api.subscribe(parsed.to_interest(), deliver)
        handle = QueryHandle(query=parsed, subscription=subscription)
        handle_box.append(handle)
        if parsed.for_seconds is not None:
            handle._expiry_event = self.api.node.sim.schedule(
                float(parsed.for_seconds), self.stop, handle,
                name="query.expiry",
            )
        self.queries.append(handle)
        return handle

    def stop(self, handle: QueryHandle) -> None:
        """Terminate a query (idempotent)."""
        if handle.stopped:
            return
        handle.stopped = True
        if handle._expiry_event is not None:
            handle._expiry_event.cancel()
        self.api.unsubscribe(handle.subscription)

    @staticmethod
    def _row_from(attrs: AttributeVector) -> Dict[str, object]:
        row: Dict[str, object] = {}
        for name, key in RESULT_FIELDS.items():
            value = attrs.value_of(key)
            if value is not None:
                row[name] = value
        value = attrs.value_of(Key.TYPE)
        if value is not None:
            row["type"] = value
        value = attrs.value_of(Key.SEQUENCE)
        if value is not None:
            row["sequence"] = value
        value = attrs.value_of(Key.TIMESTAMP)
        if value is not None:
            row["timestamp"] = value
        return row
