"""Declarative queries over diffusion (paper Section 5.3).

"Researchers at Cornell have used our system to provide communication
between an end-user database ... and query proxies in each sensor node.
This application used attributes to identify sensors running query
proxies and to pass query byte-codes to the proxies."

This package provides the user-facing half of that stack: a small
SQL-ish query language compiled to attribute-based interests, and a
query proxy that submits them over the Figure 4 API::

    SELECT audio WHERE x BETWEEN 0 AND 50 AND confidence > 0.5
        EVERY 2s FOR 10m

becomes an interest with ``type EQ audio``, geographic and confidence
formals, and interval/duration actuals.
"""

from repro.query.language import ParsedQuery, QuerySyntaxError, parse_query
from repro.query.proxy import QueryHandle, QueryProxy, QueryResult

__all__ = [
    "ParsedQuery",
    "QuerySyntaxError",
    "parse_query",
    "QueryHandle",
    "QueryProxy",
    "QueryResult",
]
