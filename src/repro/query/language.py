"""The query language: SELECT-over-attributes.

Grammar (case-insensitive keywords)::

    query      := SELECT type [WHERE condition (AND condition)*]
                  [EVERY duration] [FOR duration]
    condition  := field op value
                | field BETWEEN value AND value
    op         := = | != | < | <= | > | >=
    field      := x | y | latitude | longitude | confidence
                | intensity | instance | target
    value      := number | 'string' | "string"
    duration   := number (ms | s | m)

Everything compiles to the attribute algebra: comparisons become
formals with the matching operator, BETWEEN becomes a GE/LE pair
(the paper's "rectangular regions" idiom), EVERY/FOR become the
INTERVAL/DURATION actuals of Section 3.2's worked example.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.naming import AttributeVector, Operator
from repro.naming.keys import Key


class QuerySyntaxError(ValueError):
    """Raised on malformed query text."""


FIELD_KEYS = {
    "x": Key.X_COORD,
    "y": Key.Y_COORD,
    "latitude": Key.LATITUDE,
    "longitude": Key.LONGITUDE,
    "confidence": Key.CONFIDENCE,
    "intensity": Key.INTENSITY,
    "instance": Key.INSTANCE,
    "target": Key.TARGET,
}

_OPERATORS = {
    "=": Operator.EQ,
    "!=": Operator.NE,
    "<": Operator.LT,
    "<=": Operator.LE,
    ">": Operator.GT,
    ">=": Operator.GE,
}

_TOKEN = re.compile(
    r"""
    \s*(
        '(?:[^'\\]|\\.)*'          # single-quoted string
      | "(?:[^"\\]|\\.)*"          # double-quoted string
      | [A-Za-z_][A-Za-z0-9_-]*    # identifier / keyword
      | -?\d+\.\d+                 # float
      | -?\d+                      # int
      | <= | >= | != | [=<>]       # operators
    )
    """,
    re.VERBOSE,
)

_DURATION = re.compile(r"^(-?\d+(?:\.\d+)?)(ms|s|m)$", re.IGNORECASE)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise QuerySyntaxError(f"cannot tokenize near {remainder[:20]!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


@dataclass
class Condition:
    """One WHERE clause condition."""

    field_name: str
    op: Operator
    value: Union[int, float, str]


@dataclass
class ParsedQuery:
    """The structured form of a query string."""

    select_type: str
    conditions: List[Condition] = field(default_factory=list)
    every_ms: Optional[int] = None
    for_seconds: Optional[int] = None

    def to_interest(self) -> AttributeVector:
        """Compile to a diffusion interest (subscription attributes)."""
        builder = AttributeVector.builder().eq(Key.TYPE, self.select_type)
        for condition in self.conditions:
            key = FIELD_KEYS[condition.field_name]
            value = condition.value
            if isinstance(value, int) and key not in (Key.INSTANCE, Key.TARGET):
                value = float(value)
            builder.add(key, condition.op, value)
        if self.every_ms is not None:
            builder.actual(Key.INTERVAL, self.every_ms)
        if self.for_seconds is not None:
            builder.actual(Key.DURATION, self.for_seconds)
        return builder.build()


class _Parser:
    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.position = 0
        self._pending_between: Optional[Condition] = None

    def peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of query")
        self.position += 1
        return token

    def expect_keyword(self, keyword: str) -> None:
        token = self.next()
        if token.lower() != keyword.lower():
            raise QuerySyntaxError(f"expected {keyword!r}, got {token!r}")

    def at_keyword(self, keyword: str) -> bool:
        token = self.peek()
        return token is not None and token.lower() == keyword.lower()

    # -- productions -------------------------------------------------------

    def parse_query(self) -> ParsedQuery:
        self.expect_keyword("select")
        select_type = self.next()
        if select_type.lower() in ("where", "every", "for"):
            raise QuerySyntaxError("SELECT requires a data type name")
        query = ParsedQuery(select_type=_unquote(select_type))
        if self.at_keyword("where"):
            self.next()
            while True:
                self._pending_between = None
                query.conditions.append(self.parse_condition())
                if self._pending_between is not None:
                    # BETWEEN compiled to a GE/LE formal pair.
                    query.conditions.append(self._pending_between)
                if self.at_keyword("and"):
                    self.next()
                    continue
                break
        if self.at_keyword("every"):
            self.next()
            query.every_ms = round(self.parse_duration() * 1000)
        if self.at_keyword("for"):
            self.next()
            query.for_seconds = round(self.parse_duration())
        if self.peek() is not None:
            raise QuerySyntaxError(f"trailing tokens from {self.peek()!r}")
        return query

    def parse_condition(self) -> Condition:
        field_name = self.next().lower()
        if field_name not in FIELD_KEYS:
            raise QuerySyntaxError(
                f"unknown field {field_name!r}; one of {sorted(FIELD_KEYS)}"
            )
        token = self.next()
        if token.lower() == "between":
            low = self.parse_value()
            self.expect_keyword("and")
            high = self.parse_value()
            if not isinstance(low, (int, float)) or not isinstance(high, (int, float)):
                raise QuerySyntaxError("BETWEEN requires numeric bounds")
            if low > high:
                raise QuerySyntaxError("BETWEEN bounds out of order")
            # A closed interval is a GE/LE formal pair; the caller folds
            # this into two conditions.
            self._pending_between = Condition(field_name, Operator.LE, high)
            return Condition(field_name, Operator.GE, low)
        if token not in _OPERATORS:
            raise QuerySyntaxError(f"unknown operator {token!r}")
        return Condition(field_name, _OPERATORS[token], self.parse_value())

    def parse_value(self) -> Union[int, float, str]:
        token = self.next()
        if token.startswith(("'", '"')):
            return _unquote(token)
        try:
            if "." in token:
                return float(token)
            return int(token)
        except ValueError:
            # bare identifiers act as strings (SELECT audio WHERE target = lion)
            return token

    def parse_duration(self) -> float:
        token = self.next()
        match = _DURATION.match(token)
        if match is None:
            # Allow "2 s" as two tokens.
            unit = self.peek()
            if unit is not None and unit.lower() in ("ms", "s", "m"):
                self.next()
                match = _DURATION.match(token + unit)
        if match is None:
            raise QuerySyntaxError(f"bad duration {token!r} (use ms/s/m)")
        value = float(match.group(1))
        if value <= 0:
            raise QuerySyntaxError("durations must be positive")
        unit = match.group(2).lower()
        scale = {"ms": 0.001, "s": 1.0, "m": 60.0}[unit]
        return value * scale


def _unquote(token: str) -> str:
    if token.startswith(("'", '"')) and token.endswith(token[0]) and len(token) >= 2:
        body = token[1:-1]
        return body.replace("\\" + token[0], token[0]).replace("\\\\", "\\")
    return token


def parse_query(text: str) -> ParsedQuery:
    """Parse query text; raises :class:`QuerySyntaxError` on bad input."""
    return _Parser(_tokenize(text)).parse_query()
