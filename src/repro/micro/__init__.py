"""Micro-diffusion (paper Section 4.3).

A bare subset of diffusion for 8-bit motes: attributes condensed to a
single 16-bit tag, at most 5 active gradients, a 10-entry cache of 2
relevant bytes per packet, and no reinforcement.  A gateway node runs
both stacks and bridges a mote tier into the full-diffusion tier — the
paper's tiered architecture.
"""

from repro.micro.microdiffusion import (
    MicroConfig,
    MicroDiffusionNode,
    MicroMessage,
    MicroMessageKind,
)
from repro.micro.gateway import MicroGateway, TagRegistry
from repro.micro.footprint import (
    MICRO_CODE_BYTES,
    MICRO_DATA_BYTES,
    TINYOS_COMPONENT_CODE_BYTES,
    TINYOS_COMPONENT_DATA_BYTES,
    state_bytes,
)

__all__ = [
    "MicroConfig",
    "MicroDiffusionNode",
    "MicroMessage",
    "MicroMessageKind",
    "MicroGateway",
    "TagRegistry",
    "MICRO_CODE_BYTES",
    "MICRO_DATA_BYTES",
    "TINYOS_COMPONENT_CODE_BYTES",
    "TINYOS_COMPONENT_DATA_BYTES",
    "state_bytes",
]
