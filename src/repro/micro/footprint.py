"""Memory-footprint accounting for micro-diffusion.

Paper Section 4.3: micro-diffusion "adds only 2050 bytes of code and
106 bytes of data to its host operating system", and as a TinyOS
component "3250B code and 144B of data (including support for radio and
a photo sensor)".  It is "statically configured to support 5 active
gradients and a cache of 10 packets of the 2 relevant bytes per
packet".

We reproduce the *data* budget structurally: the model below charges
each piece of engine state the bytes a C mote build would, and the test
suite asserts a default-configured node fits in 106 bytes.
"""

from __future__ import annotations

from repro.micro.microdiffusion import MicroConfig, MicroDiffusionNode

#: paper-reported static sizes (bytes)
MICRO_CODE_BYTES = 2050
MICRO_DATA_BYTES = 106
TINYOS_COMPONENT_CODE_BYTES = 3250
TINYOS_COMPONENT_DATA_BYTES = 144
FULL_DIFFUSION_CODE_BYTES = 55 * 1024   # daemon static code
FULL_DIFFUSION_DATA_BYTES = 8 * 1024    # daemon static data

#: per-structure costs of the modeled mote build
GRADIENT_ENTRY_BYTES = 6   # tag(2) + neighbor(2) + ttl(2)
CACHE_ENTRY_BYTES = 2      # "the 2 relevant bytes per packet"
SUBSCRIPTION_ENTRY_BYTES = 4  # tag(2) + callback index(2)
ENGINE_SCALAR_BYTES = 12   # seq counter, timers, stats registers


def state_bytes(config: MicroConfig, subscriptions: int = 1) -> int:
    """Static RAM a mote build of this configuration would reserve."""
    return (
        config.max_gradients * GRADIENT_ENTRY_BYTES
        + config.cache_packets * CACHE_ENTRY_BYTES
        + subscriptions * SUBSCRIPTION_ENTRY_BYTES
        + ENGINE_SCALAR_BYTES
    )


def node_state_bytes(node: MicroDiffusionNode) -> int:
    """Budget for a live node (static tables, so live == configured)."""
    return state_bytes(node.config, subscriptions=max(1, len(node.subscriptions)))


def footprint_report(config: MicroConfig = None) -> dict:
    """Numbers for the MICRO experiment table."""
    config = config or MicroConfig()
    modeled = state_bytes(config)
    return {
        "modeled_data_bytes": modeled,
        "paper_data_bytes": MICRO_DATA_BYTES,
        "paper_code_bytes": MICRO_CODE_BYTES,
        "within_paper_budget": modeled <= MICRO_DATA_BYTES,
        "full_diffusion_data_bytes": FULL_DIFFUSION_DATA_BYTES,
        "data_reduction_vs_full": FULL_DIFFUSION_DATA_BYTES / modeled,
    }
