"""The micro-diffusion protocol engine.

Statically sized like the mote implementation: the gradient table holds
``max_gradients`` entries (default 5) and the duplicate cache
``cache_packets`` entries of 2 relevant bytes each (default 10).  The
logical header stays compatible with full diffusion (tag, kind, origin,
sequence), which is what lets the gateway translate between tiers.

Naming is "condensed to a single tag"; matching degenerates to tag
equality — the motivating special case of the attribute machinery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.sim import Simulator


class MicroMessageKind(enum.IntEnum):
    INTEREST = 1
    DATA = 2


@dataclass
class MicroMessage:
    """A mote-sized message: 2-byte tag, tiny payload."""

    kind: MicroMessageKind
    tag: int
    origin: int
    seq: int
    payload: bytes = b""
    last_hop: Optional[int] = None

    HEADER_BYTES = 8  # kind(1) + tag(2) + origin(2) + seq(2) + len(1)

    def __post_init__(self) -> None:
        if not 0 <= self.tag < 2**16:
            raise ValueError("tag must be uint16")

    @property
    def nbytes(self) -> int:
        return self.HEADER_BYTES + len(self.payload)

    def cache_key(self) -> int:
        """The '2 relevant bytes per packet' the mote cache stores."""
        return ((self.origin & 0xFF) << 8) | (self.seq & 0xFF)


@dataclass
class MicroConfig:
    """Static sizing, defaulting to the paper's mote build."""

    max_gradients: int = 5
    cache_packets: int = 10
    gradient_ttl: float = 150.0
    interest_interval: float = 60.0

    def validate(self) -> None:
        if self.max_gradients < 1 or self.cache_packets < 1:
            raise ValueError("sizes must be >= 1")


@dataclass
class _MicroGradient:
    tag: int
    neighbor: int
    expires_at: float


class MicroDiffusionNode:
    """One mote's micro-diffusion engine.

    Uses the same transport interface as the full stack (a
    FragmentationLayer or IdealTransport), so motes and PC/104 nodes can
    share a radio channel in simulation.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        transport,
        config: Optional[MicroConfig] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.transport = transport
        self.config = config or MicroConfig()
        self.config.validate()
        # Fixed-size tables, mote-style.
        self.gradients: List[_MicroGradient] = []
        self.cache: List[int] = []  # FIFO of 2-byte keys
        self.subscriptions: Dict[int, Callable[[MicroMessage], None]] = {}
        # "supporting only limited filters": one per-tag hook that can
        # drop (return None) or rewrite a data message before routing.
        self.filters: Dict[int, Callable[[MicroMessage], Optional[MicroMessage]]] = {}
        self._interest_timers: Dict[int, object] = {}
        self._seq = 0
        self.stats_tx_messages = 0
        self.stats_tx_bytes = 0
        self.stats_gradient_evictions = 0
        self.stats_cache_hits = 0
        if transport is not None:
            transport.deliver_callback = self._on_message

    # -- application API ------------------------------------------------------

    def subscribe(self, tag: int, callback: Callable[[MicroMessage], None]) -> None:
        """Express interest in a tag; floods periodically."""
        self.subscriptions[tag] = callback
        self._originate_interest(tag)

    def unsubscribe(self, tag: int) -> None:
        self.subscriptions.pop(tag, None)
        timer = self._interest_timers.pop(tag, None)
        if timer is not None:
            timer.cancel()

    def add_filter(
        self,
        tag: int,
        callback: Callable[[MicroMessage], Optional[MicroMessage]],
    ) -> None:
        """Install the (single) filter for a tag.

        The callback sees every data message for the tag before routing;
        returning None drops it, returning a (possibly rewritten)
        message lets it continue.  One filter per tag — mote builds have
        no room for a priority pipeline.
        """
        if tag in self.filters:
            raise ValueError(f"tag {tag} already has a filter")
        self.filters[tag] = callback

    def remove_filter(self, tag: int) -> bool:
        return self.filters.pop(tag, None) is not None

    def send(self, tag: int, payload: bytes = b"") -> MicroMessage:
        """Publish one data sample under a tag."""
        self._seq = (self._seq + 1) & 0xFFFF
        message = MicroMessage(
            kind=MicroMessageKind.DATA,
            tag=tag,
            origin=self.node_id,
            seq=self._seq,
            payload=payload,
        )
        self._note_seen(message)
        self._route_data(message)
        return message

    # -- gradients -------------------------------------------------------------

    def _gradient_for(self, tag: int, neighbor: int) -> Optional[_MicroGradient]:
        for gradient in self.gradients:
            if gradient.tag == tag and gradient.neighbor == neighbor:
                return gradient
        return None

    def _update_gradient(self, tag: int, neighbor: int) -> None:
        now = self.sim.now
        gradient = self._gradient_for(tag, neighbor)
        if gradient is not None:
            gradient.expires_at = now + self.config.gradient_ttl
            return
        # Reap expired entries first; then evict the soonest-to-expire
        # if the static table is still full.
        self.gradients = [g for g in self.gradients if g.expires_at > now]
        if len(self.gradients) >= self.config.max_gradients:
            victim = min(self.gradients, key=lambda g: g.expires_at)
            self.gradients.remove(victim)
            self.stats_gradient_evictions += 1
        self.gradients.append(
            _MicroGradient(tag=tag, neighbor=neighbor,
                           expires_at=now + self.config.gradient_ttl)
        )

    def active_gradients(self, tag: int) -> List[int]:
        now = self.sim.now
        return sorted(
            g.neighbor
            for g in self.gradients
            if g.tag == tag and g.expires_at > now
        )

    # -- cache -------------------------------------------------------------------

    def _note_seen(self, message: MicroMessage) -> bool:
        """True when the packet was already in the tiny cache."""
        key = message.cache_key()
        if key in self.cache:
            self.stats_cache_hits += 1
            return True
        self.cache.append(key)
        if len(self.cache) > self.config.cache_packets:
            self.cache.pop(0)
        return False

    # -- protocol -------------------------------------------------------------------

    def _originate_interest(self, tag: int) -> None:
        if tag not in self.subscriptions:
            return
        self._seq = (self._seq + 1) & 0xFFFF
        message = MicroMessage(
            kind=MicroMessageKind.INTEREST,
            tag=tag,
            origin=self.node_id,
            seq=self._seq,
        )
        self._note_seen(message)
        self._transmit(message, link_dst=None)
        self._interest_timers[tag] = self.sim.schedule(
            self.config.interest_interval,
            self._originate_interest,
            tag,
            name="micro.interest",
        )

    def _on_message(self, message, src: int, nbytes: int) -> None:
        if not isinstance(message, MicroMessage):
            return
        incoming = replace(message, last_hop=src)
        if self._note_seen(incoming):
            return
        if incoming.kind is MicroMessageKind.INTEREST:
            self._update_gradient(incoming.tag, src)
            self._transmit(incoming, link_dst=None)  # continue the flood
            return
        filter_cb = self.filters.get(incoming.tag)
        if filter_cb is not None:
            filtered = filter_cb(incoming)
            if filtered is None:
                return  # filter absorbed the message
            incoming = filtered
        callback = self.subscriptions.get(incoming.tag)
        if callback is not None:
            callback(incoming)
        self._route_data(incoming)

    def _route_data(self, message: MicroMessage) -> None:
        neighbors = [
            n for n in self.active_gradients(message.tag) if n != message.last_hop
        ]
        if not neighbors:
            return
        if len(neighbors) == 1:
            self._transmit(message, link_dst=neighbors[0])
        else:
            self._transmit(message, link_dst=None)

    def _transmit(self, message: MicroMessage, link_dst: Optional[int]) -> None:
        self.stats_tx_messages += 1
        self.stats_tx_bytes += message.nbytes
        if self.transport is not None:
            self.transport.send_message(message, message.nbytes, link_dst)
