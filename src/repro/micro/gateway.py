"""Tiered deployment: bridging micro-diffusion to full diffusion.

"The logical header format is compatible with that of the full
diffusion implementation and we are implementing software to gateway
between the implementations" — this module is that gateway.  A
:class:`TagRegistry` (pre-deployed, like attribute keys) maps 16-bit
tags to attribute vectors; a :class:`MicroGateway` runs on a node with
both stacks, translating interests downward into the mote tier and data
upward into the full tier.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.api import DiffusionRouting
from repro.micro.microdiffusion import MicroDiffusionNode, MicroMessage
from repro.naming import Attribute, AttributeVector, Operator, one_way_match
from repro.naming.keys import ClassValue, Key


class TagRegistry:
    """Out-of-band agreed mapping between tags and attribute templates.

    Each tag carries two templates:

    * ``interest_attrs`` — the full-diffusion subscription this tag
      stands for (formals, e.g. ``type EQ photo``);
    * ``data_attrs`` — the actuals published for mote data of this tag.

    A tag may also be registered as a *command* tag
    (:meth:`register_command`): full-tier data matching its template is
    bridged **down** into the mote tier — "second-tier nodes will be
    controlled ... from these more capable nodes" (Section 4.3).
    """

    def __init__(self) -> None:
        self._interest: Dict[int, AttributeVector] = {}
        self._data: Dict[int, AttributeVector] = {}
        self._command: Dict[int, AttributeVector] = {}

    def register(
        self,
        tag: int,
        interest_attrs: AttributeVector,
        data_attrs: AttributeVector,
    ) -> None:
        if tag in self._interest:
            raise ValueError(f"tag {tag} already registered")
        self._interest[tag] = interest_attrs
        self._data[tag] = data_attrs

    def register_command(
        self, tag: int, command_attrs: AttributeVector
    ) -> None:
        """Declare a downward command tag.

        ``command_attrs`` are the formals a full-tier command message's
        actuals must satisfy for it to be forwarded to the motes.
        """
        if tag in self._command:
            raise ValueError(f"command tag {tag} already registered")
        self._command[tag] = command_attrs

    def command_tag_for(self, attrs: AttributeVector) -> Optional[int]:
        for tag, formals in self._command.items():
            if one_way_match(list(formals), list(attrs)):
                return tag
        return None

    def command_tags(self):
        return sorted(self._command)

    def interest_attrs(self, tag: int) -> Optional[AttributeVector]:
        return self._interest.get(tag)

    def data_attrs(self, tag: int) -> Optional[AttributeVector]:
        return self._data.get(tag)

    def tag_for_interest(self, attrs: AttributeVector) -> Optional[int]:
        """Find the tag whose data would satisfy this interest."""
        for tag, data_attrs in self._data.items():
            if one_way_match(list(attrs), list(data_attrs)):
                return tag
        return None

    def tags(self):
        return sorted(self._interest)


class MicroGateway:
    """Runs on a dual-stack node at the tier boundary.

    Downward: full-diffusion interests whose formals are satisfied by a
    registered tag's data template become micro-interest floods in the
    mote tier.  Upward: mote data arriving for a subscribed tag is
    published into full diffusion under the tag's data template.
    """

    def __init__(
        self,
        api: DiffusionRouting,
        micro: MicroDiffusionNode,
        registry: TagRegistry,
    ) -> None:
        self.api = api
        self.micro = micro
        self.registry = registry
        self.interests_bridged = 0
        self.data_bridged = 0
        self._bridged_tags: set = set()
        self._publications: Dict[int, object] = {}
        # A transparent filter sees every interest crossing this node
        # (filters match one-way, so a catch-all works — a subscription
        # could not see arbitrary interests under two-way matching).
        watch = (
            AttributeVector.builder()
            .eq(Key.CLASS, int(ClassValue.INTEREST))
            .build()
        )
        self._filter_handle = api.add_filter(
            watch, priority=150, callback=self._on_full_interest, name="gateway"
        )
        # Downward command path: subscribe on the full tier for every
        # registered command tag and replay matching data to the motes.
        self.commands_bridged = 0
        for tag in registry.command_tags():
            api.subscribe(
                registry._command[tag],
                lambda attrs, message, tag=tag: self._on_full_command(tag, attrs),
            )

    # -- downward: full -> micro --------------------------------------------

    def _on_full_interest(self, message, handle) -> None:
        tag = self.registry.tag_for_interest(message.attrs)
        if tag is not None and tag not in self._bridged_tags:
            self._bridged_tags.add(tag)
            self.interests_bridged += 1
            self.micro.subscribe(tag, self._on_micro_data)
        # Transparent: normal diffusion processing continues.
        self.api.send_message(message, handle)

    # -- downward: full -> micro (commands) --------------------------------

    def _on_full_command(self, tag: int, attrs: AttributeVector) -> None:
        payload = attrs.value_of(Key.PAYLOAD)
        if not isinstance(payload, bytes):
            payload = b""
        self.commands_bridged += 1
        self.micro.send(tag, payload)

    # -- upward: micro -> full --------------------------------------------------

    def _on_micro_data(self, message: MicroMessage) -> None:
        data_attrs = self.registry.data_attrs(message.tag)
        if data_attrs is None:
            return
        publication = self._publications.get(message.tag)
        if publication is None:
            publication = self.api.publish(data_attrs)
            self._publications[message.tag] = publication
        send_attrs = (
            AttributeVector.builder()
            .actual(Key.SEQUENCE, message.seq)
            .actual(Key.INSTANCE, f"mote-{message.origin}")
            .build()
        )
        if message.payload:
            send_attrs = send_attrs.with_attribute(
                Attribute.blob(Key.PAYLOAD, Operator.IS, message.payload)
            )
        self.data_bridged += 1
        self.api.send(publication, send_attrs)
