"""Neighbor identity tracking.

Diffusion nodes "do not need to have globally unique identifiers ...
Nodes, however, do need to distinguish between neighbors" (Section 3.1).
The neighbor table records who has been heard recently; the ephemeral
allocator implements the Elson/Estrin-style random transaction
identifiers the paper cites [16] as an alternative to persistent MACs.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.rng import make_rng


@dataclass
class NeighborEntry:
    """Bookkeeping for one neighbor."""

    neighbor_id: int
    first_heard: float
    last_heard: float
    messages_heard: int = 1


class NeighborTable:
    """Tracks neighbors by the link-layer identifier they transmit with."""

    def __init__(self, expiry: float = 180.0) -> None:
        self.expiry = expiry
        self._entries: Dict[int, NeighborEntry] = {}

    def heard(self, neighbor_id: int, now: float) -> NeighborEntry:
        entry = self._entries.get(neighbor_id)
        if entry is None:
            entry = NeighborEntry(neighbor_id, first_heard=now, last_heard=now)
            self._entries[neighbor_id] = entry
        else:
            entry.last_heard = now
            entry.messages_heard += 1
        return entry

    def expire(self, now: float) -> List[int]:
        """Drop neighbors not heard within ``expiry``; returns the ids."""
        stale = [
            nid
            for nid, entry in self._entries.items()
            if now - entry.last_heard > self.expiry
        ]
        for nid in stale:
            del self._entries[nid]
        return stale

    def neighbors(self) -> List[int]:
        return sorted(self._entries)

    def is_neighbor(self, neighbor_id: int) -> bool:
        return neighbor_id in self._entries

    def entry(self, neighbor_id: int) -> Optional[NeighborEntry]:
        return self._entries.get(neighbor_id)

    def __len__(self) -> int:
        return len(self._entries)


class EphemeralIdAllocator:
    """Random, collision-avoiding short identifiers (paper ref [16]).

    Identifiers need only be unique within radio range; the allocator
    draws from a small space and re-draws on observed collision, the
    essential behaviour of ephemeral transaction identifiers.
    """

    #: distinguishes default-constructed allocators: with a shared
    #: random.Random(0) every node would draw the *same* id sequence —
    #: guaranteed collisions, the opposite of what the scheme wants.
    _instances = itertools.count()

    def __init__(self, rng: Optional[random.Random] = None, id_bits: int = 16) -> None:
        self.rng = rng or make_rng(0, f"ephemeral-id:{next(self._instances)}")
        self.id_space = 2**id_bits
        self._in_use: set = set()

    def allocate(self) -> int:
        if len(self._in_use) >= self.id_space:
            raise RuntimeError("ephemeral id space exhausted")
        while True:
            candidate = self.rng.randrange(self.id_space)
            if candidate not in self._in_use:
                self._in_use.add(candidate)
                return candidate

    def release(self, ephemeral_id: int) -> None:
        self._in_use.discard(ephemeral_id)

    def observed_collision(self, ephemeral_id: int) -> int:
        """Neighbor reported our id in use elsewhere: re-draw."""
        self.release(ephemeral_id)
        return self.allocate()

    @property
    def active(self) -> int:
        return len(self._in_use)
