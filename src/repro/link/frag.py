"""Message fragmentation and reassembly over 27-byte radio fragments.

Semantics match the testbed: a message of N bytes becomes
``ceil(N / fragment_payload)`` fragments, each carrying a small
(message-id, index, count) tag; the receiver delivers the message only
when *every* fragment of it has arrived.  There is no ARQ, so one lost
fragment loses the whole message — the effect that makes the paper's
MAC "perform particularly poorly at high load".

Fragments carry the message object by reference (this is a simulator,
not a codec); ``nbytes`` drives airtime and traffic accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.sim import Simulator, TraceBus, trace_id_of
from repro.sim.metrics import MetricsRegistry, current_registry


@dataclass(frozen=True)
class Fragment:
    """One radio-sized piece of a message."""

    message_id: Tuple[int, int]  # (origin node, per-node counter)
    index: int
    count: int
    nbytes: int                  # payload bytes carried by this fragment
    message: Any                 # the full message object (by reference)
    link_src: int = -1           # filled in by the receiver path


class FragmentationLayer:
    """Per-node fragmentation/reassembly engine.

    Send path: :meth:`send_message` splits a message into fragments and
    enqueues each on the MAC.  Receive path: modem fragments funnel into
    :meth:`on_fragment`; complete messages fire ``deliver_callback``.
    """

    def __init__(
        self,
        sim: Simulator,
        mac,
        node_id: int,
        fragment_payload: int = 27,
        reassembly_timeout: float = 5.0,
        trace: Optional[TraceBus] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.mac = mac
        self.node_id = node_id
        self.fragment_payload = fragment_payload
        self.reassembly_timeout = reassembly_timeout
        self.trace = trace or TraceBus()
        registry = metrics if metrics is not None else current_registry()
        self._m_sent = registry.counter("frag.messages_sent")
        self._m_delivered = registry.counter("frag.messages_delivered")
        self._m_incomplete = registry.counter(
            "frag.drops", reason="reassembly-failure"
        )
        self.deliver_callback: Optional[Callable[[Any, int, int], None]] = None
        #: fault-injection hook: called with (fragment, src) for every
        #: inbound fragment; returning False drops it (corruption /
        #: truncation at the link layer — the fragment never reaches
        #: reassembly, so one hit loses its whole message, like a CRC
        #: failure would on the real radio).
        self.inbound_filter: Optional[Callable[[Fragment, int], bool]] = None
        self._message_counter = 0
        # (message_id) -> (set of indices received, count, expiry event, nbytes, message, src)
        self._partial: Dict[Tuple[int, int], dict] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_incomplete = 0
        self.mac.modem.receive_callback = self._on_modem_fragment

    def fragments_for(self, nbytes: int) -> int:
        """How many fragments a message of ``nbytes`` needs."""
        if nbytes <= 0:
            raise ValueError("message size must be positive")
        return max(1, math.ceil(nbytes / self.fragment_payload))

    def send_message(
        self,
        message: Any,
        nbytes: int,
        link_dst: Optional[int] = None,
    ) -> int:
        """Fragment and enqueue a message; returns the fragment count."""
        self._message_counter += 1
        message_id = (self.node_id, self._message_counter)
        count = self.fragments_for(nbytes)
        remaining = nbytes
        for index in range(count):
            size = min(self.fragment_payload, remaining)
            remaining -= size
            fragment = Fragment(
                message_id=message_id,
                index=index,
                count=count,
                nbytes=size,
                message=message,
            )
            self.mac.enqueue(fragment, size, link_dst)
        self.messages_sent += 1
        self._m_sent.inc()
        return count

    # -- receive ------------------------------------------------------------

    def _on_modem_fragment(
        self, payload: Any, src: int, nbytes: int, link_dst: Optional[int]
    ) -> None:
        if not isinstance(payload, Fragment):
            return
        self.on_fragment(payload, src)

    def on_fragment(self, fragment: Fragment, src: int) -> None:
        if self.inbound_filter is not None and not self.inbound_filter(fragment, src):
            return
        if fragment.count == 1:
            self._deliver(fragment.message, src, fragment.nbytes)
            return
        state = self._partial.get(fragment.message_id)
        if state is None:
            expiry = self.sim.schedule(
                self.reassembly_timeout,
                self._expire,
                fragment.message_id,
                name="frag.expire",
            )
            state = {
                "indices": set(),
                "count": fragment.count,
                "nbytes": 0,
                "message": fragment.message,
                "src": src,
                "expiry": expiry,
            }
            self._partial[fragment.message_id] = state
        indices: Set[int] = state["indices"]
        if fragment.index in indices:
            return
        indices.add(fragment.index)
        state["nbytes"] += fragment.nbytes
        if len(indices) == state["count"]:
            state["expiry"].cancel()
            del self._partial[fragment.message_id]
            self._deliver(state["message"], state["src"], state["nbytes"])

    def _deliver(self, message: Any, src: int, nbytes: int) -> None:
        self.messages_delivered += 1
        self._m_delivered.inc()
        if self.deliver_callback is not None:
            self.deliver_callback(message, src, nbytes)

    def _expire(self, message_id: Tuple[int, int]) -> None:
        state = self._partial.pop(message_id, None)
        if state is not None:
            self.messages_incomplete += 1
            self._m_incomplete.inc()
            trace_id = trace_id_of(state["message"])
            if trace_id is not None:
                self.trace.emit(
                    self.sim.now,
                    "path.drop",
                    node=self.node_id,
                    trace=trace_id,
                    reason="reassembly-failure",
                    layer="link",
                    src=state["src"],
                )

    def reset(self) -> None:
        """Drop all partial reassembly state (a reboot loses it)."""
        for state in self._partial.values():
            state["expiry"].cancel()
        self._partial.clear()

    @property
    def partial_count(self) -> int:
        return len(self._partial)
