"""Link layer: fragmentation/reassembly and neighbor identity.

Paper Section 4.4: "Several low-power radio designs have packet sizes as
small as 30B.  We require moderate size packets (100B or more) and use
code for fragmentation and reassembly when necessary."  Section 6.1:
"Since all messages are broken into several 27-byte fragments, loss of a
single fragment results in loss of the whole message."
"""

from repro.link.frag import FragmentationLayer, Fragment
from repro.link.neighbor import NeighborEntry, NeighborTable, EphemeralIdAllocator

__all__ = [
    "FragmentationLayer",
    "Fragment",
    "NeighborTable",
    "NeighborEntry",
    "EphemeralIdAllocator",
]
