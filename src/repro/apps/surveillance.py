"""The Figure 8 surveillance application.

A sink on one side of the testbed subscribes to detection events;
sources on the other side report synchronized detections every 6 s.
With aggregation enabled, every node runs a :class:`SuppressionFilter`
that passes the first copy of each event and suppresses the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set

from repro.apps.sensors import (
    SURVEILLANCE_TYPE,
    DetectionSource,
    SynchronizedEventClock,
)
from repro.core.api import DiffusionRouting
from repro.filters.aggregation import SuppressionFilter
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.testbed.network import SensorNetwork


class SurveillanceSink:
    """Counts distinct and total event receptions at the user node."""

    def __init__(
        self,
        api: DiffusionRouting,
        task_type: str = SURVEILLANCE_TYPE,
        interval_ms: int = 6000,
    ) -> None:
        self.api = api
        self.distinct_events: Set[int] = set()
        self.total_receptions = 0
        attrs = (
            AttributeVector.builder()
            .eq(Key.TYPE, task_type)
            .actual(Key.INTERVAL, interval_ms)
            .build()
        )
        self.handle = api.subscribe(attrs, self._on_data)

    def _on_data(self, attrs: AttributeVector, message) -> None:
        seq = attrs.value_of(Key.SEQUENCE)
        if seq is None:
            return
        self.total_receptions += 1
        self.distinct_events.add(int(seq))


@dataclass
class SurveillanceResult:
    """One trial's outcome, in Figure 8's units."""

    sources: int
    suppression: bool
    duration: float
    distinct_events_received: int
    total_receptions: int
    events_generated: int
    diffusion_bytes_sent: int
    diffusion_messages_sent: int

    @property
    def bytes_per_event(self) -> float:
        """Figure 8's y-axis: bytes sent from all diffusion modules,
        normalized to the number of distinct events received."""
        if self.distinct_events_received == 0:
            return float("inf")
        return self.diffusion_bytes_sent / self.distinct_events_received

    @property
    def delivery_ratio(self) -> float:
        """Fraction of generated distinct events that reached the sink."""
        if self.events_generated == 0:
            return 0.0
        return self.distinct_events_received / self.events_generated


class SurveillanceExperiment:
    """Wires sink, sources, and (optionally) suppression filters."""

    def __init__(
        self,
        network: SensorNetwork,
        sink_id: int,
        source_ids: Sequence[int],
        suppression: bool = True,
        event_interval: float = 6.0,
        event_bytes: int = 112,
        task_type: str = SURVEILLANCE_TYPE,
        warmup: float = 10.0,
    ) -> None:
        self.network = network
        self.sink_id = sink_id
        self.source_ids = list(source_ids)
        self.suppression = suppression
        self.clock = SynchronizedEventClock(interval=event_interval)
        self.sink = SurveillanceSink(network.api(sink_id), task_type=task_type)
        self.filters: List[SuppressionFilter] = []
        if suppression:
            match = AttributeVector.builder().eq(Key.TYPE, task_type).build()
            for node_id in network.node_ids():
                self.filters.append(
                    SuppressionFilter(network.node(node_id), match_attrs=match)
                )
        self.sources = [
            DetectionSource(
                network.api(node_id),
                self.clock,
                event_bytes=event_bytes,
                task_type=task_type,
                start=warmup,
            )
            for node_id in self.source_ids
        ]

    def run(self, duration: float) -> SurveillanceResult:
        self.network.run(until=duration)
        # Sequence numbers are synchronized, so the distinct events
        # generated equal what any single source emitted.
        generated = max((s.events_generated for s in self.sources), default=0)
        return SurveillanceResult(
            sources=len(self.sources),
            suppression=self.suppression,
            duration=duration,
            distinct_events_received=len(self.sink.distinct_events),
            total_receptions=self.sink.total_receptions,
            events_generated=generated,
            diffusion_bytes_sent=self.network.total_diffusion_bytes_sent(),
            diffusion_messages_sent=self.network.total_diffusion_messages_sent(),
        )
