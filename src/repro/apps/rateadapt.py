"""Closed-loop rate adaptation (paper Section 6.4 future work).

"Finally, the diffusion applications we currently use operate in an
open loop; feedback and congestion control are needed."

This module closes the loop using machinery the protocol already has:
the ``INTERVAL`` attribute that interests carry (Section 3.2's worked
example requests "interval IS 20ms") and the "subscribe for
subscriptions" pattern that lets sources see the interests tasking
them.

* :class:`RateAdaptingSource` reports at whatever interval the most
  recent matching interest requested, instead of a fixed timer —
  re-tasking a source is just re-subscribing.
* :class:`AdaptiveSink` watches its own loss rate (sequence gaps) and
  re-issues its subscription with a longer interval when loss is high,
  shorter when the network has headroom — a simple AIMD-flavoured
  controller over the existing naming machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.api import DiffusionRouting, SubscriptionHandle
from repro.naming import AttributeVector
from repro.naming.keys import ClassValue, Key


class RateAdaptingSource:
    """A source whose reporting rate follows the interests tasking it."""

    def __init__(
        self,
        api: DiffusionRouting,
        task_type: str,
        default_interval: float = 6.0,
        min_interval: float = 0.5,
        event_bytes: int = 112,
    ) -> None:
        self.api = api
        self.task_type = task_type
        self.interval = default_interval
        self.min_interval = min_interval
        self.event_bytes = event_bytes
        self.events_sent = 0
        self.retaskings = 0
        self._publication = api.publish(
            AttributeVector.builder().actual(Key.TYPE, task_type).build()
        )
        # Subscribe for subscriptions: interests matching our data tell
        # us how fast to report.
        watch = (
            AttributeVector.builder()
            .eq(Key.CLASS, int(ClassValue.INTEREST))
            .actual(Key.TYPE, task_type)
            .build()
        )
        api.subscribe(watch, self._on_interest)
        self._timer = api.node.sim.schedule(
            default_interval, self._tick, name="rateadapt.tick"
        )

    def _on_interest(self, attrs: AttributeVector, message) -> None:
        requested_ms = attrs.value_of(Key.INTERVAL)
        if requested_ms is None:
            return
        requested = max(self.min_interval, float(requested_ms) / 1000.0)
        if abs(requested - self.interval) > 1e-9:
            self.retaskings += 1
            self.interval = requested

    def _tick(self) -> None:
        from repro.apps.sensors import _pad_to

        attrs = (
            AttributeVector.builder()
            .actual(Key.SEQUENCE, self.events_sent)
            .build()
        )
        preview = AttributeVector(
            [
                *list(
                    AttributeVector.builder()
                    .actual(Key.TYPE, self.task_type)
                    .build()
                ),
                *list(attrs),
            ]
        )
        padding = _pad_to(
            preview, self.event_bytes, self.api.node.config.header_bytes
        )
        self.api.send(self._publication, attrs, padding_bytes=padding)
        self.events_sent += 1
        self._timer = self.api.node.sim.schedule(
            self.interval, self._tick, name="rateadapt.tick"
        )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()


@dataclass
class RateEpochStats:
    """One controller evaluation window."""

    time: float
    interval_ms: int
    received: int
    expected: int

    @property
    def loss(self) -> float:
        if self.expected <= 0:
            return 0.0
        return max(0.0, 1.0 - self.received / self.expected)


class AdaptiveSink:
    """Subscribes with an interval and adapts it to observed loss.

    Controller: every ``epoch`` seconds, compare received event count
    against what the current rate should have produced.  Loss above
    ``back_off_loss`` → multiply the interval by ``back_off_factor``
    (slow down, multiplicative).  Loss below ``speed_up_loss`` →
    subtract ``speed_up_ms`` (speed up, additive).  Interval is clamped
    to [min_interval_ms, max_interval_ms].  Changing the interval means
    re-subscribing: a new interest (different actuals) re-tasks the
    sources.
    """

    def __init__(
        self,
        api: DiffusionRouting,
        task_type: str,
        initial_interval_ms: int = 1000,
        min_interval_ms: int = 500,
        max_interval_ms: int = 30_000,
        epoch: float = 30.0,
        back_off_loss: float = 0.3,
        speed_up_loss: float = 0.05,
        back_off_factor: float = 2.0,
        speed_up_ms: int = 500,
    ) -> None:
        self.api = api
        self.task_type = task_type
        self.interval_ms = initial_interval_ms
        self.min_interval_ms = min_interval_ms
        self.max_interval_ms = max_interval_ms
        self.epoch = epoch
        self.back_off_loss = back_off_loss
        self.speed_up_loss = speed_up_loss
        self.back_off_factor = back_off_factor
        self.speed_up_ms = speed_up_ms
        self.events_received = 0
        self.history: List[RateEpochStats] = []
        self._epoch_received = 0
        #: every data origin ever heard from (sources we have tasked)
        self.known_origins: set = set()
        self._subscription: Optional[SubscriptionHandle] = None
        self._skip_next_epoch = False
        self._resubscribe()
        self._timer = api.node.sim.schedule(
            epoch, self._evaluate, name="rateadapt.epoch"
        )

    # -- subscription management ------------------------------------------

    def _subscription_attrs(self) -> AttributeVector:
        return (
            AttributeVector.builder()
            .eq(Key.TYPE, self.task_type)
            .actual(Key.INTERVAL, self.interval_ms)
            .build()
        )

    def _resubscribe(self) -> None:
        if self._subscription is not None:
            self.api.unsubscribe(self._subscription)
        self._subscription = self.api.subscribe(
            self._subscription_attrs(), self._on_event
        )

    def _on_event(self, attrs: AttributeVector, message) -> None:
        self.events_received += 1
        self._epoch_received += 1
        if message.data_origin is not None:
            self.known_origins.add(message.data_origin)

    # -- the controller ---------------------------------------------------------

    def _epoch_counts(self):
        """(received, expected) for the closing epoch.

        Sources honor our requested INTERVAL (that is the whole point
        of carrying it in the interest), so each known origin should
        have produced ``epoch / interval`` events.  Counting against
        that — rather than against sequence gaps inside the epoch —
        makes bursty blackouts visible: a silent epoch is 100% loss,
        not an absence of evidence."""
        received = self._epoch_received
        per_origin = self.epoch * 1000.0 / self.interval_ms
        expected = int(round(len(self.known_origins) * per_origin))
        if not self.known_origins:
            expected = received  # nothing tasked yet: no signal
        return received, expected

    def _evaluate(self) -> None:
        received, expected = self._epoch_counts()
        stats = RateEpochStats(
            time=self.api.node.sim.now,
            interval_ms=self.interval_ms,
            received=received,
            expected=expected,
        )
        self.history.append(stats)
        self._epoch_received = 0
        if self._skip_next_epoch:
            # The epoch that follows a re-tasking mixes old-rate and
            # new-rate traffic; its loss estimate is meaningless.
            self._skip_next_epoch = False
            self._timer = self.api.node.sim.schedule(
                self.epoch, self._evaluate, name="rateadapt.epoch"
            )
            return
        new_interval = self.interval_ms
        if stats.loss > self.back_off_loss:
            new_interval = int(self.interval_ms * self.back_off_factor)
        elif stats.loss < self.speed_up_loss:
            new_interval = self.interval_ms - self.speed_up_ms
        new_interval = max(
            self.min_interval_ms, min(self.max_interval_ms, new_interval)
        )
        if new_interval != self.interval_ms:
            self.interval_ms = new_interval
            self._skip_next_epoch = True
            self._resubscribe()
        self._timer = self.api.node.sim.schedule(
            self.epoch, self._evaluate, name="rateadapt.epoch"
        )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
