"""Collaborative signal processing: sensor fusion and target tracking.

Paper Section 5.3: "Researchers at BAE Systems and Pennsylvania State
University have used our system for collaborative signal processing ...
The combined system used our system to communicate data between sensors
using named data and diffusion.  At the time our filter architecture
was not in place; interesting future work is to evaluate how sensor
fusion would be done as a filter."

This module is that future work: a field of proximity sensors detects a
moving target; a :class:`FusionFilter` combines concurrent detections
in-network — fused confidence ``1 - prod(1 - c_i)`` under the usual
independence assumption, position estimated as the confidence-weighted
centroid of the reporting sensors — and forwards one fused detection
per observation epoch.  A :class:`TrackingSink` assembles the track and
scores it against ground truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.core.api import DiffusionRouting
from repro.core.filter_api import FilterHandle, GRADIENT_FILTER_PRIORITY
from repro.core.messages import Message
from repro.core.node import DiffusionNode
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.radio.topology import Topology

DETECTION_TYPE = "target-detection"


class MovingTarget:
    """Ground truth: a target crossing the field on a straight path."""

    def __init__(
        self,
        start: Tuple[float, float],
        end: Tuple[float, float],
        speed: float,
        depart_at: float = 0.0,
    ) -> None:
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.start = start
        self.end = end
        self.speed = speed
        self.depart_at = depart_at
        self._length = math.hypot(end[0] - start[0], end[1] - start[1])

    @property
    def arrival_time(self) -> float:
        return self.depart_at + self._length / self.speed

    def position_at(self, now: float) -> Tuple[float, float]:
        if now <= self.depart_at:
            return self.start
        progress = min(1.0, (now - self.depart_at) * self.speed / self._length)
        return (
            self.start[0] + progress * (self.end[0] - self.start[0]),
            self.start[1] + progress * (self.end[1] - self.start[1]),
        )


class ProximitySensor:
    """One node's detector: senses the target when it is close.

    Detection confidence falls off with distance:
    ``c = max_confidence / (1 + (d / scale)^2)``, cut off at
    ``sense_range`` — a standard acoustic-amplitude model.  Reports are
    tagged with the observation epoch so fusion can group them.
    """

    def __init__(
        self,
        api: DiffusionRouting,
        target: MovingTarget,
        topology: Topology,
        sense_range: float = 25.0,
        scale: float = 10.0,
        max_confidence: float = 0.95,
        sample_interval: float = 2.0,
        detection_type: str = DETECTION_TYPE,
    ) -> None:
        self.api = api
        self.target = target
        self.topology = topology
        self.sense_range = sense_range
        self.scale = scale
        self.max_confidence = max_confidence
        self.sample_interval = sample_interval
        self.detections = 0
        position = topology.position(api.node_id)
        self._x, self._y = position.x, position.y
        self._publication = api.publish(
            AttributeVector.builder()
            .actual(Key.TYPE, detection_type)
            .actual(Key.X_COORD, self._x)
            .actual(Key.Y_COORD, self._y)
            .build()
        )
        self._timer = api.node.sim.schedule(
            (api.node_id % 10) * 0.01, self._sample, name="sensor.sample"
        )

    def epoch_at(self, now: float) -> int:
        return int(now // self.sample_interval)

    def confidence_for(self, distance: float) -> float:
        if distance > self.sense_range:
            return 0.0
        return self.max_confidence / (1.0 + (distance / self.scale) ** 2)

    def _sample(self) -> None:
        sim = self.api.node.sim
        tx, ty = self.target.position_at(sim.now)
        distance = math.hypot(tx - self._x, ty - self._y)
        confidence = self.confidence_for(distance)
        if confidence > 0.05:
            self.detections += 1
            attrs = (
                AttributeVector.builder()
                .actual(Key.CONFIDENCE, confidence)
                .actual(Key.INTENSITY, 1.0 / (1.0 + distance))
                .actual(Key.TIMESTAMP, self.epoch_at(sim.now))
                .actual(Key.SEQUENCE, self.detections)
                .build()
            )
            self.api.send(self._publication, attrs)
        self._timer = sim.schedule(
            self.sample_interval, self._sample, name="sensor.sample"
        )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()


class FusionFilter:
    """Combines detections of the same epoch into one fused report."""

    def __init__(
        self,
        node: DiffusionNode,
        delay: float = 0.8,
        priority: int = GRADIENT_FILTER_PRIORITY + 20,
        detection_type: str = DETECTION_TYPE,
    ) -> None:
        self.node = node
        self.delay = delay
        self.fusions = 0
        self.reports_fused = 0
        # epoch -> [first message, [(x, y, confidence)], timer]
        self._pending: Dict[int, list] = {}
        self._done: set = set()
        match = AttributeVector.builder().eq(Key.TYPE, detection_type).build()
        self.handle = node.add_filter(match, priority, self._callback,
                                      name="fusion")

    @staticmethod
    def fuse_confidences(confidences: List[float]) -> float:
        """Independent-evidence fusion: 1 - prod(1 - c_i)."""
        miss = 1.0
        for c in confidences:
            miss *= 1.0 - min(1.0, max(0.0, c))
        return 1.0 - miss

    @staticmethod
    def weighted_centroid(
        observations: List[Tuple[float, float, float]]
    ) -> Tuple[float, float]:
        total = sum(weight for _, _, weight in observations)
        if total <= 0:
            xs = [x for x, _, _ in observations]
            ys = [y for _, y, _ in observations]
            return (sum(xs) / len(xs), sum(ys) / len(ys))
        x = sum(x * w for x, _, w in observations) / total
        y = sum(y * w for _, y, w in observations) / total
        return (x, y)

    def _callback(self, message: Message, handle: FilterHandle) -> None:
        if not message.msg_type.is_data:
            self.node.send_message(message, handle)
            return
        attrs = message.attrs
        epoch = attrs.value_of(Key.TIMESTAMP)
        confidence = attrs.value_of(Key.CONFIDENCE)
        x = attrs.value_of(Key.X_COORD)
        y = attrs.value_of(Key.Y_COORD)
        if None in (epoch, confidence, x, y):
            self.node.send_message(message, handle)
            return
        from repro.core.messages import MessageType as _MT

        exploratory = message.msg_type is _MT.EXPLORATORY_DATA
        epoch = int(epoch)
        observation = (float(x), float(y), float(confidence))
        if epoch in self._done:
            self.reports_fused += 1
            if exploratory:
                # Exploratory messages must keep flowing even after the
                # fused report went out: they are what establishes and
                # repairs each source's reinforced path.
                self.node.send_message(message, handle)
            return
        pending = self._pending.get(epoch)
        if pending is None:
            timer = self.node.sim.schedule(
                self.delay, self._flush, epoch, name="fusion.flush"
            )
            self._pending[epoch] = [message, [observation], timer]
        else:
            pending[1].append(observation)
            self.reports_fused += 1
        if exploratory:
            self.node.send_message(message, handle)

    def _flush(self, epoch: int) -> None:
        pending = self._pending.pop(epoch, None)
        if pending is None:
            return
        message, observations, _ = pending
        self._done.add(epoch)
        if len(self._done) > 512:
            self._done = set(sorted(self._done)[-256:])
        fused_confidence = self.fuse_confidences(
            [c for _, _, c in observations]
        )
        estimate_x, estimate_y = self.weighted_centroid(observations)
        fused_attrs = (
            message.attrs.replace_actual(Key.CONFIDENCE, fused_confidence)
            .replace_actual(Key.X_COORD, estimate_x)
            .replace_actual(Key.Y_COORD, estimate_y)
        )
        self.fusions += 1
        self.node.send_message(replace(message, attrs=fused_attrs), self.handle)

    def remove(self) -> None:
        for pending in self._pending.values():
            pending[2].cancel()
        self._pending.clear()
        self.node.remove_filter(self.handle)


@dataclass
class TrackPoint:
    """One fused observation at the sink."""

    time: float
    epoch: int
    x: float
    y: float
    confidence: float


class TrackingSink:
    """Collects fused detections and scores the track."""

    def __init__(
        self,
        api: DiffusionRouting,
        target: MovingTarget,
        sample_interval: float = 2.0,
        detection_type: str = DETECTION_TYPE,
        min_confidence: float = 0.0,
    ) -> None:
        self.api = api
        self.target = target
        self.sample_interval = sample_interval
        self.min_confidence = min_confidence
        self.track: List[TrackPoint] = []
        self._epochs_seen: Dict[int, TrackPoint] = {}
        sub = (
            AttributeVector.builder()
            .eq(Key.TYPE, detection_type)
            .actual(Key.INTERVAL, int(sample_interval * 1000))
            .build()
        )
        api.subscribe(sub, self._on_detection)

    def _on_detection(self, attrs: AttributeVector, message) -> None:
        epoch = attrs.value_of(Key.TIMESTAMP)
        confidence = attrs.value_of(Key.CONFIDENCE)
        x = attrs.value_of(Key.X_COORD)
        y = attrs.value_of(Key.Y_COORD)
        if None in (epoch, confidence, x, y):
            return
        if confidence < self.min_confidence:
            return
        epoch = int(epoch)
        point = TrackPoint(
            time=self.api.node.sim.now,
            epoch=epoch,
            x=float(x),
            y=float(y),
            confidence=float(confidence),
        )
        existing = self._epochs_seen.get(epoch)
        if existing is None:
            self._epochs_seen[epoch] = point
            self.track.append(point)
        elif point.confidence > existing.confidence:
            # A fused estimate supersedes a raw single-sensor report.
            self.track[self.track.index(existing)] = point
            self._epochs_seen[epoch] = point

    def mean_error(self) -> Optional[float]:
        """Mean distance between estimates and ground truth positions."""
        if not self.track:
            return None
        errors = []
        for point in self.track:
            # Ground truth at the middle of the observation epoch.
            truth_time = (point.epoch + 0.5) * self.sample_interval
            tx, ty = self.target.position_at(truth_time)
            errors.append(math.hypot(point.x - tx, point.y - ty))
        return sum(errors) / len(errors)
