"""In-network monitoring: residual energy scans.

Paper Section 7: "Tools are needed to report the changing radio
topology, observe collision rates and energy consumption ... We have
begun work on in-network monitoring tools [40]" — reference [40] is
Zhao/Govindan/Estrin's residual-energy scans.  This module implements
that application on the public API:

* every node runs an :class:`EnergyReporter` publishing its residual
  energy periodically;
* an :class:`EnergyScanAggregator` filter merges reports in-network:
  reports passing a node within a window are combined into one digest
  carrying min/max/sum/count, so the monitoring sink receives a
  network-wide energy summary at a fraction of the per-node traffic;
* an :class:`EnergyScanSink` subscribes and maintains the scan.

It doubles as a demonstration that aggregation generalizes beyond
duplicate suppression: this filter *combines* values rather than
discarding copies.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import Optional

from repro.core.api import DiffusionRouting
from repro.core.filter_api import FilterHandle, GRADIENT_FILTER_PRIORITY
from repro.core.messages import Message
from repro.core.node import DiffusionNode
from repro.energy import EnergyLedger
from repro.naming import Attribute, AttributeVector, Operator
from repro.naming.keys import Key

ENERGY_SCAN_TYPE = "energy-scan"


@dataclass
class EnergyDigest:
    """Aggregated residual-energy summary."""

    minimum: float
    maximum: float
    total: float
    count: int

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "EnergyDigest") -> "EnergyDigest":
        return EnergyDigest(
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
            total=self.total + other.total,
            count=self.count + other.count,
        )

    def encode(self) -> bytes:
        return struct.pack(
            "<dddI", self.minimum, self.maximum, self.total, self.count
        )

    @classmethod
    def decode(cls, payload: bytes) -> "EnergyDigest":
        minimum, maximum, total, count = struct.unpack("<dddI", payload)
        return cls(minimum=minimum, maximum=maximum, total=total, count=count)

    @classmethod
    def single(cls, value: float) -> "EnergyDigest":
        return cls(minimum=value, maximum=value, total=value, count=1)


class EnergyReporter:
    """Publishes this node's residual energy every ``interval`` seconds.

    Residual energy is ``budget`` minus what the node's ledger has spent
    so far (in the paper's relative units).
    """

    def __init__(
        self,
        api: DiffusionRouting,
        ledger: EnergyLedger,
        budget: float,
        interval: float = 30.0,
        scan_type: str = ENERGY_SCAN_TYPE,
    ) -> None:
        if budget <= 0:
            raise ValueError("energy budget must be positive")
        self.api = api
        self.ledger = ledger
        self.budget = budget
        self.interval = interval
        self.reports_sent = 0
        self._publication = api.publish(
            AttributeVector.builder().actual(Key.TYPE, scan_type).build()
        )
        self._timer = api.node.sim.schedule(
            interval * 0.1 * (1 + (api.node_id % 10)),
            self._tick,
            name="escan.tick",
        )

    def residual_energy(self) -> float:
        spent = self.ledger.energy(elapsed=self.api.node.sim.now)
        return max(0.0, self.budget - spent)

    def _tick(self) -> None:
        digest = EnergyDigest.single(self.residual_energy())
        attrs = (
            AttributeVector.builder()
            .actual(Key.SEQUENCE, self.reports_sent)
            .actual(Key.INSTANCE, f"node-{self.api.node_id}")
            .build()
            .with_attribute(
                Attribute.blob(Key.PAYLOAD, Operator.IS, digest.encode())
            )
        )
        self.api.send(self._publication, attrs)
        self.reports_sent += 1
        self._timer = self.api.node.sim.schedule(
            self.interval, self._tick, name="escan.tick"
        )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()


class EnergyScanAggregator:
    """Filter that merges energy reports crossing this node.

    Holds the first report of a window for ``delay`` seconds, folds any
    further reports into its digest, then forwards a single combined
    message.  The merged message keeps the identity (origin, msg id) of
    the first report so core dedup still works.
    """

    def __init__(
        self,
        node: DiffusionNode,
        delay: float = 1.0,
        priority: int = GRADIENT_FILTER_PRIORITY + 20,
        scan_type: str = ENERGY_SCAN_TYPE,
    ) -> None:
        self.node = node
        self.delay = delay
        self.reports_merged = 0
        self.digests_forwarded = 0
        self._pending: Optional[list] = None  # [message, digest, timer]
        match = AttributeVector.builder().eq(Key.TYPE, scan_type).build()
        self.handle = node.add_filter(match, priority, self._callback,
                                      name="energy-scan")

    def _callback(self, message: Message, handle: FilterHandle) -> None:
        if not message.msg_type.is_data:
            self.node.send_message(message, handle)
            return
        payload = message.attrs.value_of(Key.PAYLOAD)
        if not isinstance(payload, bytes):
            self.node.send_message(message, handle)
            return
        try:
            digest = EnergyDigest.decode(payload)
        except struct.error:
            self.node.send_message(message, handle)
            return
        if self._pending is None:
            timer = self.node.sim.schedule(
                self.delay, self._flush, name="escan.flush"
            )
            self._pending = [message, digest, timer]
            return
        self._pending[1] = self._pending[1].merge(digest)
        self.reports_merged += 1

    def _flush(self) -> None:
        if self._pending is None:
            return
        message, digest, _ = self._pending
        self._pending = None
        merged_attrs = message.attrs.without_key(Key.PAYLOAD).with_attribute(
            Attribute.blob(Key.PAYLOAD, Operator.IS, digest.encode())
        )
        self.digests_forwarded += 1
        self.node.send_message(
            replace(message, attrs=merged_attrs), self.handle
        )

    def remove(self) -> None:
        if self._pending is not None:
            self._pending[2].cancel()
            self._pending = None
        self.node.remove_filter(self.handle)


class EnergyScanSink:
    """The monitoring station: accumulates the network energy picture."""

    def __init__(
        self,
        api: DiffusionRouting,
        scan_type: str = ENERGY_SCAN_TYPE,
        interval_ms: int = 30_000,
    ) -> None:
        self.api = api
        self.digests_received = 0
        self.network_view: Optional[EnergyDigest] = None
        sub = (
            AttributeVector.builder()
            .eq(Key.TYPE, scan_type)
            .actual(Key.INTERVAL, interval_ms)
            .build()
        )
        api.subscribe(sub, self._on_digest)

    def _on_digest(self, attrs: AttributeVector, message) -> None:
        payload = attrs.value_of(Key.PAYLOAD)
        if not isinstance(payload, bytes):
            return
        try:
            digest = EnergyDigest.decode(payload)
        except struct.error:
            return
        self.digests_received += 1
        if self.network_view is None:
            self.network_view = digest
        else:
            # A scan snapshot: keep the most pessimistic minimum and the
            # freshest counts by merging.
            self.network_view = self.network_view.merge(digest)
