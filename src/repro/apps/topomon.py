"""Radio-topology monitoring.

Paper Section 7: "Tools are needed to report the changing radio
topology" — on the testbed, understanding "what was going on in a
network of dozens of physically distributed nodes" was a recurring
struggle.  This application gives the experimenter that view using the
network itself:

* every node runs a :class:`NeighborReporter` that periodically
  publishes the set of neighbors it has recently *heard* (drawn from
  its link-layer :class:`~repro.link.neighbor.NeighborTable` or, in
  simulation, from received-message history);
* a :class:`TopologyMonitor` at the monitoring station assembles the
  reports into a directed connectivity graph (networkx) and answers the
  questions the paper's debugging needed: is the network partitioned?
  how many hops across?  which links are asymmetric?
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.core.api import DiffusionRouting
from repro.naming import Attribute, AttributeVector, Operator
from repro.naming.keys import Key

TOPOLOGY_TYPE = "topology-report"


def encode_neighbor_list(neighbors) -> bytes:
    return b"".join(struct.pack("<H", n) for n in sorted(neighbors))


def decode_neighbor_list(payload: bytes) -> List[int]:
    if len(payload) % 2:
        raise ValueError("neighbor payload must be uint16-aligned")
    return [
        struct.unpack_from("<H", payload, offset)[0]
        for offset in range(0, len(payload), 2)
    ]


class NeighborReporter:
    """Publishes who this node has heard recently."""

    def __init__(
        self,
        api: DiffusionRouting,
        interval: float = 30.0,
        window: float = 60.0,
        report_type: str = TOPOLOGY_TYPE,
    ) -> None:
        self.api = api
        self.interval = interval
        self.window = window
        self.reports_sent = 0
        self._heard: Dict[int, float] = {}
        self._publication = api.publish(
            AttributeVector.builder()
            .actual(Key.TYPE, report_type)
            .actual(Key.INSTANCE, f"node-{api.node_id}")
            .build()
        )
        # Tap the node's receive path to learn neighbors.
        node = api.node
        original = node._on_network_message

        def tapped(message, src, nbytes):
            self._heard[src] = node.sim.now
            original(message, src, nbytes)

        node._on_network_message = tapped
        if node.transport is not None:
            node.transport.deliver_callback = tapped
        self._timer = node.sim.schedule(
            interval * (0.5 + (api.node_id % 7) / 14.0),
            self._tick,
            name="topomon.tick",
        )

    def recent_neighbors(self) -> List[int]:
        now = self.api.node.sim.now
        return sorted(
            n for n, t in self._heard.items() if now - t <= self.window
        )

    def _tick(self) -> None:
        neighbors = self.recent_neighbors()
        attrs = (
            AttributeVector.builder()
            .actual(Key.SEQUENCE, self.reports_sent)
            .build()
            .with_attribute(
                Attribute.blob(
                    Key.PAYLOAD, Operator.IS, encode_neighbor_list(neighbors)
                )
            )
        )
        self.api.send(self._publication, attrs)
        self.reports_sent += 1
        self._timer = self.api.node.sim.schedule(
            self.interval, self._tick, name="topomon.tick"
        )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()


@dataclass
class TopologySnapshot:
    """Connectivity analysis derived from the reports."""

    graph: "nx.DiGraph"
    reporting_nodes: Set[int]

    @property
    def node_count(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def link_count(self) -> int:
        return self.graph.number_of_edges()

    def asymmetric_links(self) -> List[Tuple[int, int]]:
        """Directed links whose reverse was not reported — the paper's
        "some experiments seemed to show asymmetric links"."""
        return sorted(
            (a, b)
            for a, b in self.graph.edges
            if not self.graph.has_edge(b, a)
        )

    def is_connected(self) -> bool:
        if self.graph.number_of_nodes() <= 1:
            return True
        return nx.is_weakly_connected(self.graph)

    def partitions(self) -> List[Set[int]]:
        return [set(c) for c in nx.weakly_connected_components(self.graph)]

    def hops_across(self) -> Optional[int]:
        """The network diameter over bidirectional links ("the network
        is typically 5 hops across")."""
        undirected = nx.Graph(
            (a, b) for a, b in self.graph.edges if self.graph.has_edge(b, a)
        )
        if undirected.number_of_nodes() == 0:
            return None
        if not nx.is_connected(undirected):
            return None
        return nx.diameter(undirected)

    def hop_count(self, a: int, b: int) -> Optional[int]:
        try:
            return nx.shortest_path_length(self.graph, a, b)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None


class TopologyMonitor:
    """The monitoring station: builds the graph from reports."""

    def __init__(
        self,
        api: DiffusionRouting,
        report_type: str = TOPOLOGY_TYPE,
        interval_ms: int = 30_000,
    ) -> None:
        self.api = api
        self.reports_received = 0
        self._neighbor_sets: Dict[int, List[int]] = {}
        sub = (
            AttributeVector.builder()
            .eq(Key.TYPE, report_type)
            .actual(Key.INTERVAL, interval_ms)
            .build()
        )
        api.subscribe(sub, self._on_report)

    def _on_report(self, attrs: AttributeVector, message) -> None:
        instance = attrs.value_of(Key.INSTANCE)
        payload = attrs.value_of(Key.PAYLOAD)
        if instance is None or not isinstance(payload, bytes):
            return
        if not instance.startswith("node-"):
            return
        try:
            node_id = int(instance.split("-", 1)[1])
            neighbors = decode_neighbor_list(payload)
        except ValueError:
            return
        self.reports_received += 1
        self._neighbor_sets[node_id] = neighbors

    def snapshot(self) -> TopologySnapshot:
        """The current connectivity picture.

        An edge a->b means "a heard b" — i.e. the radio link b->a
        works; we store it in reception direction (b transmits, a
        receives) as b->a.
        """
        graph = nx.DiGraph()
        for node_id, neighbors in self._neighbor_sets.items():
            graph.add_node(node_id)
            for neighbor in neighbors:
                graph.add_edge(neighbor, node_id)
        return TopologySnapshot(
            graph=graph, reporting_nodes=set(self._neighbor_sets)
        )
