"""Reference-broadcast time synchronization over diffusion.

Section 7 asks for tools to "accurately synchronize node clocks"; the
group's own answer was Reference Broadcast Synchronization (Elson &
Estrin): a beacon's *broadcast* arrives at all receivers at essentially
the same instant, so differences between the receivers' local arrival
timestamps are exactly their clock offsets — sender-side delays
(queueing, backoff) cancel out entirely.

Roles:

* :class:`TimeBeacon` — broadcasts numbered reference pulses (plain
  named data, ``TYPE IS time-beacon``); the beacon's own clock never
  matters, which is RBS's trick.
* :class:`SyncParticipant` — timestamps beacon arrivals with its local
  clock and publishes the observations (``TYPE IS time-obs``).
* :class:`SyncCoordinator` — collects observations, picks a reference
  node, and estimates every participant's offset relative to it as the
  mean pairwise difference over shared beacons;
  :meth:`apply_corrections` steps the participants' clocks.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.core.api import DiffusionRouting
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.sim.clock import NodeClock

BEACON_TYPE = "time-beacon"
OBSERVATION_TYPE = "time-obs"


class TimeBeacon:
    """Periodically broadcasts reference pulses."""

    def __init__(
        self,
        api: DiffusionRouting,
        interval: float = 10.0,
        beacon_type: str = BEACON_TYPE,
    ) -> None:
        self.api = api
        self.interval = interval
        self.beacons_sent = 0
        self._publication = api.publish(
            AttributeVector.builder().actual(Key.TYPE, beacon_type).build()
        )
        self._timer = api.node.sim.schedule(0.5, self._tick, name="rbs.beacon")

    def _tick(self) -> None:
        attrs = (
            AttributeVector.builder()
            .actual(Key.SEQUENCE, self.beacons_sent)
            .build()
        )
        # Beacons must reach receivers even with no reinforced paths:
        # they are the reference events themselves.
        self.api.send(self._publication, attrs, force_exploratory=True)
        self.beacons_sent += 1
        self._timer = self.api.node.sim.schedule(
            self.interval, self._tick, name="rbs.beacon"
        )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()


class SyncParticipant:
    """Timestamps beacon receptions and reports them."""

    def __init__(
        self,
        api: DiffusionRouting,
        clock: NodeClock,
        beacon_type: str = BEACON_TYPE,
        observation_type: str = OBSERVATION_TYPE,
    ) -> None:
        self.api = api
        self.clock = clock
        self.observations: Dict[int, float] = {}  # beacon seq -> local rx time
        beacon_sub = (
            AttributeVector.builder().eq(Key.TYPE, beacon_type).build()
        )
        api.subscribe(beacon_sub, self._on_beacon)
        self._publication = api.publish(
            AttributeVector.builder()
            .actual(Key.TYPE, observation_type)
            .actual(Key.INSTANCE, f"node-{api.node_id}")
            .build()
        )

    def _on_beacon(self, attrs: AttributeVector, message) -> None:
        seq = attrs.value_of(Key.SEQUENCE)
        if seq is None:
            return
        seq = int(seq)
        if seq in self.observations:
            return
        local = self.clock.local_time(self.api.node.sim.now)
        self.observations[seq] = local
        report = (
            AttributeVector.builder()
            .actual(Key.SEQUENCE, seq)
            .actual(Key.INTENSITY, local)  # float64 local rx timestamp
            .build()
        )
        self.api.send(self._publication, report, force_exploratory=True)


class SyncCoordinator:
    """Estimates pairwise offsets from shared beacon observations."""

    def __init__(
        self,
        api: DiffusionRouting,
        observation_type: str = OBSERVATION_TYPE,
    ) -> None:
        self.api = api
        # beacon seq -> {node id: local rx time}
        self._by_beacon: Dict[int, Dict[int, float]] = defaultdict(dict)
        self.reports_received = 0
        sub = (
            AttributeVector.builder().eq(Key.TYPE, observation_type).build()
        )
        api.subscribe(sub, self._on_report)

    def _on_report(self, attrs: AttributeVector, message) -> None:
        instance = attrs.value_of(Key.INSTANCE)
        seq = attrs.value_of(Key.SEQUENCE)
        local = attrs.value_of(Key.INTENSITY)
        if instance is None or seq is None or local is None:
            return
        if not str(instance).startswith("node-"):
            return
        try:
            node_id = int(str(instance).split("-", 1)[1])
        except ValueError:
            return
        self.reports_received += 1
        self._by_beacon[int(seq)][node_id] = float(local)

    def reset_window(self) -> None:
        """Forget accumulated observations.

        Offset estimates average *all* shared beacons, so a clock that
        steps mid-run (a fault, a correction) would be averaged against
        its own past.  Periodic sync rounds call this after applying
        corrections to keep the estimation window current.
        """
        self._by_beacon.clear()

    def participants(self) -> List[int]:
        nodes = set()
        for observations in self._by_beacon.values():
            nodes.update(observations)
        return sorted(nodes)

    def offset_estimate(self, node: int, reference: int) -> Optional[float]:
        """Mean of (node's rx time - reference's rx time) over shared
        beacons; None without common observations."""
        differences = [
            obs[node] - obs[reference]
            for obs in self._by_beacon.values()
            if node in obs and reference in obs
        ]
        if not differences:
            return None
        return sum(differences) / len(differences)

    def shared_beacons(self, node: int, reference: int) -> int:
        return sum(
            1
            for obs in self._by_beacon.values()
            if node in obs and reference in obs
        )

    def apply_corrections(
        self,
        clocks: Dict[int, NodeClock],
        reference: int,
    ) -> Dict[int, float]:
        """Step every clock to agree with the reference node's.

        Returns the corrections applied.  The reference clock is left
        untouched (RBS synchronizes *relative* time).
        """
        corrections: Dict[int, float] = {}
        for node, clock in clocks.items():
            if node == reference:
                continue
            estimate = self.offset_estimate(node, reference)
            if estimate is None:
                continue
            clock.adjust(-estimate)
            corrections[node] = -estimate
        return corrections
