"""The Figure 9 nested-query application (paper Section 5.2 / 6.2).

A user wants acoustic data correlated with light changes.

*Nested* mode (Figure 6b): the user queries only the audio sensor; the
audio node, on seeing that query, sub-tasks the light sensors itself.
Light traffic travels one hop (lights → audio); audio data travels two
hops (audio → user): three best-effort hops end to end.

*Flat* (one-level) mode (Figure 6a): the user queries the light sensors
directly; "when something is detected he requests the status of the
triggered sensor".  Light reports travel three hops to the user, the
request travels back to the audio node, and the audio data returns to
the user — every leg best-effort, and all light traffic crosses the
congested middle of the network.

Success for a light change is audio data for that (light, epoch)
delivered to the user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.apps.sensors import (
    AUDIO_TYPE,
    LIGHT_TYPE,
    AudioEmitter,
    LightSensor,
)
from repro.core.api import DiffusionRouting
from repro.naming import AttributeVector
from repro.naming.keys import ClassValue, Key
from repro.testbed.network import SensorNetwork

AUDIO_REQUEST_TYPE = "audio-request"

ChangeId = Tuple[str, int]  # (light instance, state epoch)


class AudioNodeApp:
    """The triggered sensor.

    In nested mode it watches for audio interests that request light
    triggering, sub-tasks the light sensors itself, and emits audio on
    each observed change.  In flat mode it answers explicit requests
    from the user.
    """

    def __init__(
        self,
        api: DiffusionRouting,
        nested: bool,
        light_ids: Sequence[int],
        toggle_interval: float = 60.0,
        message_bytes: int = 100,
    ) -> None:
        self.api = api
        self.nested = nested
        self.light_ids = list(light_ids)
        self.toggle_interval = toggle_interval
        self.emitter = AudioEmitter(api, message_bytes=message_bytes)
        self.changes_detected: List[ChangeId] = []
        self.requests_served: Set[ChangeId] = set()
        self._last_epoch: Dict[str, int] = {}
        self._sub_tasked = False
        if nested:
            # Watch for audio interests; sub-task lights when one arrives.
            watch = (
                AttributeVector.builder()
                .eq(Key.CLASS, int(ClassValue.INTEREST))
                .actual(Key.TYPE, AUDIO_TYPE)
                .build()
            )
            api.subscribe(watch, self._on_audio_interest)
        else:
            # Flat mode: serve explicit audio requests from the user.
            request_sub = (
                AttributeVector.builder().eq(Key.TYPE, AUDIO_REQUEST_TYPE).build()
            )
            api.subscribe(request_sub, self._on_audio_request)

    # -- nested mode ----------------------------------------------------------

    def _on_audio_interest(self, attrs: AttributeVector, message) -> None:
        if self._sub_tasked:
            return
        trigger = attrs.value_of(Key.TRIGGER_TYPE)
        if trigger != LIGHT_TYPE:
            return
        self._sub_tasked = True
        light_sub = (
            AttributeVector.builder()
            .eq(Key.TYPE, LIGHT_TYPE)
            .actual(Key.INTERVAL, 2000)
            .build()
        )
        self.api.subscribe(light_sub, self._on_light_report)

    def _on_light_report(self, attrs: AttributeVector, message) -> None:
        instance = attrs.value_of(Key.INSTANCE)
        epoch = attrs.value_of(Key.TIMESTAMP)
        if instance is None or epoch is None:
            return
        epoch = int(epoch)
        last = self._last_epoch.get(instance)
        self._last_epoch[instance] = epoch
        if last is not None and epoch != last:
            self.changes_detected.append((instance, epoch))
            self.emitter.emit(instance, epoch)

    # -- flat mode ---------------------------------------------------------------

    def _on_audio_request(self, attrs: AttributeVector, message) -> None:
        instance = attrs.value_of(Key.INSTANCE)
        epoch = attrs.value_of(Key.TIMESTAMP)
        if instance is None or epoch is None:
            return
        change: ChangeId = (instance, int(epoch))
        if change in self.requests_served:
            return
        self.requests_served.add(change)
        self.changes_detected.append(change)
        self.emitter.emit(instance, int(epoch))


class UserApp:
    """The distant user; counts successfully correlated audio events."""

    def __init__(
        self,
        api: DiffusionRouting,
        nested: bool,
        request_bytes: int = 60,
    ) -> None:
        self.api = api
        self.nested = nested
        self.request_bytes = request_bytes
        self.audio_received: Set[ChangeId] = set()
        #: change id -> arrival time of its audio data (first copy)
        self.audio_arrival_times: Dict[ChangeId, float] = {}
        self.light_changes_observed: Set[ChangeId] = set()
        self.requests_sent = 0
        self._last_epoch: Dict[str, int] = {}
        audio_sub = AttributeVector.builder().eq(Key.TYPE, AUDIO_TYPE)
        if nested:
            # The nested marker tells the audio node to sub-task lights.
            audio_sub = audio_sub.actual(Key.TRIGGER_TYPE, LIGHT_TYPE)
        api.subscribe(audio_sub.build(), self._on_audio)
        if not nested:
            light_sub = (
                AttributeVector.builder()
                .eq(Key.TYPE, LIGHT_TYPE)
                .actual(Key.INTERVAL, 2000)
                .build()
            )
            api.subscribe(light_sub, self._on_light_report)
            self._request_pub = api.publish(
                AttributeVector.builder().actual(Key.TYPE, AUDIO_REQUEST_TYPE).build()
            )

    def _on_audio(self, attrs: AttributeVector, message) -> None:
        instance = attrs.value_of(Key.INSTANCE)
        epoch = attrs.value_of(Key.TIMESTAMP)
        if instance is None or epoch is None:
            return
        change = (instance, int(epoch))
        if change not in self.audio_received:
            self.audio_arrival_times[change] = self.api.node.sim.now
        self.audio_received.add(change)

    def _on_light_report(self, attrs: AttributeVector, message) -> None:
        instance = attrs.value_of(Key.INSTANCE)
        epoch = attrs.value_of(Key.TIMESTAMP)
        if instance is None or epoch is None:
            return
        epoch = int(epoch)
        last = self._last_epoch.get(instance)
        self._last_epoch[instance] = epoch
        if last is not None and epoch != last:
            change = (instance, epoch)
            if change not in self.light_changes_observed:
                self.light_changes_observed.add(change)
                self._request_audio(instance, epoch)

    def _request_audio(self, instance: str, epoch: int) -> None:
        """Flat mode: interrogate the triggered sensor about a change."""
        attrs = (
            AttributeVector.builder()
            .actual(Key.INSTANCE, instance)
            .actual(Key.TIMESTAMP, epoch)
            .build()
        )
        self.requests_sent += 1
        self.api.send(self._request_pub, attrs, padding_bytes=0)

    def successes(self) -> Set[ChangeId]:
        """Changes for which the user got usable audio data."""
        return set(self.audio_received)


@dataclass
class NestedQueryResult:
    """One trial in Figure 9's units."""

    nested: bool
    num_lights: int
    duration: float
    possible_events: int
    successful_events: int
    diffusion_bytes_sent: int
    mean_latency: Optional[float] = None

    @property
    def delivery_percentage(self) -> float:
        """Figure 9's y-axis: % of light change events that result in
        audio data delivered to the user."""
        if self.possible_events == 0:
            return 0.0
        return 100.0 * self.successful_events / self.possible_events


class NestedQueryExperiment:
    """Wires user, audio node, and light sensors on a network."""

    def __init__(
        self,
        network: SensorNetwork,
        user_id: int,
        audio_id: int,
        light_ids: Sequence[int],
        nested: bool,
        toggle_interval: float = 60.0,
        report_interval: float = 2.0,
    ) -> None:
        self.network = network
        self.nested = nested
        self.light_ids = list(light_ids)
        self.toggle_interval = toggle_interval
        self.user = UserApp(network.api(user_id), nested=nested)
        self.audio = AudioNodeApp(
            network.api(audio_id),
            nested=nested,
            light_ids=self.light_ids,
            toggle_interval=toggle_interval,
        )
        self.lights = [
            LightSensor(
                network.api(light_id),
                report_interval=report_interval,
                toggle_interval=toggle_interval,
                phase=network.seeds.stream(f"light-phase:{light_id}").uniform(
                    0.0, report_interval
                ),
            )
            for light_id in self.light_ids
        ]

    def possible_events(self, duration: float) -> int:
        """Number of state changes across all lights in the run.

        Changes happen at epoch boundaries; a receiver can only detect a
        change after seeing a report from the previous epoch, so epochs
        1..floor(duration/toggle) count, per light.
        """
        transitions = max(0, int(duration // self.toggle_interval))
        return transitions * len(self.light_ids)

    def mean_latency(self) -> Optional[float]:
        """Mean delay from a light change (epoch boundary) to its audio
        data arriving at the user — the quantity behind the paper's
        "reduction in latency can be substantial" claim (§5.2)."""
        delays = [
            arrival - epoch * self.toggle_interval
            for (instance, epoch), arrival in self.user.audio_arrival_times.items()
        ]
        if not delays:
            return None
        return sum(delays) / len(delays)

    def run(self, duration: float) -> NestedQueryResult:
        self.network.run(until=duration)
        return NestedQueryResult(
            nested=self.nested,
            num_lights=len(self.light_ids),
            duration=duration,
            possible_events=self.possible_events(duration),
            successful_events=len(self.user.successes()),
            diffusion_bytes_sent=self.network.total_diffusion_bytes_sent(),
            mean_latency=self.mean_latency(),
        )
