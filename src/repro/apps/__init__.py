"""Sensor-network applications built on the public diffusion API.

These are the workloads of the paper's evaluation: the Figure 8
surveillance application (sources reporting synchronized detections, a
sink counting distinct events) and the Figure 9 light/audio nested-query
application.
"""

from repro.apps.sensors import (
    AUDIO_TYPE,
    LIGHT_TYPE,
    SURVEILLANCE_TYPE,
    AudioEmitter,
    DetectionSource,
    LightSensor,
    SynchronizedEventClock,
)
from repro.apps.surveillance import SurveillanceExperiment, SurveillanceSink
from repro.apps.nestedquery import (
    AudioNodeApp,
    NestedQueryExperiment,
    UserApp,
)
from repro.apps.monitoring import (
    ENERGY_SCAN_TYPE,
    EnergyDigest,
    EnergyReporter,
    EnergyScanAggregator,
    EnergyScanSink,
)
from repro.apps.fusion import (
    DETECTION_TYPE,
    FusionFilter,
    MovingTarget,
    ProximitySensor,
    TrackingSink,
)
from repro.apps.rateadapt import AdaptiveSink, RateAdaptingSource
from repro.apps.timesync import SyncCoordinator, SyncParticipant, TimeBeacon
from repro.apps.topomon import NeighborReporter, TopologyMonitor

__all__ = [
    "AUDIO_TYPE",
    "LIGHT_TYPE",
    "SURVEILLANCE_TYPE",
    "AudioEmitter",
    "DetectionSource",
    "LightSensor",
    "SynchronizedEventClock",
    "SurveillanceExperiment",
    "SurveillanceSink",
    "AudioNodeApp",
    "NestedQueryExperiment",
    "UserApp",
    "ENERGY_SCAN_TYPE",
    "EnergyDigest",
    "EnergyReporter",
    "EnergyScanAggregator",
    "EnergyScanSink",
    "DETECTION_TYPE",
    "FusionFilter",
    "MovingTarget",
    "ProximitySensor",
    "TrackingSink",
    "AdaptiveSink",
    "RateAdaptingSource",
    "SyncCoordinator",
    "SyncParticipant",
    "TimeBeacon",
    "NeighborReporter",
    "TopologyMonitor",
]
