"""Synthetic sensors.

The paper generated events artificially "for experiment repeatability
... rather than taken from a physical sensor and signal processing";
these classes do the same on the simulated testbed:

* :class:`DetectionSource` — the Figure 8 surveillance source: one
  112-byte detection event every 6 seconds, sequence numbers
  synchronized across sources (overlapping coverage means every source
  reports the *same* events).
* :class:`LightSensor` — the Figure 9 initial sensor: state toggles
  every minute on the minute, reported every 2 seconds.
* :class:`AudioEmitter` — the Figure 9 triggered sensor's output side.
"""

from __future__ import annotations

import math

from repro.core.api import DiffusionRouting, PublicationHandle
from repro.naming import AttributeVector
from repro.naming.keys import Key

SURVEILLANCE_TYPE = "surveillance"
LIGHT_TYPE = "light"
AUDIO_TYPE = "audio"


class SynchronizedEventClock:
    """Global event numbering shared by overlapping sensors.

    "All sources generate events representing the detection of some
    object at the rate of one event every 6 seconds ... given sequence
    numbers that are synchronized at experiment start."
    """

    def __init__(self, interval: float = 6.0, epoch: float = 0.0) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.epoch = epoch

    def sequence_at(self, now: float) -> int:
        return int(math.floor((now - self.epoch) / self.interval))

    def next_event_time(self, now: float) -> float:
        return self.epoch + (self.sequence_at(now) + 1) * self.interval


def _pad_to(attrs: AttributeVector, target_bytes: int, header_bytes: int) -> int:
    """Padding needed so a message with ``attrs`` totals ``target_bytes``."""
    from repro.naming import encoded_size

    base = header_bytes + encoded_size(list(attrs))
    return max(0, target_bytes - base)


class DetectionSource:
    """Figure 8 source: periodic synchronized detection events."""

    def __init__(
        self,
        api: DiffusionRouting,
        clock: SynchronizedEventClock,
        event_bytes: int = 112,
        task_type: str = SURVEILLANCE_TYPE,
        start: float = 0.0,
    ) -> None:
        self.api = api
        self.clock = clock
        self.event_bytes = event_bytes
        self.task_type = task_type
        self.events_generated = 0
        self._publication: PublicationHandle = api.publish(
            AttributeVector.builder().actual(Key.TYPE, task_type).build()
        )
        self._timer = None
        sim = api.node.sim
        first = max(start, clock.next_event_time(sim.now))
        self._timer = sim.schedule_at(first, self._tick, name="source.tick")

    def _tick(self) -> None:
        sim = self.api.node.sim
        seq = self.clock.sequence_at(sim.now)
        attrs = (
            AttributeVector.builder()
            .actual(Key.SEQUENCE, seq)
            .actual(Key.TIMESTAMP, int(sim.now * 1000))
            .actual(Key.INSTANCE, f"node-{self.api.node_id}")
            .build()
        )
        merged_preview = AttributeVector(
            list(self._publication_attrs()) + list(attrs)
        )
        padding = _pad_to(
            merged_preview, self.event_bytes, self.api.node.config.header_bytes
        )
        self.api.send(self._publication, attrs, padding_bytes=padding)
        self.events_generated += 1
        self._timer = sim.schedule_at(
            self.clock.next_event_time(sim.now), self._tick, name="source.tick"
        )

    def _publication_attrs(self) -> AttributeVector:
        return AttributeVector.builder().actual(Key.TYPE, self.task_type).build()

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()


class LightSensor:
    """Figure 9 initial sensor.

    "We simulate light data to change automatically every minute on the
    minute.  Light sensors report their state every 2s."  Reports carry
    the state *epoch* (``floor(now / toggle_interval)``) so receivers
    detect changes robustly even across lost reports.
    """

    def __init__(
        self,
        api: DiffusionRouting,
        report_interval: float = 2.0,
        toggle_interval: float = 60.0,
        message_bytes: int = 100,
        light_type: str = LIGHT_TYPE,
        phase: float = 0.0,
    ) -> None:
        self.api = api
        self.report_interval = report_interval
        self.toggle_interval = toggle_interval
        self.message_bytes = message_bytes
        self.light_type = light_type
        self.reports_sent = 0
        self._publication = api.publish(
            AttributeVector.builder()
            .actual(Key.TYPE, light_type)
            .actual(Key.INSTANCE, f"light-{api.node_id}")
            .build()
        )
        # Reports are phase-offset per sensor: "no special attempt is
        # made to synchronize or unsynchronize sensors" (Section 6.2),
        # and real sensors do not tick in lockstep.
        self._timer = api.node.sim.schedule(
            phase % report_interval, self._tick, name="light.tick"
        )

    def state_epoch(self, now: float) -> int:
        return int(math.floor(now / self.toggle_interval))

    def state(self, now: float) -> int:
        return self.state_epoch(now) % 2

    def _tick(self) -> None:
        sim = self.api.node.sim
        epoch = self.state_epoch(sim.now)
        attrs = (
            AttributeVector.builder()
            .actual(Key.TRIGGER_STATE, self.state(sim.now))
            .actual(Key.TIMESTAMP, epoch)
            .actual(Key.SEQUENCE, self.reports_sent)
            .build()
        )
        preview = AttributeVector(
            [
                *list(
                    AttributeVector.builder()
                    .actual(Key.TYPE, self.light_type)
                    .actual(Key.INSTANCE, f"light-{self.api.node_id}")
                    .build()
                ),
                *list(attrs),
            ]
        )
        padding = _pad_to(preview, self.message_bytes, self.api.node.config.header_bytes)
        self.api.send(self._publication, attrs, padding_bytes=padding)
        self.reports_sent += 1
        self._timer = sim.schedule(self.report_interval, self._tick, name="light.tick")

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()


class AudioEmitter:
    """The output side of the Figure 9 triggered (audio) sensor."""

    def __init__(
        self,
        api: DiffusionRouting,
        message_bytes: int = 100,
        audio_type: str = AUDIO_TYPE,
    ) -> None:
        self.api = api
        self.message_bytes = message_bytes
        self.audio_type = audio_type
        self.emissions = 0
        self._publication = api.publish(
            AttributeVector.builder().actual(Key.TYPE, audio_type).build()
        )

    def emit(self, light_instance: str, epoch: int) -> None:
        """Send one audio sample correlated with a light change."""
        attrs = (
            AttributeVector.builder()
            .actual(Key.INSTANCE, light_instance)
            .actual(Key.TIMESTAMP, epoch)
            .build()
        )
        preview = AttributeVector(
            [
                *list(
                    AttributeVector.builder().actual(Key.TYPE, self.audio_type).build()
                ),
                *list(attrs),
            ]
        )
        padding = _pad_to(preview, self.message_bytes, self.api.node.config.header_bytes)
        self.api.send(self._publication, attrs, padding_bytes=padding)
        self.emissions += 1
