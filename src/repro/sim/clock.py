"""Per-node clocks with offset, drift, and read jitter.

The simulator's ``now`` is true time; real sensor nodes do not have it.
Paper footnote 2: timestamps "require synchronization ... We use
sequence numbers because at the time of this experiment we had not
synchronized our clocks", and Section 7 lists "accurately synchronize
node clocks" among the missing tools.  :class:`NodeClock` provides the
problem (skewed local time) and :mod:`repro.apps.timesync` the
solution.
"""

from __future__ import annotations

import itertools
import random
from typing import Optional

from repro.sim.rng import make_rng

# Default-constructed clocks get a distinct stream each, numbered in
# construction order (deterministic for a deterministic program).
_default_clock_ids = itertools.count()


class NodeClock:
    """A local clock: ``local = true * (1 + drift) + offset`` + jitter.

    ``drift_ppm`` is parts-per-million frequency error (crystal spec);
    ``read_jitter`` models timestamping noise (interrupt latency), drawn
    fresh per read.  Pass ``rng`` (a dedicated stream) or ``seed`` for a
    reproducible jitter stream; by default each clock gets its own
    stream rather than all sharing one.
    """

    def __init__(
        self,
        offset: float = 0.0,
        drift_ppm: float = 0.0,
        read_jitter: float = 0.0,
        rng: Optional[random.Random] = None,
        seed: Optional[int] = None,
    ) -> None:
        if read_jitter < 0:
            raise ValueError("read_jitter must be non-negative")
        self.offset = offset
        self.drift_ppm = drift_ppm
        self.read_jitter = read_jitter
        if rng is not None:
            self.rng = rng
        elif seed is not None:
            self.rng = make_rng(seed, "nodeclock")
        else:
            self.rng = make_rng(next(_default_clock_ids), "nodeclock")
        self.adjustments = 0

    @property
    def _rate(self) -> float:
        return 1.0 + self.drift_ppm * 1e-6

    def local_time(self, true_time: float) -> float:
        """Read the clock at true time (with read jitter)."""
        jitter = (
            self.rng.gauss(0.0, self.read_jitter) if self.read_jitter else 0.0
        )
        return true_time * self._rate + self.offset + jitter

    def exact_local_time(self, true_time: float) -> float:
        """Jitter-free reading, for assertions and error accounting."""
        return true_time * self._rate + self.offset

    def true_time(self, local_time: float) -> float:
        """Invert a (jitter-free) local reading."""
        return (local_time - self.offset) / self._rate

    def adjust(self, delta: float) -> None:
        """Step the clock by ``delta`` seconds (sync correction)."""
        self.offset += delta
        self.adjustments += 1

    def error_vs(self, other: "NodeClock", true_time: float) -> float:
        """Instantaneous disagreement with another clock, in seconds."""
        return abs(
            self.exact_local_time(true_time) - other.exact_local_time(true_time)
        )
