"""Trace bus: publish/subscribe instrumentation for experiments.

The paper's testbed used a separate wired network to collect experiment
data (Section 7).  The trace bus plays that role here: components emit
typed records, experiment harnesses subscribe to the categories they
need, and nothing is retained unless someone asked for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One instrumentation sample."""

    time: float
    category: str
    node: Optional[int]
    data: Dict[str, Any] = field(default_factory=dict)


class TraceBus:
    """Routes :class:`TraceRecord` to per-category listeners.

    Listeners registered for category ``"*"`` receive every record.
    """

    def __init__(self) -> None:
        self._listeners: Dict[str, List[Callable[[TraceRecord], None]]] = {}

    def subscribe(self, category: str, listener: Callable[[TraceRecord], None]) -> None:
        self._listeners.setdefault(category, []).append(listener)

    def unsubscribe(self, category: str, listener: Callable[[TraceRecord], None]) -> None:
        listeners = self._listeners.get(category, [])
        if listener in listeners:
            listeners.remove(listener)

    def emit(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        **data: Any,
    ) -> None:
        """Create and dispatch a record; cheap when nobody listens."""
        listeners = self._listeners.get(category)
        wildcard = self._listeners.get("*")
        if not listeners and not wildcard:
            return
        record = TraceRecord(time=time, category=category, node=node, data=data)
        for listener in listeners or ():
            listener(record)
        for listener in wildcard or ():
            listener(record)


class TraceCollector:
    """Convenience listener that accumulates records in a list.

    A collector holds a live subscription on the bus, which keeps
    ``emit`` on its slow path; call :meth:`detach` (or use the
    collector as a context manager) when done so short-lived probes in
    tests and benchmarks don't tax the rest of the run.
    """

    def __init__(self, bus: TraceBus, category: str = "*") -> None:
        self.records: List[TraceRecord] = []
        self._bus: Optional[TraceBus] = bus
        self._category = category
        bus.subscribe(category, self.records.append)

    @property
    def attached(self) -> bool:
        return self._bus is not None

    def detach(self) -> None:
        """Unsubscribe from the bus; the records stay readable."""
        if self._bus is not None:
            self._bus.unsubscribe(self._category, self.records.append)
            self._bus = None

    def __enter__(self) -> "TraceCollector":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.detach()

    def by_category(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]


def trace_id_of(payload: Any) -> Optional[str]:
    """The trace id carried by a payload, unwrapping link fragments.

    Lower layers (MAC queues, the channel, reassembly) see either a
    diffusion :class:`~repro.core.messages.Message` or a
    :class:`~repro.link.frag.Fragment` wrapping one; both expose the
    originating message's trace id through here without the radio stack
    importing the protocol stack.
    """
    message = getattr(payload, "message", payload)
    trace_id = getattr(message, "trace_id", None)
    return trace_id if isinstance(trace_id, str) else None
