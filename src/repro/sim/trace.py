"""Trace bus: publish/subscribe instrumentation for experiments.

The paper's testbed used a separate wired network to collect experiment
data (Section 7).  The trace bus plays that role here: components emit
typed records, experiment harnesses subscribe to the categories they
need, and nothing is retained unless someone asked for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One instrumentation sample."""

    time: float
    category: str
    node: Optional[int]
    data: Dict[str, Any] = field(default_factory=dict)


class TraceBus:
    """Routes :class:`TraceRecord` to per-category listeners.

    Listeners registered for category ``"*"`` receive every record.
    """

    def __init__(self) -> None:
        self._listeners: Dict[str, List[Callable[[TraceRecord], None]]] = {}

    def subscribe(self, category: str, listener: Callable[[TraceRecord], None]) -> None:
        self._listeners.setdefault(category, []).append(listener)

    def unsubscribe(self, category: str, listener: Callable[[TraceRecord], None]) -> None:
        listeners = self._listeners.get(category, [])
        if listener in listeners:
            listeners.remove(listener)

    def emit(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        **data: Any,
    ) -> None:
        """Create and dispatch a record; cheap when nobody listens."""
        listeners = self._listeners.get(category)
        wildcard = self._listeners.get("*")
        if not listeners and not wildcard:
            return
        record = TraceRecord(time=time, category=category, node=node, data=data)
        for listener in listeners or ():
            listener(record)
        for listener in wildcard or ():
            listener(record)


class TraceCollector:
    """Convenience listener that accumulates records in a list."""

    def __init__(self, bus: TraceBus, category: str = "*") -> None:
        self.records: List[TraceRecord] = []
        bus.subscribe(category, self.records.append)

    def by_category(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]
