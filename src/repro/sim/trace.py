"""Trace bus: publish/subscribe instrumentation for experiments.

The paper's testbed used a separate wired network to collect experiment
data (Section 7).  The trace bus plays that role here: components emit
typed records, experiment harnesses subscribe to the categories they
need, and nothing is retained unless someone asked for it.

The :class:`FlightRecorder` is the postmortem complement: a bounded
per-node ring of the most recent records, dumped to JSONL only when
something goes wrong (an invariant violation, an injected fault), so a
failure report carries the causal lead-up instead of a bare counter.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union


@dataclass(frozen=True)
class TraceRecord:
    """One instrumentation sample."""

    time: float
    category: str
    node: Optional[int]
    data: Dict[str, Any] = field(default_factory=dict)


class TraceBus:
    """Routes :class:`TraceRecord` to per-category listeners.

    Listeners registered for category ``"*"`` receive every record.
    """

    def __init__(self) -> None:
        self._listeners: Dict[str, List[Callable[[TraceRecord], None]]] = {}
        # Total live subscriptions: emit's first check is one attribute
        # load, so a silent bus (benchmarks, untraced campaigns) pays
        # essentially nothing per record.
        self._active = 0

    def subscribe(self, category: str, listener: Callable[[TraceRecord], None]) -> None:
        self._listeners.setdefault(category, []).append(listener)
        self._active += 1

    def unsubscribe(self, category: str, listener: Callable[[TraceRecord], None]) -> None:
        listeners = self._listeners.get(category, [])
        if listener in listeners:
            listeners.remove(listener)
            self._active -= 1

    def emit(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        **data: Any,
    ) -> None:
        """Create and dispatch a record; cheap when nobody listens."""
        if not self._active:
            return
        listeners = self._listeners.get(category)
        wildcard = self._listeners.get("*")
        if not listeners and not wildcard:
            return
        record = TraceRecord(time=time, category=category, node=node, data=data)
        for listener in listeners or ():
            listener(record)
        for listener in wildcard or ():
            listener(record)


class TraceCollector:
    """Convenience listener that accumulates records in a list.

    A collector holds a live subscription on the bus, which keeps
    ``emit`` on its slow path; call :meth:`detach` (or use the
    collector as a context manager) when done so short-lived probes in
    tests and benchmarks don't tax the rest of the run.
    """

    def __init__(self, bus: TraceBus, category: str = "*") -> None:
        self.records: List[TraceRecord] = []
        self._bus: Optional[TraceBus] = bus
        self._category = category
        bus.subscribe(category, self.records.append)

    @property
    def attached(self) -> bool:
        return self._bus is not None

    def detach(self) -> None:
        """Unsubscribe from the bus; the records stay readable."""
        if self._bus is not None:
            self._bus.unsubscribe(self._category, self.records.append)
            self._bus = None

    def __enter__(self) -> "TraceCollector":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.detach()

    def by_category(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]


def _jsonable_value(value: Any) -> Any:
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable_value(v) for v in value]
    return repr(value)


def _jsonable(data: Dict) -> Dict:
    """JSON-safe copy of a record's data: containers are serialized
    recursively, bytes become hex, and only genuinely opaque objects
    fall back to ``repr``."""
    return {str(key): _jsonable_value(value) for key, value in data.items()}


class FlightRecorder:
    """Bounded per-node rings of recent trace records, for postmortems.

    An aircraft flight recorder does not stream telemetry to the
    ground; it keeps the last few minutes in a crash-survivable loop.
    Same deal here: the recorder subscribes to every category, appends
    each record to a ring keyed by the record's node (``None`` for
    network-level events like channel verdicts), and drops the oldest
    entry once a ring holds ``per_node_capacity`` records.  Memory is
    therefore O(nodes × capacity) no matter how long the run.

    On trouble, :meth:`dump` writes the retained records — merged back
    into arrival order across rings — as :mod:`repro.analysis.tracelog`
    compatible JSONL, prefixed with one ``flight.header`` record naming
    the reason, so ``python -m repro trace summarize`` can read a crash
    dump like any other trace.

    Sizing: the default ring of 128 records per node comfortably covers
    the ≥64-event causal window a postmortem wants (a diffusion node
    emits a handful of records per exploratory interval), while keeping
    a 100-node run's worst case near ~13k retained records.
    """

    def __init__(
        self,
        bus: TraceBus,
        per_node_capacity: int = 128,
    ) -> None:
        if per_node_capacity < 1:
            raise ValueError("per_node_capacity must be >= 1")
        self.per_node_capacity = per_node_capacity
        self.records_seen = 0
        self.dumps = 0
        self._rings: Dict[Optional[int], deque] = {}
        self._bus: Optional[TraceBus] = bus
        bus.subscribe("*", self._on_record)

    def _on_record(self, record: TraceRecord) -> None:
        self.records_seen += 1
        ring = self._rings.get(record.node)
        if ring is None:
            ring = self._rings[record.node] = deque(
                maxlen=self.per_node_capacity
            )
        # Stamp arrival order so the merged dump is totally ordered even
        # across same-time records from different nodes.
        ring.append((self.records_seen, record))

    @property
    def attached(self) -> bool:
        return self._bus is not None

    def detach(self) -> None:
        """Unsubscribe; the retained rings stay dumpable."""
        if self._bus is not None:
            self._bus.unsubscribe("*", self._on_record)
            self._bus = None

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.detach()

    @property
    def retained(self) -> int:
        return sum(len(ring) for ring in self._rings.values())

    def snapshot(self) -> List[TraceRecord]:
        """The retained records, in original arrival order."""
        merged = sorted(
            (entry for ring in self._rings.values() for entry in ring),
            key=lambda entry: entry[0],
        )
        return [record for _seq, record in merged]

    def dump(
        self,
        path: Union[str, Path],
        reason: str = "",
        **context: Any,
    ) -> int:
        """Write the rings to ``path`` as tracelog-style JSONL.

        The first line is a ``flight.header`` record carrying the
        reason and any extra context (the violation's describe() text,
        the fault that fired, ...); every following line is a retained
        record, oldest first.  Returns the number of event records
        written (header excluded).
        """
        records = self.snapshot()
        last_time = records[-1].time if records else 0.0
        with Path(path).open("w") as handle:
            header = {
                "t": last_time,
                "cat": "flight.header",
                "node": None,
                "data": _jsonable(
                    {
                        "reason": reason,
                        "records": len(records),
                        "records_seen": self.records_seen,
                        "per_node_capacity": self.per_node_capacity,
                        "nodes": sorted(
                            k for k in self._rings if k is not None
                        ),
                        **context,
                    }
                ),
            }
            handle.write(json.dumps(header) + "\n")
            for record in records:
                handle.write(
                    json.dumps(
                        {
                            "t": record.time,
                            "cat": record.category,
                            "node": record.node,
                            "data": _jsonable(record.data),
                        }
                    )
                    + "\n"
                )
        self.dumps += 1
        return len(records)


def trace_id_of(payload: Any) -> Optional[str]:
    """The trace id carried by a payload, unwrapping link fragments.

    Lower layers (MAC queues, the channel, reassembly) see either a
    diffusion :class:`~repro.core.messages.Message` or a
    :class:`~repro.link.frag.Fragment` wrapping one; both expose the
    originating message's trace id through here without the radio stack
    importing the protocol stack.
    """
    message = getattr(payload, "message", payload)
    trace_id = getattr(message, "trace_id", None)
    return trace_id if isinstance(trace_id, str) else None
