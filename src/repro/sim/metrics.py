"""Metrics registry: counters, gauges, histograms, and time series.

The paper's testbed could only answer "what happened" questions by
grepping logs collected over a second wired network (Section 7).  The
trace bus answers *event*-shaped questions; this module answers
*aggregate*-shaped ones: how many fragments collided, how deep did MAC
queues get, how many messages were dropped for want of a route — and,
since the telemetry PR, *curve*-shaped ones: how those aggregates moved
over simulated time (:class:`TimeSeries` + :class:`TelemetrySampler`)
and where the tail of a distribution sits (:class:`Histogram` streaming
p50/p95/p99).

Design rules, mirroring :meth:`TraceBus.emit`:

* **Near-zero overhead when nobody asked.**  Components resolve their
  instruments once, at construction, from :func:`current_registry`.
  Outside a :func:`use_registry` block that returns the disabled
  :data:`NULL_REGISTRY`, whose instruments are shared no-op singletons
  — the hot-path cost is a single no-op method call.
* **Instruments are memoized by (name, labels)**, so every node of a
  network increments the same counter and snapshots stay compact.
* **Snapshots are plain JSON.**  :meth:`MetricsRegistry.snapshot`
  returns nested dicts of numbers, which is what lets campaign trials
  carry structured metrics instead of ad-hoc result keys
  (:mod:`repro.campaign.pool` attaches one per executed trial).
* **No randomness, no wall clock.**  Every estimator here is a pure
  function of the observed sequence (the quantile sketch is the P²
  algorithm, not a sampling reservoir), so enabling telemetry never
  perturbs a seeded simulation — the equivalence suites hold
  bit-identical with a registry installed.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


#: canonical label key for per-message-class instrument families
#: (``diffusion.tx.messages{class=interest}`` and friends).  The
#: diffusion core and the trace tooling share this constant so per-class
#: traffic accounting groups consistently across snapshots and reports.
CLASS_LABEL = "class"

#: the message-class label values the diffusion core emits.  Both
#: reinforcement polarities share one class (they are the same control
#: function); ``control`` covers election/hierarchy announcements.
MESSAGE_CLASSES = (
    "interest",
    "data",
    "exploratory",
    "reinforcement",
    "control",
)


def _flat_name(name: str, labels: Dict[str, Any]) -> str:
    """``name{k=v,...}`` with labels sorted, or bare ``name``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count (messages sent, drops, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value plus its observed extrema.

    ``value`` is the last :meth:`set`; ``min``/``max`` track the
    envelope so a snapshot can report *peak* queue depth or *lowest*
    battery level, not just wherever the needle happened to rest when
    the run ended.
    """

    __slots__ = ("value", "min", "max")

    def __init__(self) -> None:
        self.value = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value


class _P2Quantile:
    """One streaming quantile via the P² algorithm (Jain & Chlamtac).

    Five markers adjust toward the target quantile with O(1) memory and
    a handful of float ops per observation — and, critically for the
    seeded equivalence suites, no randomness: the estimate is a pure
    function of the observed sequence.
    """

    __slots__ = ("p", "_q", "_n", "_count")

    def __init__(self, p: float) -> None:
        self.p = p
        self._q: List[float] = []   # marker heights
        self._n: List[float] = []   # marker positions (1-based)
        self._count = 0

    def observe(self, x: float) -> None:
        self._count += 1
        if self._count <= 5:
            self._q.append(x)
            if self._count == 5:
                self._q.sort()
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
            return
        q, n, p = self._q, self._n, self.p
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        count = self._count
        desired = (
            1.0,
            1.0 + (count - 1) * p / 2.0,
            1.0 + (count - 1) * p,
            1.0 + (count - 1) * (1.0 + p) / 2.0,
            float(count),
        )
        for i in (1, 2, 3):
            delta = desired[i] - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                delta <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                d = 1.0 if delta > 0 else -1.0
                # Piecewise-parabolic prediction of the marker height.
                candidate = q[i] + d / (n[i + 1] - n[i - 1]) * (
                    (n[i] - n[i - 1] + d)
                    * (q[i + 1] - q[i])
                    / (n[i + 1] - n[i])
                    + (n[i + 1] - n[i] - d)
                    * (q[i] - q[i - 1])
                    / (n[i] - n[i - 1])
                )
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:  # parabola left the bracket: fall back to linear
                    j = i + (1 if d > 0 else -1)
                    q[i] = q[i] + d * (q[j] - q[i]) / (n[j] - n[i])
                n[i] += d

    @property
    def value(self) -> Optional[float]:
        if self._count == 0:
            return None
        if self._count < 5:
            ordered = sorted(self._q)
            # Nearest-rank on the few samples we have.
            rank = max(0, min(len(ordered) - 1, int(self.p * len(ordered))))
            return ordered[rank]
        return self._q[2]


#: the streaming quantiles every histogram tracks.
QUANTILES: Tuple[float, ...] = (0.50, 0.95, 0.99)


class Histogram:
    """Streaming distribution summary: moments plus P² tail quantiles.

    Keeping only moments and five-marker quantile sketches makes
    ``observe`` O(1) and the snapshot a fixed-size dict, which matters
    when one histogram sees every MAC enqueue of a long run.  The
    quantiles (p50/p95/p99) are what the latency-shaped questions need
    — a mean hides exactly the tail the gateway work cares about.
    """

    __slots__ = ("count", "total", "min", "max", "_quantiles")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._quantiles = tuple(_P2Quantile(p) for p in QUANTILES)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for sketch in self._quantiles:
            sketch.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, p: float) -> Optional[float]:
        """The streaming estimate for one of :data:`QUANTILES`."""
        for sketch in self._quantiles:
            if sketch.p == p:
                return sketch.value
        raise ValueError(f"no sketch tracks p={p} (have {QUANTILES})")

    @property
    def p50(self) -> Optional[float]:
        return self._quantiles[0].value

    @property
    def p95(self) -> Optional[float]:
        return self._quantiles[1].value

    @property
    def p99(self) -> Optional[float]:
        return self._quantiles[2].value


class TimeSeries:
    """A bounded ring of (sim time, value) samples — a curve, not a total.

    The ring holds the *most recent* ``capacity`` samples, so long runs
    keep a sliding window of recent history at fixed memory, exactly
    like the flight recorder does for trace events.
    """

    __slots__ = ("capacity", "recorded", "_ring")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("TimeSeries capacity must be >= 1")
        self.capacity = capacity
        self.recorded = 0          # total ever recorded, beyond the ring
        self._ring: deque = deque(maxlen=capacity)

    def record(self, time: float, value: float) -> None:
        self.recorded += 1
        self._ring.append((time, value))

    def samples(self) -> List[Tuple[float, float]]:
        """The retained samples, oldest first."""
        return list(self._ring)

    @property
    def last(self) -> Optional[Tuple[float, float]]:
        return self._ring[-1] if self._ring else None

    def extend(self, samples: List[Tuple[float, float]]) -> None:
        """Fold foreign samples in, keeping time order and the bound
        (used when per-shard snapshots merge into a parent registry)."""
        merged = sorted(list(self._ring) + [tuple(s) for s in samples])
        self.recorded += len(samples)
        self._ring = deque(merged[-self.capacity:], maxlen=self.capacity)


class _NullInstrument:
    """Shared do-nothing stand-in handed out by a disabled registry."""

    __slots__ = ()
    value = 0
    count = 0
    total = 0.0
    mean = 0.0
    min = None
    max = None
    p50 = None
    p95 = None
    p99 = None
    capacity = 0
    recorded = 0
    last = None

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def record(self, time: float, value: float) -> None:
        pass

    def samples(self) -> List[Tuple[float, float]]:
        return []

    def extend(self, samples: List[Tuple[float, float]]) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments, memoized by (name, sorted labels)."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timeseries: Dict[str, TimeSeries] = {}

    def __bool__(self) -> bool:
        return self.enabled

    @property
    def empty(self) -> bool:
        return not (
            self._counters
            or self._gauges
            or self._histograms
            or self._timeseries
        )

    def counter(self, name: str, **labels: Any) -> Counter:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        return self._counters.setdefault(_flat_name(name, labels), Counter())

    def gauge(self, name: str, **labels: Any) -> Gauge:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        return self._gauges.setdefault(_flat_name(name, labels), Gauge())

    def histogram(self, name: str, **labels: Any) -> Histogram:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        return self._histograms.setdefault(_flat_name(name, labels), Histogram())

    def timeseries(
        self, name: str, capacity: int = 256, **labels: Any
    ) -> TimeSeries:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        return self._timeseries.setdefault(
            _flat_name(name, labels), TimeSeries(capacity)
        )

    def snapshot(self) -> Dict[str, Any]:
        """All instrument values as plain JSON-safe nested dicts."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: {
                    "value": gauge.value,
                    "min": gauge.min,
                    "max": gauge.max,
                }
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": hist.count,
                    "sum": hist.total,
                    "mean": hist.mean,
                    "min": hist.min,
                    "max": hist.max,
                    "p50": hist.p50,
                    "p95": hist.p95,
                    "p99": hist.p99,
                }
                for name, hist in sorted(self._histograms.items())
            },
            "timeseries": {
                name: {
                    "capacity": series.capacity,
                    "recorded": series.recorded,
                    "samples": [[t, v] for t, v in series.samples()],
                }
                for name, series in sorted(self._timeseries.items())
            },
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` dict from another registry into this
        one — the bridge that carries shard-worker metrics back into the
        parent process (process-transport runs used to lose them all).

        Semantics per instrument kind:

        * counters add;
        * gauges keep the incoming last value (a later snapshot is a
          later observation) and fold the min/max envelopes;
        * histograms add counts and sums, fold extrema, and combine
          quantile estimates as a count-weighted mean — approximate,
          since P² sketches cannot be merged exactly, but per-shard
          instruments carry ``shard=`` labels so cross-shard merging of
          one histogram only happens for deliberately global names;
        * time series interleave samples by time, keeping the bound.
        """
        if not self.enabled:
            return
        for name, value in snapshot.get("counters", {}).items():
            self._counters.setdefault(name, Counter()).inc(value)
        for name, entry in snapshot.get("gauges", {}).items():
            gauge = self._gauges.setdefault(name, Gauge())
            if not isinstance(entry, dict):   # pre-telemetry scalar form
                entry = {"value": entry, "min": entry, "max": entry}
            gauge.value = entry.get("value", 0.0)
            for attr, fold in (("min", min), ("max", max)):
                incoming = entry.get(attr)
                if incoming is None:
                    continue
                current = getattr(gauge, attr)
                setattr(
                    gauge, attr,
                    incoming if current is None else fold(current, incoming),
                )
        for name, entry in snapshot.get("histograms", {}).items():
            hist = self._histograms.setdefault(name, Histogram())
            incoming_count = entry.get("count", 0)
            if not incoming_count:
                continue
            for i, key in enumerate(("p50", "p95", "p99")):
                estimate = entry.get(key)
                if estimate is None:
                    continue
                sketch = hist._quantiles[i]
                own = sketch.value
                merged_count = hist.count + incoming_count
                blended = (
                    estimate
                    if own is None
                    else (own * hist.count + estimate * incoming_count)
                    / merged_count
                )
                # Re-seat the sketch on the blended estimate: further
                # observations keep adjusting from there.  The count is
                # clamped to 5 so the sketch never re-enters its
                # seeding branch (markers are already placed).
                count_eff = max(merged_count, 5)
                fresh = _P2Quantile(sketch.p)
                fresh._count = count_eff
                fresh._q = [
                    hist.min if hist.min is not None else blended,
                    blended, blended, blended,
                    hist.max if hist.max is not None else blended,
                ]
                mid = 1.0 + (count_eff - 1) * sketch.p
                fresh._n = [1.0, max(2.0, mid - 1), max(3.0, mid),
                            max(4.0, mid + 1), float(count_eff)]
                hist._quantiles = (
                    hist._quantiles[:i] + (fresh,) + hist._quantiles[i + 1:]
                )
            hist.count += incoming_count
            hist.total += entry.get("sum", 0.0)
            for attr, fold in (("min", min), ("max", max)):
                incoming = entry.get(attr)
                if incoming is None:
                    continue
                current = getattr(hist, attr)
                setattr(
                    hist, attr,
                    incoming if current is None else fold(current, incoming),
                )
        for name, entry in snapshot.get("timeseries", {}).items():
            series = self._timeseries.get(name)
            if series is None:
                series = self._timeseries.setdefault(
                    name, TimeSeries(entry.get("capacity", 256))
                )
            series.extend([tuple(s) for s in entry.get("samples", [])])

    def format(self) -> str:
        """A human-readable dump, one instrument per line."""
        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            lines.append(f"{name:<44} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            lines.append(
                f"{name:<44} {gauge.value} "
                f"min={gauge.min} max={gauge.max}"
            )
        for name, hist in sorted(self._histograms.items()):
            p95 = hist.p95
            lines.append(
                f"{name:<44} n={hist.count} mean={hist.mean:.3f} "
                f"min={hist.min} max={hist.max}"
                + (f" p50={hist.p50:.3f} p95={p95:.3f}" if p95 is not None
                   else "")
            )
        for name, series in sorted(self._timeseries.items()):
            last = series.last
            lines.append(
                f"{name:<44} samples={series.recorded} "
                + (f"last={last[1]:g}@t={last[0]:.3f}" if last else "empty")
            )
        return "\n".join(lines)


class TelemetrySampler:
    """A kernel-scheduled periodic event that turns totals into curves.

    Every ``interval`` simulated seconds the sampler walks the
    registry's counters and gauges and appends ``(now, value)`` to a
    same-named :class:`TimeSeries` ring — so delivery counts, MAC queue
    depths, active transmitters, and energy draw become plottable
    curves instead of end-of-run numbers.  Extra probes (anything
    callable) attach via :meth:`track`.

    Cost model: one event per interval, O(instruments) dict walk per
    tick, zero allocations beyond the bounded rings — and a no-op under
    :data:`NULL_REGISTRY` (``start`` refuses to schedule).  The sampler
    only *reads* simulation state, consumes no RNG, and schedules at
    default priority, so a sampled run's outcome is bit-identical to an
    unsampled one.
    """

    def __init__(
        self,
        sim,
        registry: Optional[MetricsRegistry] = None,
        interval: float = 1.0,
        capacity: int = 256,
    ) -> None:
        if interval <= 0:
            raise ValueError("sampler interval must be positive")
        self.sim = sim
        self.registry = (
            registry if registry is not None else current_registry()
        )
        self.interval = interval
        self.capacity = capacity
        self.ticks = 0
        self._probes: List[Tuple[TimeSeries, Callable[[], float]]] = []
        self._event = None

    def track(self, name: str, source, **labels: Any) -> TimeSeries:
        """Sample ``source`` (a callable, or anything with ``.value``)
        into the named time series on every tick."""
        series = self.registry.timeseries(
            name, capacity=self.capacity, **labels
        )
        probe = source if callable(source) else (lambda: source.value)
        self._probes.append((series, probe))
        return series

    def start(self) -> "TelemetrySampler":
        """Schedule the periodic sampling event (no-op when disabled)."""
        if self.registry.enabled and self._event is None:
            self._event = self.sim.schedule(
                self.interval, self._tick, name="telemetry.sample"
            )
        return self

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        self.ticks += 1
        now = self.sim.now
        registry = self.registry
        capacity = self.capacity
        # Refresh the kernel's queue-health gauges mid-run so their
        # curves exist (they normally settle only at run-loop exit).
        sample_health = getattr(self.sim, "sample_health", None)
        if sample_health is not None:
            sample_health()
        for name, counter in registry._counters.items():
            registry.timeseries(name, capacity=capacity).record(
                now, counter.value
            )
        for name, gauge in registry._gauges.items():
            registry.timeseries(name, capacity=capacity).record(
                now, gauge.value
            )
        for series, probe in self._probes:
            series.record(now, float(probe()))
        self._event = self.sim.schedule(
            self.interval, self._tick, name="telemetry.sample"
        )


#: the disabled registry components fall back to when none is active
NULL_REGISTRY = MetricsRegistry(enabled=False)

_active: List[MetricsRegistry] = []


def current_registry() -> MetricsRegistry:
    """The innermost :func:`use_registry` registry, or the null one."""
    return _active[-1] if _active else NULL_REGISTRY


@contextmanager
def use_registry(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Install ``registry`` (a fresh one by default) as the collection
    target for components constructed inside the block."""
    registry = registry if registry is not None else MetricsRegistry()
    _active.append(registry)
    try:
        yield registry
    finally:
        _active.pop()
