"""Metrics registry: counters, gauges, and streaming histograms.

The paper's testbed could only answer "what happened" questions by
grepping logs collected over a second wired network (Section 7).  The
trace bus answers *event*-shaped questions; this module answers
*aggregate*-shaped ones: how many fragments collided, how deep did MAC
queues get, how many messages were dropped for want of a route.

Design rules, mirroring :meth:`TraceBus.emit`:

* **Near-zero overhead when nobody asked.**  Components resolve their
  instruments once, at construction, from :func:`current_registry`.
  Outside a :func:`use_registry` block that returns the disabled
  :data:`NULL_REGISTRY`, whose instruments are shared no-op singletons
  — the hot-path cost is a single no-op method call.
* **Instruments are memoized by (name, labels)**, so every node of a
  network increments the same counter and snapshots stay compact.
* **Snapshots are plain JSON.**  :meth:`MetricsRegistry.snapshot`
  returns nested dicts of numbers, which is what lets campaign trials
  carry structured metrics instead of ad-hoc result keys
  (:mod:`repro.campaign.pool` attaches one per executed trial).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple


def _flat_name(name: str, labels: Dict[str, Any]) -> str:
    """``name{k=v,...}`` with labels sorted, or bare ``name``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count (messages sent, drops, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (current queue depth, pending events)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming distribution summary: count/sum/min/max (no samples).

    Keeping only moments makes ``observe`` O(1) and the snapshot a
    fixed-size dict, which matters when one histogram sees every MAC
    enqueue of a long run.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _NullInstrument:
    """Shared do-nothing stand-in handed out by a disabled registry."""

    __slots__ = ()
    value = 0
    count = 0
    total = 0.0
    mean = 0.0
    min = None
    max = None

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments, memoized by (name, sorted labels)."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def __bool__(self) -> bool:
        return self.enabled

    @property
    def empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    def counter(self, name: str, **labels: Any) -> Counter:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        return self._counters.setdefault(_flat_name(name, labels), Counter())

    def gauge(self, name: str, **labels: Any) -> Gauge:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        return self._gauges.setdefault(_flat_name(name, labels), Gauge())

    def histogram(self, name: str, **labels: Any) -> Histogram:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        return self._histograms.setdefault(_flat_name(name, labels), Histogram())

    def snapshot(self) -> Dict[str, Any]:
        """All instrument values as plain JSON-safe nested dicts."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": hist.count,
                    "sum": hist.total,
                    "mean": hist.mean,
                    "min": hist.min,
                    "max": hist.max,
                }
                for name, hist in sorted(self._histograms.items())
            },
        }

    def format(self) -> str:
        """A human-readable dump, one instrument per line."""
        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            lines.append(f"{name:<44} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            lines.append(f"{name:<44} {gauge.value}")
        for name, hist in sorted(self._histograms.items()):
            lines.append(
                f"{name:<44} n={hist.count} mean={hist.mean:.3f} "
                f"min={hist.min} max={hist.max}"
            )
        return "\n".join(lines)


#: the disabled registry components fall back to when none is active
NULL_REGISTRY = MetricsRegistry(enabled=False)

_active: List[MetricsRegistry] = []


def current_registry() -> MetricsRegistry:
    """The innermost :func:`use_registry` registry, or the null one."""
    return _active[-1] if _active else NULL_REGISTRY


@contextmanager
def use_registry(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Install ``registry`` (a fresh one by default) as the collection
    target for components constructed inside the block."""
    registry = registry if registry is not None else MetricsRegistry()
    _active.append(registry)
    try:
        yield registry
    finally:
        _active.pop()
