"""Discrete-event simulation kernel used by every networked substrate.

The paper's testbed ran on real PC/104 hardware; we substitute a
deterministic event-driven simulator (see DESIGN.md section 2).  The kernel
is deliberately small: a priority queue of timestamped events, cancellable
timers, and a trace bus for experiment instrumentation.
"""

from repro.sim.kernel import Event, KernelProfiler, Simulator, SimulationError
from repro.sim.metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
    TelemetrySampler,
    TimeSeries,
    current_registry,
    use_registry,
)
from repro.sim.rng import SeedSequence, derive_seed, make_rng
from repro.sim.trace import (
    FlightRecorder,
    TraceBus,
    TraceCollector,
    TraceRecord,
    trace_id_of,
)

__all__ = [
    "Event",
    "KernelProfiler",
    "Simulator",
    "SimulationError",
    "SeedSequence",
    "derive_seed",
    "make_rng",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "TelemetrySampler",
    "TimeSeries",
    "current_registry",
    "use_registry",
    "FlightRecorder",
    "TraceBus",
    "TraceCollector",
    "TraceRecord",
    "trace_id_of",
]
