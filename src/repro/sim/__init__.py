"""Discrete-event simulation kernel used by every networked substrate.

The paper's testbed ran on real PC/104 hardware; we substitute a
deterministic event-driven simulator (see DESIGN.md section 2).  The kernel
is deliberately small: a priority queue of timestamped events, cancellable
timers, and a trace bus for experiment instrumentation.
"""

from repro.sim.kernel import Event, Simulator, SimulationError
from repro.sim.rng import SeedSequence, derive_seed, make_rng
from repro.sim.trace import TraceBus, TraceRecord

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "SeedSequence",
    "derive_seed",
    "make_rng",
    "TraceBus",
    "TraceRecord",
]
