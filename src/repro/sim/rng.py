"""Deterministic random-number plumbing.

Every stochastic component (MAC backoff, link loss, sensor jitter) draws
from its own :class:`random.Random` stream derived from one experiment
seed, so a run is reproducible bit-for-bit and components can be ablated
without perturbing each other's streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union


def derive_seed(root_seed: int, label: str) -> int:
    """The seed an RNG stream named ``label`` would be built from."""
    digest = hashlib.sha256(f"{root_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


_derive_seed = derive_seed  # historical private name


def make_rng(root_seed: int, label: str) -> random.Random:
    """Return an independent RNG stream named ``label``."""
    return random.Random(_derive_seed(root_seed, label))


class SeedSequence:
    """Hands out named, independent RNG streams from a single root seed."""

    def __init__(self, root_seed: int = 1) -> None:
        self.root_seed = root_seed
        self._issued: dict = {}

    def stream(self, label: Union[str, int]) -> random.Random:
        """Return (and memoize) the stream for ``label``."""
        key = str(label)
        if key not in self._issued:
            self._issued[key] = make_rng(self.root_seed, key)
        return self._issued[key]

    def child(self, label: Union[str, int]) -> "SeedSequence":
        """Derive a nested sequence, e.g. per-node seeders."""
        return SeedSequence(_derive_seed(self.root_seed, f"child:{label}"))
