"""Event loop: a heap of timestamped callbacks with stable ordering.

Determinism matters for reproducing the paper's experiments, so event
ordering is an explicit total order ``(time, priority, seq)``: ties in
time are broken first by a small integer priority (lower runs first,
default 0) and then by a monotonically increasing sequence number, so
two events scheduled for the same instant at the same priority fire in
the order they were scheduled.  Priorities exist for callers that must
interleave externally-sourced events (e.g. cross-shard ghost
transmissions in :mod:`repro.shard`) ahead of same-instant local work.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.sim.metrics import current_registry


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling into the past, etc.)."""


class KernelProfiler:
    """Event-loop profile: throughput, queue depth, per-site time.

    Sites are keyed by the event ``name`` (or the callback's qualified
    name when unnamed), so the report reads as "where did the wall
    clock go": ``csma.attempt``, ``channel.rx``, ``diffusion.sweep``...
    Attach with :meth:`Simulator.enable_profiler`; the run loop pays a
    perf-counter read per event only while a profiler is attached.
    """

    __slots__ = ("events", "busy_seconds", "max_queue_depth", "sites", "_started")

    def __init__(self) -> None:
        self.events = 0
        self.busy_seconds = 0.0
        self.max_queue_depth = 0
        # site -> [count, total wall seconds]
        self.sites: Dict[str, List[float]] = {}
        self._started = time.perf_counter()

    def record(self, site: str, elapsed: float) -> None:
        self.events += 1
        self.busy_seconds += elapsed
        entry = self.sites.get(site)
        if entry is None:
            self.sites[site] = [1, elapsed]
        else:
            entry[0] += 1
            entry[1] += elapsed

    def note_depth(self, depth: int) -> None:
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    @property
    def wall_seconds(self) -> float:
        return time.perf_counter() - self._started

    @property
    def events_per_second(self) -> float:
        wall = self.wall_seconds
        return self.events / wall if wall > 0 else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe profile: totals plus sites sorted by time spent."""
        sites = [
            {
                "site": site,
                "count": int(count),
                "seconds": seconds,
                "mean_us": (seconds / count) * 1e6 if count else 0.0,
            }
            for site, (count, seconds) in sorted(
                self.sites.items(), key=lambda item: -item[1][1]
            )
        ]
        return {
            "events": self.events,
            "wall_seconds": self.wall_seconds,
            "busy_seconds": self.busy_seconds,
            "events_per_second": self.events_per_second,
            "max_queue_depth": self.max_queue_depth,
            "sites": sites,
        }


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and may be cancelled.
    A cancelled event stays in the heap but is skipped when popped; the
    owning simulator counts cancellations and compacts the heap when
    they dominate it (lazy deletion with bounded garbage).
    """

    __slots__ = (
        "time", "seq", "priority", "callback", "args", "cancelled", "name",
        "_owner",
    )

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        name: str = "",
        owner: Optional["Simulator"] = None,
        priority: int = 0,
    ) -> None:
        self.time = time
        self.seq = seq
        self.priority = priority
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.name = name
        self._owner = owner

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call repeatedly."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._owner is not None:
            self._owner._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        # The heap itself orders (time, priority, seq, event) tuples so
        # comparisons run in C; this stays for direct Event sorting
        # (repro.shard heaps attempt events by the same key).
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        label = self.name or getattr(self.callback, "__name__", "?")
        return f"<Event t={self.time:.6f} {label} {state}>"


class Simulator:
    """A discrete-event simulator with cancellable timers.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, node.wake)
        sim.run(until=3600.0)
    """

    #: lazy-deletion bound: compact once cancelled events both exceed
    #: this floor and outnumber the live half of the heap.
    COMPACT_MIN_GARBAGE = 64

    def __init__(self) -> None:
        self.now: float = 0.0
        # Heap entries are (time, priority, seq, event): the explicit
        # key tuple keeps every heap comparison in C instead of calling
        # Event.__lt__ (which allocates two tuples per comparison) —
        # seq is unique, so the event itself is never compared.
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._cancelled = 0          # cancelled events still in the heap
        self.events_processed = 0
        self.compactions = 0
        self._profiler: Optional[KernelProfiler] = None
        # Called with each freshly scheduled Event (repro.shard uses this
        # to track transmission-capable events for its lookahead promise).
        self._on_schedule: Optional[Callable[[Event], None]] = None
        # Queue-health instruments (null no-ops outside use_registry):
        # cancellations and compactions are cold paths, and the
        # processed/pending gauges are settled once per run loop exit,
        # so the hot path pays nothing for them.
        registry = current_registry()
        self._m_compactions = registry.counter("kernel.compactions")
        self._m_cancelled = registry.counter("kernel.cancelled_events")
        self._m_processed = registry.gauge("kernel.events_processed")
        self._m_pending = registry.gauge("kernel.pending_events")

    def enable_profiler(self) -> KernelProfiler:
        """Attach (or return the existing) event-loop profiler."""
        if self._profiler is None:
            self._profiler = KernelProfiler()
        return self._profiler

    @property
    def profiler(self) -> Optional[KernelProfiler]:
        return self._profiler

    def set_schedule_observer(
        self, observer: Optional[Callable[[Event], None]]
    ) -> None:
        """Install ``observer`` to be called with every scheduled event.

        One observer at most; pass None to remove.  The observer must
        not schedule or cancel events itself.
        """
        self._on_schedule = observer

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        name: str = "",
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        seq = next(self._seq)
        when = self.now + delay
        # Positional construction: this is the hottest allocation in the
        # kernel, and keyword passing costs measurably at this volume.
        event = Event(when, seq, callback, args, name, self, priority)
        heapq.heappush(self._heap, (when, priority, seq, event))
        if self._on_schedule is not None:
            self._on_schedule(event)
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        name: str = "",
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        seq = next(self._seq)
        event = Event(time, seq, callback, args, name, self, priority)
        heapq.heappush(self._heap, (time, priority, seq, event))
        if self._on_schedule is not None:
            self._on_schedule(event)
        return event

    def stop(self) -> None:
        """Stop the run loop after the current event returns."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of uncancelled events still queued (O(1))."""
        return len(self._heap) - self._cancelled

    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` the first time an event owned
        by this simulator is cancelled while still queued."""
        self._cancelled += 1
        self._m_cancelled.inc()
        if (
            self._cancelled >= self.COMPACT_MIN_GARBAGE
            and self._cancelled * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled events (lazy deletion)."""
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self.compactions += 1
        self._m_compactions.inc()

    def pending_events(self) -> Iterator[Event]:
        """Iterate over queued, uncancelled events in arbitrary order.

        For introspection (the shard runtime rebuilds its lookahead
        bookkeeping from this after a topology epoch change); callers
        must not mutate the queue while iterating.
        """
        for entry in self._heap:
            if not entry[3].cancelled:
                yield entry[3]

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        if not heap:
            return None
        return heap[0][0]

    def _pop_next(
        self, until: Optional[float], strict: bool = False
    ) -> Optional[Event]:
        """Pop and return the next live event at or before ``until``.

        Cancelled heap tops are discarded along the way.  Returns None
        when the queue is empty or the next live event lies beyond the
        horizon (that event stays queued).  With ``strict`` the horizon
        is exclusive: an event at exactly ``until`` stays queued.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            if head[3].cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            if until is not None and (
                head[0] > until or (strict and head[0] == until)
            ):
                return None
            return heapq.heappop(heap)[3]
        return None

    def _dispatch(self, event: Event) -> None:
        """Advance the clock to ``event`` and run its callback."""
        if event.time < self.now:
            raise SimulationError("event heap corrupted: time went backwards")
        self.now = event.time
        self.events_processed += 1
        # The event has left the queue; a later cancel() must not skew
        # the lazy-deletion accounting.
        event._owner = None
        profiler = self._profiler
        if profiler is None:
            event.callback(*event.args)
        else:
            profiler.note_depth(len(self._heap) + 1)
            started = time.perf_counter()
            event.callback(*event.args)
            profiler.record(
                event.name or getattr(event.callback, "__qualname__", "?"),
                time.perf_counter() - started,
            )

    def step(self) -> bool:
        """Run a single event.  Returns False when the queue is empty."""
        event = self._pop_next(None)
        if event is None:
            return False
        self._dispatch(event)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in order until the queue empties or limits hit.

        ``until`` is an inclusive horizon: events at exactly ``until`` run.
        When the horizon is reached the clock is advanced to it, so that
        periodic statistics normalized by elapsed time are exact.

        Each iteration pops the heap exactly once (the old loop peeked
        then re-popped, paying the heap guard twice per event).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while not self._stopped:
                event = self._pop_next(until)
                if event is None:
                    break
                self._dispatch(event)
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
            if until is not None and self.now < until and not self._stopped:
                self.now = until
        finally:
            self._running = False
            self._settle_gauges()

    def run_window(
        self,
        horizon: float,
        inclusive: bool = False,
        advance_clock: bool = False,
    ) -> int:
        """Run events up to ``horizon`` and return how many were processed.

        This is the safe-window stepping API used by the sharded kernel
        (:mod:`repro.shard`): a conservative synchronizer computes a
        horizon no cross-shard influence can precede, then each shard
        drains its queue up to it.  The horizon is *exclusive* by
        default — an event at exactly ``horizon`` stays queued for the
        next window — because only the shard owning the globally
        earliest potential transmission may execute events at the
        horizon itself (``inclusive=True``).

        Unlike :meth:`run`, the clock is left at the last executed
        event so externally sourced events may still be injected
        anywhere inside ``[now, horizon]`` before the next window;
        ``advance_clock`` restores the :meth:`run` behaviour of
        settling the clock on the horizon (used for the final window).
        """
        if self._running:
            raise SimulationError("run_window() is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while not self._stopped:
                event = self._pop_next(horizon, strict=not inclusive)
                if event is None:
                    break
                self._dispatch(event)
                processed += 1
            if advance_clock and self.now < horizon and not self._stopped:
                self.now = horizon
        finally:
            self._running = False
            self._settle_gauges()
        return processed

    def _settle_gauges(self) -> None:
        """Publish queue health to the metrics registry (run-loop exits
        only, so per-event cost is zero)."""
        self._m_processed.set(self.events_processed)
        self._m_pending.set(self.pending)

    def sample_health(self) -> None:
        """Refresh the queue-health gauges on demand.

        The gauges normally settle only when a run loop exits; a
        :class:`~repro.sim.metrics.TelemetrySampler` tick runs *inside*
        the loop and calls this first so the sampled curves reflect the
        queue as of the tick, not the previous window's exit.
        """
        self._settle_gauges()
