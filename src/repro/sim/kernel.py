"""Event loop: a heap of timestamped callbacks with stable ordering.

Determinism matters for reproducing the paper's experiments, so ties in
time are broken by a monotonically increasing sequence number: two events
scheduled for the same instant fire in the order they were scheduled.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling into the past, etc.)."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and may be cancelled.
    A cancelled event stays in the heap but is skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "name")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        name: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.name = name

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call repeatedly."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        label = self.name or getattr(self.callback, "__name__", "?")
        return f"<Event t={self.time:.6f} {label} {state}>"


class Simulator:
    """A discrete-event simulator with cancellable timers.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, node.wake)
        sim.run(until=3600.0)
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed = 0

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        name: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(self.now + delay, next(self._seq), callback, args, name=name)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        name: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        event = Event(time, next(self._seq), callback, args, name=name)
        heapq.heappush(self._heap, event)
        return event

    def stop(self) -> None:
        """Stop the run loop after the current event returns."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of uncancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def step(self) -> bool:
        """Run a single event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self.now:
                raise SimulationError("event heap corrupted: time went backwards")
            self.now = event.time
            self.events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in order until the queue empties or limits hit.

        ``until`` is an inclusive horizon: events at exactly ``until`` run.
        When the horizon is reached the clock is advanced to it, so that
        periodic statistics normalized by elapsed time are exact.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while not self._stopped:
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
            if until is not None and self.now < until and not self._stopped:
                self.now = until
        finally:
            self._running = False
