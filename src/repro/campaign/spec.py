"""Declarative campaign model: parameter grids expanded to trials.

A :class:`Campaign` names a trial function (a ``"module:function"``
path, so specs survive pickling into worker processes), a parameter
grid, and a seed fan-out.  :meth:`Campaign.expand` turns it into a
deterministic list of :class:`TrialSpec`: the same campaign always
expands to the same trials with the same seeds and the same
content-addressed keys, which is what makes resuming and caching safe.

The trial key hashes *everything that could change the result*: the
campaign name, the trial-function path, the merged parameter point, the
trial seed, and a code-version digest of the trial function's module —
so editing the trial code invalidates old cache entries instead of
silently serving stale results.
"""

from __future__ import annotations

import hashlib
import importlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.sim.rng import SeedSequence


def canonical_json(obj: Any) -> str:
    """Stable JSON encoding (sorted keys, no whitespace) for hashing."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def resolve_trial(path: str) -> Callable[[Dict[str, Any], int], Any]:
    """Import and return the trial function named by ``module:function``."""
    module_name, _, func_name = path.partition(":")
    if not module_name or not func_name:
        raise ValueError(f"trial path must look like 'pkg.module:function': {path!r}")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, func_name)
    except AttributeError:
        raise ValueError(f"{module_name} has no function {func_name!r}") from None


def code_version(trial: str) -> str:
    """Digest of the trial function's module source plus package version.

    Editing the trial module (or bumping the package) changes every
    trial key derived from it, forcing re-execution.
    """
    import repro

    module = importlib.import_module(trial.partition(":")[0])
    digest = hashlib.sha256()
    digest.update(repro.__version__.encode("utf-8"))
    source_file = getattr(module, "__file__", None)
    if source_file:
        digest.update(Path(source_file).read_bytes())
    return digest.hexdigest()[:16]


def trial_key(
    campaign: str,
    trial: str,
    params: Mapping[str, Any],
    seed: int,
    version: str,
) -> str:
    """Content address of one trial: sha256 over the canonical config."""
    payload = canonical_json(
        {
            "campaign": campaign,
            "trial": trial,
            "params": dict(params),
            "seed": seed,
            "code": version,
        }
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class TrialSpec:
    """One fully-resolved trial: parameters, seed, and cache key."""

    campaign: str
    trial: str
    index: int
    params: Mapping[str, Any]
    seed: int
    key: str

    def run(self) -> Any:
        """Execute the trial in-process (serial mode / debugging)."""
        return resolve_trial(self.trial)(dict(self.params), self.seed)


@dataclass
class Campaign:
    """A declarative experiment sweep.

    ``grid`` maps parameter names to the values to cross; ``fixed``
    holds parameters shared by every trial.  Each grid point is run
    ``replicates`` times with seeds derived from ``root_seed`` through
    :class:`SeedSequence` (or taken verbatim from ``seeds`` when paper
    tables pin them).  Parameter values must be JSON-serializable.
    """

    name: str
    trial: str
    grid: Dict[str, Sequence[Any]] = field(default_factory=dict)
    fixed: Dict[str, Any] = field(default_factory=dict)
    replicates: int = 1
    root_seed: int = 1
    seeds: Optional[Sequence[int]] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.replicates < 1:
            raise ValueError("replicates must be >= 1")
        overlap = set(self.grid) & set(self.fixed)
        if overlap:
            raise ValueError(f"params both fixed and swept: {sorted(overlap)}")

    @property
    def trial_seeds(self) -> List[Optional[int]]:
        if self.seeds is not None:
            return list(self.seeds)
        return [None] * self.replicates

    def expand(self) -> List[TrialSpec]:
        """The deterministic trial list this campaign denotes."""
        names = sorted(self.grid)
        sequence = SeedSequence(self.root_seed)
        version = code_version(self.trial)
        specs: List[TrialSpec] = []
        for combo in itertools.product(*(self.grid[name] for name in names)):
            point = dict(self.fixed)
            point.update(zip(names, combo))
            for replicate, pinned in enumerate(self.trial_seeds):
                if pinned is not None:
                    seed = pinned
                else:
                    label = f"{canonical_json(point)}#r{replicate}"
                    seed = sequence.child(label).root_seed
                specs.append(
                    TrialSpec(
                        campaign=self.name,
                        trial=self.trial,
                        index=len(specs),
                        params=point,
                        seed=seed,
                        key=trial_key(self.name, self.trial, point, seed, version),
                    )
                )
        return specs
