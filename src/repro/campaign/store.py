"""Content-addressed on-disk result store.

One JSON file per trial, addressed by the trial key (hash of config +
seed + code version, see :mod:`repro.campaign.spec`).  Re-running a
campaign looks each trial up here first, so completed trials are served
from cache and an interrupted campaign resumes where it stopped.

Writes are atomic (temp file + :func:`os.replace`) so a killed worker
never leaves a half-written entry that a resume would trust.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.campaign.spec import TrialSpec, canonical_json

DEFAULT_STORE_ENV = "REPRO_CAMPAIGN_DIR"
DEFAULT_STORE_DIR = ".repro-campaigns"


def default_store_root() -> Path:
    return Path(os.environ.get(DEFAULT_STORE_ENV, DEFAULT_STORE_DIR))


class ResultStore:
    """Keyed trial results on disk, sharded by key prefix."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or None (corrupt = miss)."""
        raw = self.get_bytes(key)
        if raw is None:
            return None
        try:
            return json.loads(raw)
        except ValueError:
            return None

    def get_bytes(self, key: str) -> Optional[bytes]:
        """Raw stored bytes, for byte-identity audits."""
        path = self._path(key)
        try:
            return path.read_bytes()
        except OSError:
            return None

    def put(
        self,
        spec: TrialSpec,
        result: Any,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Persist one trial result atomically; returns the entry path."""
        path = self._path(spec.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": spec.key,
            "campaign": spec.campaign,
            "trial": spec.trial,
            "params": dict(spec.params),
            "seed": spec.seed,
            "result": result,
            "meta": dict(meta or {}),
        }
        payload["meta"].setdefault("created", time.time())
        handle = tempfile.NamedTemporaryFile(
            mode="w", dir=str(path.parent), suffix=".tmp", delete=False
        )
        try:
            with handle:
                handle.write(canonical_json(payload))
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    def keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for entry in sorted(self.root.glob("*/*.json")):
            yield entry.stem

    def clean(self, keys: Optional[Iterator[str]] = None) -> int:
        """Remove the given entries (or every entry); returns the count."""
        removed = 0
        targets = list(self.keys()) if keys is None else list(keys)
        for key in targets:
            path = self._path(key)
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
            try:
                path.parent.rmdir()  # drop empty shards
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, int]:
        entries = 0
        nbytes = 0
        for key in self.keys():
            entries += 1
            try:
                nbytes += self._path(key).stat().st_size
            except OSError:
                pass
        return {"entries": entries, "bytes": nbytes}
