"""``python -m repro campaign`` — run/status/clean/list campaigns.

Usage::

    python -m repro campaign list
    python -m repro campaign run scale-aggregation --quick --jobs 4
    python -m repro campaign status scale-aggregation --quick
    python -m repro campaign clean scale-aggregation --quick

Results land in a content-addressed store (``--store``, default
``.repro-campaigns`` or ``$REPRO_CAMPAIGN_DIR``); re-running a campaign
serves completed trials from cache, so ``run`` after an interruption
resumes where it stopped.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.campaign.builtin import CAMPAIGNS, get_campaign, report_table
from repro.campaign.pool import run_campaign
from repro.campaign.progress import CampaignProgress
from repro.campaign.store import ResultStore, default_store_root


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro campaign", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command")

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("name", choices=sorted(CAMPAIGNS))
        p.add_argument("--quick", action="store_true",
                       help="reduced durations/replicates")
        p.add_argument("--seed", type=int, default=None,
                       help="campaign root seed override")
        p.add_argument("--store", default=None,
                       help="result-store directory "
                            "(default: $REPRO_CAMPAIGN_DIR or .repro-campaigns)")

    run = sub.add_parser("run", help="run (or resume) a campaign")
    add_common(run)
    run.add_argument("--jobs", type=int, default=1,
                     help="worker processes (1 = in-process serial)")
    run.add_argument("--timeout", type=float, default=None,
                     help="per-trial wall-clock limit in seconds (jobs > 1)")
    run.add_argument("--retries", type=int, default=1,
                     help="re-submissions after a crash or exception")
    run.add_argument("--force", action="store_true",
                     help="ignore cached results and re-run every trial")
    run.add_argument("--log", default=None,
                     help="write a JSONL campaign log to this path")
    run.add_argument("--max-trials", type=int, default=None,
                     help="execute at most N trials this invocation")

    status = sub.add_parser("status", help="cached vs pending trial counts")
    add_common(status)

    clean = sub.add_parser("clean", help="drop a campaign's cached results")
    add_common(clean)
    clean.add_argument("--everything", action="store_true",
                       help="drop ALL entries in the store, not just this "
                            "campaign's current trial keys")

    sub.add_parser("list", help="list known campaigns")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "list":
        for name in sorted(CAMPAIGNS):
            campaign = get_campaign(name, quick=True)
            print(f"{name:<22} {campaign.description}")
        return 0

    campaign = get_campaign(args.name, quick=args.quick, root_seed=args.seed)
    store = ResultStore(args.store if args.store else default_store_root())

    if args.command == "status":
        specs = campaign.expand()
        cached = sum(1 for spec in specs if spec.key in store)
        print(f"campaign {campaign.name}: {len(specs)} trials, "
              f"{cached} cached, {len(specs) - cached} pending")
        stats = store.stats()
        print(f"store {store.root}: {stats['entries']} entries, "
              f"{stats['bytes']} bytes")
        return 0

    if args.command == "clean":
        if args.everything:
            removed = store.clean()
        else:
            keys = [spec.key for spec in campaign.expand()]
            removed = store.clean(key for key in keys if key in store)
        print(f"removed {removed} entries from {store.root}")
        return 0

    # run
    progress = CampaignProgress(campaign.name, log_path=args.log, echo=True)
    report = run_campaign(
        campaign,
        jobs=args.jobs,
        store=store,
        timeout=args.timeout,
        retries=args.retries,
        force=args.force,
        progress=progress,
        max_trials=args.max_trials,
    )
    print()
    print(report_table(args.name, report))
    if report.interrupted:
        print("interrupted — re-run to resume from the cache", file=sys.stderr)
        return 130
    return 0 if report.failed == 0 and report.pending == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
