"""Parallel, resumable experiment campaigns with content-addressed caching.

The paper's authors ran a second, wired network just to collect
experiment data and listed "more flexible logging" and "analysis tools
for these networks" as missing (Section 7).  This package is that
tooling for the reproduction: declare a parameter sweep once
(:class:`Campaign`), expand it into deterministic seeded trials
(:class:`TrialSpec`), run them across worker processes
(:func:`run_campaign`), cache every result by a content hash of
config + seed + code version (:class:`ResultStore`), and fold the
per-trial outputs into the paper's mean ± 95% CI tables
(:mod:`repro.campaign.aggregate`).

Interrupting a campaign is safe: completed trials are persisted
atomically and the next ``run`` serves them from cache, executing only
what is left.
"""

from repro.campaign.aggregate import (
    AggregateRow,
    aggregate,
    format_pivot,
    format_table,
    pivot,
)
from repro.campaign.builtin import CAMPAIGNS, get_campaign, report_table
from repro.campaign.pool import CampaignReport, TrialOutcome, run_campaign
from repro.campaign.progress import CampaignProgress
from repro.campaign.spec import (
    Campaign,
    TrialSpec,
    canonical_json,
    code_version,
    resolve_trial,
    trial_key,
)
from repro.campaign.store import ResultStore, default_store_root
from repro.campaign.workers import WorkerCrashed, WorkerCrew

__all__ = [
    "WorkerCrashed",
    "WorkerCrew",
    "AggregateRow",
    "aggregate",
    "format_pivot",
    "format_table",
    "pivot",
    "CAMPAIGNS",
    "get_campaign",
    "report_table",
    "CampaignReport",
    "TrialOutcome",
    "run_campaign",
    "CampaignProgress",
    "Campaign",
    "TrialSpec",
    "canonical_json",
    "code_version",
    "resolve_trial",
    "trial_key",
    "ResultStore",
    "default_store_root",
]
