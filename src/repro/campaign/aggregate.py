"""Fold per-trial campaign outputs into the paper-style summary tables.

The paper reports every figure as a mean over 3–5 trials with a 95%
confidence interval; these helpers group successful trial results by
parameter values and apply :func:`repro.analysis.mean_ci`, producing
tables in the same shape as EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis import ConfidenceInterval, mean_ci

ValueGetter = Union[str, Callable[[Any], float]]


def _getter(value: ValueGetter) -> Callable[[Any], float]:
    if callable(value):
        return value
    return lambda result: float(result[value])


@dataclass(frozen=True)
class AggregateRow:
    """One grouped row: the grouping params and the value's mean ± CI."""

    params: Dict[str, Any]
    ci: ConfidenceInterval

    @property
    def n(self) -> int:
        return self.ci.n


def aggregate(
    outcomes: Iterable["TrialOutcome"],  # noqa: F821
    value: ValueGetter,
    by: Sequence[str],
) -> List[AggregateRow]:
    """Group successful outcomes by ``by`` params; mean/CI of ``value``."""
    getter = _getter(value)
    groups: Dict[Tuple, List[float]] = {}
    for outcome in outcomes:
        if not outcome.ok:
            continue
        group = tuple(outcome.spec.params.get(name) for name in by)
        groups.setdefault(group, []).append(getter(outcome.result))
    rows = [
        AggregateRow(params=dict(zip(by, group)), ci=mean_ci(values))
        for group, values in groups.items()
    ]
    rows.sort(key=lambda row: tuple(repr(row.params[name]) for name in by))
    return rows


def format_table(
    rows: Sequence[AggregateRow],
    value_label: str,
    title: Optional[str] = None,
) -> str:
    """An EXPERIMENTS.md-style fixed-width table of aggregate rows."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not rows:
        lines.append("(no successful trials)")
        return "\n".join(lines)
    by = list(rows[0].params)
    header = " ".join(f"{name:>12}" for name in by)
    lines.append(f"{header} {value_label + ' (mean ± 95% CI)':>28}")
    for row in rows:
        cells = " ".join(f"{str(row.params[name]):>12}" for name in by)
        lines.append(f"{cells} {str(row.ci):>28}")
    return "\n".join(lines)


def pivot(
    outcomes: Iterable["TrialOutcome"],  # noqa: F821
    value: ValueGetter,
    row: str,
    col: str,
) -> Dict[Any, Dict[Any, ConfidenceInterval]]:
    """Two-way grouping: ``{row_value: {col_value: mean ± CI}}``."""
    rows = aggregate(outcomes, value, by=(row, col))
    table: Dict[Any, Dict[Any, ConfidenceInterval]] = {}
    for entry in rows:
        table.setdefault(entry.params[row], {})[entry.params[col]] = entry.ci
    return table


def format_pivot(
    table: Dict[Any, Dict[Any, ConfidenceInterval]],
    row_label: str,
    title: Optional[str] = None,
) -> str:
    """Fixed-width rendering of a :func:`pivot` table."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not table:
        lines.append("(no successful trials)")
        return "\n".join(lines)
    cols = sorted({col for cells in table.values() for col in cells}, key=repr)
    header = " ".join(f"{str(col):>24}" for col in cols)
    lines.append(f"{row_label:>12} {header}")
    for row_value in sorted(table, key=repr):
        cells = []
        for col in cols:
            ci = table[row_value].get(col)
            cells.append(f"{str(ci) if ci else '-':>24}")
        lines.append(f"{str(row_value):>12} " + " ".join(cells))
    return "\n".join(lines)
