"""Campaign execution: serial or across a process pool, cache-first.

``jobs=1`` runs trials in-process (no pickling requirements, the mode
the old serial runner maps onto).  ``jobs>1`` fans trials out over a
:class:`~concurrent.futures.ProcessPoolExecutor` with per-trial
timeouts, bounded retries when a worker crashes, and graceful Ctrl-C
shutdown.  Either way, trials whose content-addressed key is already in
the :class:`~repro.campaign.store.ResultStore` are served from cache,
which is what makes an interrupted campaign resumable.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign.progress import CampaignProgress
from repro.campaign.spec import Campaign, TrialSpec, resolve_trial
from repro.campaign.store import ResultStore
from repro.sim.metrics import use_registry

#: Futures are polled this often so timeouts and Ctrl-C stay responsive.
_POLL_INTERVAL = 0.1


def _run_trial(trial: str, params: Dict[str, Any], seed: int) -> Tuple[Any, float, float]:
    """Execute one trial; module-level so worker processes can pickle it.

    Each trial runs inside its own metrics registry; whatever instruments
    the simulated stack registered come back attached to dict-shaped
    results under ``"metrics"`` (absent when the trial built no
    instrumented components, so metric-less trials are byte-identical to
    the pre-registry format and stay cache-compatible).
    """
    start = time.perf_counter()
    cpu_start = time.process_time()
    with use_registry() as registry:
        result = resolve_trial(trial)(dict(params), seed)
    if isinstance(result, dict) and not registry.empty:
        existing = result.get("metrics")
        if isinstance(existing, dict):
            # The trial attached its own snapshot (a sharded trial's
            # merged worker metrics, say): fold the registry into it
            # instead of silently discarding one of the two.
            merged = type(registry)()
            merged.merge(existing)
            merged.merge(registry.snapshot())
            result["metrics"] = merged.snapshot()
        else:
            result["metrics"] = registry.snapshot()
    return result, time.perf_counter() - start, time.process_time() - cpu_start


@dataclass
class TrialOutcome:
    """What happened to one spec: done, cached, failed, timeout, pending."""

    spec: TrialSpec
    status: str
    result: Any = None
    error: Optional[str] = None
    elapsed: float = 0.0
    cpu_time: float = 0.0
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.status in ("done", "cached")


@dataclass
class CampaignReport:
    """All outcomes of one run, in spec order."""

    campaign: str
    outcomes: List[TrialOutcome] = field(default_factory=list)
    wall_time: float = 0.0
    cpu_time: float = 0.0
    interrupted: bool = False

    def count(self, status: str) -> int:
        return sum(1 for o in self.outcomes if o.status == status)

    @property
    def done(self) -> int:
        return self.count("done")

    @property
    def cached(self) -> int:
        return self.count("cached")

    @property
    def failed(self) -> int:
        return sum(
            1 for o in self.outcomes if o.status in ("failed", "timeout")
        )

    @property
    def pending(self) -> int:
        return self.count("pending")

    @property
    def ok(self) -> bool:
        return not self.interrupted and all(o.ok for o in self.outcomes)

    def results(self) -> List[Tuple[Dict[str, Any], Any]]:
        """(params, result) for every successful trial, in spec order."""
        return [
            (dict(o.spec.params), o.result) for o in self.outcomes if o.ok
        ]


def run_campaign(
    campaign: Campaign,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    force: bool = False,
    progress: Optional[CampaignProgress] = None,
    max_trials: Optional[int] = None,
) -> CampaignReport:
    """Run ``campaign``, serving already-stored trials from cache.

    ``timeout`` bounds each trial's wall-clock seconds (enforced by
    worker replacement, so only with ``jobs > 1``); ``retries`` bounds
    re-submissions after a worker crash or trial exception;
    ``max_trials`` caps how many trials *execute* this call (the rest
    report ``pending``), which is how tests exercise partial runs.
    Ctrl-C stops cleanly: completed trials are already persisted, the
    report comes back with ``interrupted=True``.
    """
    specs = campaign.expand()
    progress = progress or CampaignProgress(campaign.name)
    progress.begin(len(specs), jobs=jobs)
    started = time.monotonic()

    outcomes: Dict[int, TrialOutcome] = {}
    pending: List[TrialSpec] = []
    for spec in specs:
        payload = None if (store is None or force) else store.get(spec.key)
        if payload is not None:
            outcomes[spec.index] = TrialOutcome(
                spec=spec,
                status="cached",
                result=payload.get("result"),
                elapsed=0.0,
                cpu_time=0.0,
            )
            progress.record(outcomes[spec.index])
        else:
            pending.append(spec)

    if max_trials is not None:
        for spec in pending[max_trials:]:
            outcomes[spec.index] = TrialOutcome(spec=spec, status="pending")
        pending = pending[:max_trials]

    def record(outcome: TrialOutcome) -> None:
        outcomes[outcome.spec.index] = outcome
        if outcome.status == "done" and store is not None:
            store.put(
                outcome.spec,
                outcome.result,
                meta={
                    "elapsed": outcome.elapsed,
                    "cpu": outcome.cpu_time,
                    "attempts": outcome.attempts,
                },
            )
        progress.record(outcome)

    interrupted = (
        _run_serial(pending, record, retries)
        if jobs <= 1
        else _run_pooled(pending, record, jobs, timeout, retries)
    )

    for spec in pending:
        if spec.index not in outcomes:
            outcomes[spec.index] = TrialOutcome(spec=spec, status="pending")

    progress.finish(interrupted=interrupted)
    return CampaignReport(
        campaign=campaign.name,
        outcomes=[outcomes[spec.index] for spec in specs],
        wall_time=time.monotonic() - started,
        cpu_time=progress.cpu_time,
        interrupted=interrupted,
    )


def _run_serial(pending, record, retries: int) -> bool:
    """In-process execution; returns True if interrupted."""
    for spec in pending:
        attempt = 0
        while True:
            attempt += 1
            try:
                result, elapsed, cpu = _run_trial(
                    spec.trial, dict(spec.params), spec.seed
                )
            except KeyboardInterrupt:
                return True
            except Exception:
                if attempt <= retries:
                    continue
                record(
                    TrialOutcome(
                        spec=spec,
                        status="failed",
                        error=traceback.format_exc(limit=3),
                        attempts=attempt,
                    )
                )
                break
            record(
                TrialOutcome(
                    spec=spec,
                    status="done",
                    result=result,
                    elapsed=elapsed,
                    cpu_time=cpu,
                    attempts=attempt,
                )
            )
            break
    return False


def _run_pooled(pending, record, jobs, timeout, retries) -> bool:
    """ProcessPoolExecutor execution; returns True if interrupted.

    Timeouts and worker crashes are handled by replacing the pool: a
    running future cannot be cancelled, so the stuck/poisoned executor
    is abandoned and survivors are resubmitted to a fresh one.
    """
    queue = deque((spec, 1) for spec in pending)
    executor = ProcessPoolExecutor(max_workers=jobs)
    inflight: Dict[Future, Tuple[TrialSpec, int, Optional[float]]] = {}
    interrupted = False
    try:
        while queue or inflight:
            while queue and len(inflight) < jobs:
                spec, attempt = queue.popleft()
                future = executor.submit(
                    _run_trial, spec.trial, dict(spec.params), spec.seed
                )
                deadline = (
                    time.monotonic() + timeout if timeout is not None else None
                )
                inflight[future] = (spec, attempt, deadline)
            done, _ = wait(
                set(inflight),
                timeout=_POLL_INTERVAL,
                return_when=FIRST_COMPLETED,
            )
            restart = False
            for future in done:
                spec, attempt, _deadline = inflight.pop(future)
                try:
                    result, elapsed, cpu = future.result()
                except BrokenProcessPool:
                    restart = True
                    if attempt <= retries:
                        queue.appendleft((spec, attempt + 1))
                    else:
                        record(
                            TrialOutcome(
                                spec=spec,
                                status="failed",
                                error="worker process crashed",
                                attempts=attempt,
                            )
                        )
                except Exception as exc:
                    if attempt <= retries:
                        queue.appendleft((spec, attempt + 1))
                    else:
                        record(
                            TrialOutcome(
                                spec=spec,
                                status="failed",
                                error=repr(exc),
                                attempts=attempt,
                            )
                        )
                else:
                    record(
                        TrialOutcome(
                            spec=spec,
                            status="done",
                            result=result,
                            elapsed=elapsed,
                            cpu_time=cpu,
                            attempts=attempt,
                        )
                    )
            now = time.monotonic()
            expired = [
                future
                for future, (_s, _a, deadline) in inflight.items()
                if deadline is not None and now > deadline
                and not future.done()  # a result beat the deadline check
            ]
            for future in expired:
                spec, attempt, _deadline = inflight.pop(future)
                record(
                    TrialOutcome(
                        spec=spec,
                        status="timeout",
                        error=f"trial exceeded {timeout}s",
                        attempts=attempt,
                    )
                )
                restart = True
            if restart:
                # Survivors keep their attempt count; they did not fail.
                for _future, (spec, attempt, _d) in inflight.items():
                    queue.appendleft((spec, attempt))
                inflight.clear()
                executor.shutdown(wait=False, cancel_futures=True)
                executor = ProcessPoolExecutor(max_workers=jobs)
    except KeyboardInterrupt:
        interrupted = True
    finally:
        # Join workers on a clean finish; abandon them when interrupted
        # or when a timed-out trial is still running in one.
        executor.shutdown(wait=not interrupted and not inflight,
                          cancel_futures=True)
    return interrupted
