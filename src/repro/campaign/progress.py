"""Campaign progress: counters, ETA, trace records, and a JSONL log.

Every trial outcome is emitted as a ``campaign.*`` record on a
:class:`~repro.sim.TraceBus` and, when a log path is given, appended to
a JSONL file in the same schema :mod:`repro.analysis.tracelog` writes —
so ``repro.analysis.load_trace`` / ``summarize_campaign`` consume
campaign logs exactly like simulator traces.  This is the "more
flexible logging" instrument the paper's Section 7 asked for, applied
to the experiment harness itself.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional, TextIO, Union

from repro.sim import TraceBus


class CampaignProgress:
    """Tracks trials done/failed/cached, wall vs CPU time, and ETA."""

    def __init__(
        self,
        campaign: str,
        trace: Optional[TraceBus] = None,
        log_path: Optional[Union[str, Path]] = None,
        echo: bool = False,
        stream: Optional[TextIO] = None,
    ) -> None:
        self.campaign = campaign
        self.trace = trace or TraceBus()
        self.echo = echo
        self.stream = stream or sys.stdout
        self._log: Optional[TextIO] = (
            Path(log_path).open("w") if log_path is not None else None
        )
        self.total = 0
        self.done = 0
        self.failed = 0
        self.cached = 0
        self.jobs = 1
        self.cpu_time = 0.0
        self.trial_wall_time = 0.0
        self._started = time.monotonic()

    # -- lifecycle ---------------------------------------------------

    def begin(self, total: int, jobs: int = 1) -> None:
        self._started = time.monotonic()
        self.total = total
        self.jobs = max(1, jobs)
        self._emit("campaign.begin", total=total, jobs=self.jobs)
        if self.echo:
            print(
                f"[{self.campaign}] {total} trials (jobs={self.jobs})",
                file=self.stream,
            )

    def record(self, outcome: "TrialOutcome") -> None:  # noqa: F821
        if outcome.status == "done":
            self.done += 1
        elif outcome.status == "cached":
            self.cached += 1
        else:
            self.failed += 1
        self.cpu_time += outcome.cpu_time
        self.trial_wall_time += outcome.elapsed
        self._emit(
            "campaign.trial",
            status=outcome.status,
            key=outcome.spec.key,
            index=outcome.spec.index,
            params=dict(outcome.spec.params),
            seed=outcome.spec.seed,
            elapsed=outcome.elapsed,
            cpu=outcome.cpu_time,
            attempts=outcome.attempts,
            error=outcome.error,
        )
        if self.echo and outcome.status != "cached":
            executed = self.done + self.failed
            pending = max(0, self.total - self.cached - executed)
            eta = self.eta()
            eta_text = f", eta {eta:.0f}s" if eta is not None else ""
            print(
                f"[{self.campaign}] {outcome.status:<7} "
                f"trial {outcome.spec.index} "
                f"({outcome.elapsed:.2f}s; {pending} pending{eta_text})",
                file=self.stream,
            )

    def finish(self, interrupted: bool = False) -> None:
        self._emit("campaign.end", interrupted=interrupted, **self.snapshot())
        if self.echo:
            snap = self.snapshot()
            print(
                f"[{self.campaign}] done={snap['done']} "
                f"cached={snap['cached']} failed={snap['failed']} "
                f"pending={snap['pending']} "
                f"wall={snap['wall_time']:.2f}s cpu={snap['cpu_time']:.2f}s",
                file=self.stream,
            )
        if self._log is not None:
            self._log.close()
            self._log = None

    # -- derived metrics ---------------------------------------------

    @property
    def wall_time(self) -> float:
        return time.monotonic() - self._started

    def eta(self) -> Optional[float]:
        """Seconds left, from the mean trial time over live workers."""
        executed = self.done + self.failed
        if executed == 0:
            return None
        pending = self.total - self.cached - executed
        if pending <= 0:
            return 0.0
        per_trial = self.trial_wall_time / executed
        return per_trial * pending / self.jobs

    def snapshot(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "cached": self.cached,
            "pending": max(
                0, self.total - self.cached - self.done - self.failed
            ),
            "wall_time": self.wall_time,
            "cpu_time": self.cpu_time,
        }

    # -- emission ----------------------------------------------------

    def _emit(self, category: str, **data: Any) -> None:
        now = self.wall_time
        self.trace.emit(now, category, None, **data)
        if self._log is not None:
            self._log.write(
                json.dumps(
                    {"t": now, "cat": category, "node": None, "data": data}
                )
                + "\n"
            )
            self._log.flush()
