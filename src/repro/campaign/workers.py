"""Long-lived worker processes with peer-to-peer pipes.

:mod:`repro.campaign.pool` maps *independent* trials onto a process
pool: workers are anonymous, receive one pickled closure each, and
never talk to each other.  The sharded simulator
(:mod:`repro.shard`) needs the opposite shape — a fixed crew of
*cooperating* workers that each hold one shard for the whole run and
exchange boundary traffic every synchronization round.  Routing those
rounds through the parent would double the per-round latency, so the
crew is wired all-to-all: every worker pair shares its own duplex pipe
and computes the next window barrier locally from what its peers sent.

The parent keeps one duplex pipe per worker for plan distribution and
result collection, detects crashed workers (a dead shard means the
round barrier would hang forever), and terminates the crew on error.

The worker entry point is named by dotted path (``pkg.mod:func``) and
resolved inside the child, so the crew works under any multiprocessing
start method; it is called as ``func(rank, size, peers, plan)`` where
``peers`` maps each other rank to its pipe connection, and its return
value is what :meth:`WorkerCrew.collect` hands back.
"""

from __future__ import annotations

import importlib
import multiprocessing
import multiprocessing.connection
import time
import traceback
from itertools import combinations
from typing import Any, Dict, List, Optional

#: parent-side poll cadence while waiting on results, seconds; short
#: enough that crashes and Ctrl-C stay responsive.
_POLL_INTERVAL = 0.1


class WorkerCrashed(RuntimeError):
    """A crew worker died or errored before returning its result."""

    def __init__(self, rank: int, detail: str) -> None:
        super().__init__(f"worker {rank}: {detail}")
        self.rank = rank
        self.detail = detail


def _resolve_target(path: str):
    module_name, _, func_name = path.partition(":")
    if not func_name:
        raise ValueError(f"target must be 'module:function', got {path!r}")
    module = importlib.import_module(module_name)
    return getattr(module, func_name)


def _child_main(rank, size, target_path, parent_conn, peers, plan):
    """Child-process entry: resolve the target, run it, report once."""
    try:
        target = _resolve_target(target_path)
        result = target(rank, size, peers, plan)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        parent_conn.send(("error", "interrupted"))
    except BaseException:
        parent_conn.send(("error", traceback.format_exc(limit=20)))
    else:
        parent_conn.send(("done", result))
    finally:
        parent_conn.close()
        for conn in peers.values():
            conn.close()


class WorkerCrew:
    """A fixed-size crew of cooperating worker processes.

    Usage::

        crew = WorkerCrew(size=4, target="repro.shard.worker:shard_worker_main")
        crew.start(plans)          # one plan per rank
        results = crew.collect()   # blocks; raises WorkerCrashed on death

    The crew is single-shot: one ``start``, one ``collect``, then
    :meth:`shutdown` (also invoked by ``collect`` on error and by the
    context-manager exit).
    """

    def __init__(
        self,
        size: int,
        target: str,
        start_method: Optional[str] = None,
    ) -> None:
        if size < 1:
            raise ValueError("crew size must be >= 1")
        self.size = size
        self.target = target
        self._ctx = (
            multiprocessing.get_context(start_method)
            if start_method is not None
            else multiprocessing.get_context()
        )
        self._procs: List[Any] = []
        self._conns: List[Any] = []
        self._started = False

    def start(self, plans: List[Any]) -> None:
        """Spawn the crew, handing ``plans[rank]`` to each worker."""
        if self._started:
            raise RuntimeError("crew already started")
        if len(plans) != self.size:
            raise ValueError(f"expected {self.size} plans, got {len(plans)}")
        self._started = True
        # One duplex pipe per unordered worker pair ...
        peer_ends: List[Dict[int, Any]] = [{} for _ in range(self.size)]
        child_side: List[Any] = []
        for a, b in combinations(range(self.size), 2):
            end_a, end_b = self._ctx.Pipe(duplex=True)
            peer_ends[a][b] = end_a
            peer_ends[b][a] = end_b
            child_side.extend((end_a, end_b))
        # ... plus a parent pipe per worker for plan/result traffic.
        for rank in range(self.size):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(
                target=_child_main,
                args=(
                    rank, self.size, self.target, child_conn,
                    peer_ends[rank], plans[rank],
                ),
                name=f"shard-worker-{rank}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        # Under a spawn/forkserver context the parent's copies of the
        # peer ends are dead weight once the children hold theirs.
        for end in child_side:
            end.close()

    def collect(self, timeout: Optional[float] = None) -> List[Any]:
        """Block until every worker reported; results in rank order.

        Raises :exc:`WorkerCrashed` if any worker errored or died, and
        :exc:`TimeoutError` past ``timeout`` seconds — the crew is torn
        down in both cases, so the caller never joins a hung barrier.
        """
        if not self._started:
            raise RuntimeError("crew not started")
        deadline = time.monotonic() + timeout if timeout is not None else None
        results: List[Any] = [None] * self.size
        remaining = set(range(self.size))
        try:
            while remaining:
                conns = {id(self._conns[r]): r for r in remaining}
                ready = multiprocessing.connection.wait(
                    [self._conns[r] for r in remaining],
                    timeout=_POLL_INTERVAL,
                )
                for conn in ready:
                    rank = conns[id(conn)]
                    try:
                        kind, value = conn.recv()
                    except EOFError:
                        raise WorkerCrashed(
                            rank, "exited without reporting a result"
                        )
                    if kind == "error":
                        raise WorkerCrashed(rank, value)
                    results[rank] = value
                    remaining.discard(rank)
                for rank in sorted(remaining):
                    proc = self._procs[rank]
                    if not proc.is_alive() and not self._conns[rank].poll():
                        raise WorkerCrashed(
                            rank, f"died with exit code {proc.exitcode}"
                        )
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(
                        f"workers {sorted(remaining)} still running after "
                        f"{timeout}s"
                    )
        except BaseException:
            self.shutdown()
            raise
        return results

    def shutdown(self) -> None:
        """Terminate and reap every worker; safe to call repeatedly."""
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self._procs = []
        self._conns = []

    def __enter__(self) -> "WorkerCrew":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
