"""Built-in campaigns: the benchmark workloads as declarative sweeps.

Each trial function is module-level, takes ``(params, seed)``, and
returns a JSON-serializable dict, so it can be dispatched to worker
processes and its results content-addressed.  The campaign factories
below bundle them with the parameter grids the benchmarks and paper
tables use; ``benchmarks/`` now runs these instead of private copies.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, List, Optional

from repro.campaign.aggregate import format_pivot, format_table, aggregate, pivot
from repro.campaign.spec import Campaign
from repro.sim.rng import make_rng

# ---------------------------------------------------------------------------
# demo — a trivially cheap campaign for smoke tests and CI


def demo_trial(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Deterministic toy trial; knobs to exercise the pool's edge cases.

    ``spin`` busy-waits that many seconds (timeout tests), ``fail``
    raises, and ``crash`` kills the worker process outright.
    """
    if params.get("crash"):
        os._exit(13)
    if params.get("fail"):
        raise RuntimeError("demo trial asked to fail")
    spin = params.get("spin", 0.0)
    if spin:
        deadline = time.perf_counter() + spin
        while time.perf_counter() < deadline:
            pass
    rng = make_rng(seed, "demo")
    x = params.get("x", 1)
    return {"x": x, "value": x * rng.random(), "seed": seed}


def demo_campaign(quick: bool = False, root_seed: int = 1) -> Campaign:
    return Campaign(
        name="demo",
        trial="repro.campaign.builtin:demo_trial",
        grid={"x": [1, 2] if quick else [1, 2, 3, 4]},
        replicates=2,
        root_seed=root_seed,
        description="cheap deterministic smoke campaign",
    )


# ---------------------------------------------------------------------------
# scale-aggregation — the simulation-era 49-node savings study
# (Section 6.1's cited 3-5x band; see benchmarks/test_scale_aggregation.py)

SCALE_GRID = 7
SCALE_DATA_INTERVAL = 0.5
SCALE_EXPLORATORY = 50.0


def scale_trial(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One 49-node grid run: 5 sources, 5 sinks, exploratory:data 1:100."""
    from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
    from repro.filters import SuppressionFilter
    from repro.naming import AttributeVector
    from repro.naming.keys import Key
    from repro.sim import Simulator
    from repro.testbed import IdealNetwork

    suppression = bool(params["suppression"])
    duration = float(params.get("duration", 300.0))
    grid = int(params.get("grid", SCALE_GRID))

    sim = Simulator()
    net = IdealNetwork(sim, delay=0.005)
    config = DiffusionConfig(
        interest_interval=50.0,
        gradient_timeout=120.0,
        interest_jitter=1.0,
        exploratory_interval=SCALE_EXPLORATORY,
        reinforcement_jitter=0.2,
    )
    total = grid * grid
    nodes, apis = {}, {}
    match = AttributeVector.builder().eq(Key.TYPE, "det").build()
    for i in range(total):
        nodes[i] = DiffusionNode(sim, i, net.add_node(i), config=config)
        apis[i] = DiffusionRouting(nodes[i])
        if suppression:
            SuppressionFilter(nodes[i], match_attrs=match)
    for i in range(total):
        if i % grid < grid - 1:
            net.connect(i, i + 1)
        if i < total - grid:
            net.connect(i, i + grid)
    sinks = [k * grid for k in range(5)]              # left edge
    sources = [(k + 1) * grid - 1 for k in range(5)]  # right edge
    received = {sink: set() for sink in sinks}
    sub = (
        AttributeVector.builder()
        .eq(Key.TYPE, "det")
        .actual(Key.INTERVAL, int(SCALE_DATA_INTERVAL * 1000))
        .build()
    )
    for sink in sinks:
        apis[sink].subscribe(
            sub,
            lambda attrs, msg, k=sink: received[k].add(
                attrs.value_of(Key.SEQUENCE)
            ),
        )
    pubs = {
        src: apis[src].publish(
            AttributeVector.builder().actual(Key.TYPE, "det").build()
        )
        for src in sources
    }
    count = int((duration - 5.0) / SCALE_DATA_INTERVAL)
    for sequence in range(count):
        when = 5.0 + sequence * SCALE_DATA_INTERVAL
        for src in sources:
            sim.schedule(
                when, apis[src].send, pubs[src],
                AttributeVector.builder().actual(Key.SEQUENCE, sequence).build(),
                80,  # pad toward the study's 64-127 B messages
            )
    sim.run(until=duration)
    total_bytes = sum(node.stats.bytes_sent for node in nodes.values())
    distinct = len(set().union(*received.values()))
    return {
        "bytes": total_bytes,
        "distinct": distinct,
        "generated": count,
        "bytes_per_event": total_bytes / max(1, distinct),
    }


def scale_campaign(
    quick: bool = False,
    root_seed: int = 1,
    duration: Optional[float] = None,
) -> Campaign:
    if duration is None:
        duration = 120.0 if quick else 300.0
    return Campaign(
        name="scale-aggregation",
        trial="repro.campaign.builtin:scale_trial",
        grid={"suppression": [True, False]},
        fixed={"duration": duration},
        seeds=[0],
        description="49-node simulation-scale aggregation savings (3-5x band)",
    )


# ---------------------------------------------------------------------------
# ablation-dutycycle — energy vs delivery across MAC duty cycles
# (see benchmarks/test_ablation_dutycycle.py)


def dutycycle_trial(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """A 4-hop line pushing one event every 6 s, like the Fig 8 source."""
    from repro import AttributeVector, Key
    from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
    from repro.energy import EnergyLedger
    from repro.link import FragmentationLayer
    from repro.mac import CsmaMac, DutyCycledCsmaMac
    from repro.radio import Channel, DistancePropagation, Modem, Topology
    from repro.sim import SeedSequence, Simulator, TraceBus

    duty_cycle = float(params["duty_cycle"])
    duration = float(params.get("duration", 600.0))
    seed = int(params.get("seed", seed))

    topology = Topology.line(5, spacing=15.0)
    sim = Simulator()
    seeds = SeedSequence(seed)
    trace = TraceBus()
    channel = Channel(sim, DistancePropagation(topology, seed=seed),
                      seeds=seeds, trace=trace)
    apis, ledgers = {}, {}
    for node_id in topology.node_ids():
        ledger = EnergyLedger()
        ledgers[node_id] = ledger
        modem = Modem(sim, channel, node_id, energy=ledger)
        if duty_cycle >= 1.0:
            mac = CsmaMac(sim, modem, rng=seeds.stream(f"mac:{node_id}"))
        else:
            mac = DutyCycledCsmaMac(
                sim, modem, duty_cycle=duty_cycle, period=1.0,
                rng=seeds.stream(f"mac:{node_id}"),
            )
            ledger.duty_cycle = duty_cycle
        frag = FragmentationLayer(sim, mac, node_id)
        node = DiffusionNode(sim, node_id, frag,
                             config=DiffusionConfig(), trace=trace,
                             rng=seeds.stream(f"diff:{node_id}"))
        apis[node_id] = DiffusionRouting(node)

    received: List[Any] = []
    sub = AttributeVector.builder().eq(Key.TYPE, "det").build()
    apis[0].subscribe(sub, lambda a, m: received.append(a))
    pub = apis[4].publish(
        AttributeVector.builder().actual(Key.TYPE, "det").build()
    )
    sent = 0
    t = 5.0
    while t < duration:
        sim.schedule(
            t, apis[4].send, pub,
            AttributeVector.builder().actual(Key.SEQUENCE, sent).build(),
        )
        sent += 1
        t += 6.0
    sim.run(until=duration)
    energy = sum(l.energy(elapsed=duration) for l in ledgers.values())
    return {
        "duty_cycle": duty_cycle,
        "delivery": len(received) / sent,
        "energy": energy,
    }


def dutycycle_campaign(quick: bool = False, root_seed: int = 1) -> Campaign:
    return Campaign(
        name="ablation-dutycycle",
        trial="repro.campaign.builtin:dutycycle_trial",
        grid={"duty_cycle": [1.0, 0.5, 0.2, 0.1]},
        fixed={"duration": 300.0 if quick else 600.0},
        seeds=[5],
        description="duty-cycled MAC energy vs delivery trade-off",
    )


# ---------------------------------------------------------------------------
# ablation-push-pull — one-phase push vs two-phase pull crossover
# (see benchmarks/test_ablation_push_pull.py)


def pushpull_trial(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Hub topology; sink:source ratio given as a ``"SxD"`` shape."""
    from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
    from repro.naming import AttributeVector
    from repro.naming.keys import Key
    from repro.sim import Simulator
    from repro.testbed import IdealNetwork

    push = bool(params["push"])
    n_sinks, n_sources = (int(part) for part in params["shape"].split("x"))
    duration = float(params.get("duration", 300.0))

    sub_attrs = AttributeVector.builder().eq(Key.TYPE, "t").build()
    pub_attrs = AttributeVector.builder().actual(Key.TYPE, "t").build()

    sim = Simulator()
    net = IdealNetwork(sim, delay=0.01)
    config = DiffusionConfig(
        push_mode=push,
        reinforcement_jitter=0.05,
        exploratory_interval=20.0,
        interest_interval=20.0,
        gradient_timeout=60.0,
        interest_jitter=0.1,
    )
    total = n_sinks + n_sources + 1
    nodes, apis = {}, {}
    for i in range(total):
        nodes[i] = DiffusionNode(sim, i, net.add_node(i), config=config)
        apis[i] = DiffusionRouting(nodes[i])
    hub = total - 1
    for i in range(total - 1):
        net.connect(i, hub)
    received: List[Any] = []
    for sink in range(n_sinks):
        apis[sink].subscribe(sub_attrs, lambda a, m: received.append(a))
    for s in range(n_sources):
        source = n_sinks + s
        pub = apis[source].publish(pub_attrs)
        for i in range(int(duration // 10)):
            sim.schedule(
                1.0 + i * 10.0, apis[source].send, pub,
                AttributeVector.builder().actual(Key.SEQUENCE, i).build(),
            )
    sim.run(until=duration)
    return {
        "bytes": sum(n.stats.bytes_sent for n in nodes.values()),
        "received": len(received),
    }


def pushpull_campaign(quick: bool = False, root_seed: int = 1) -> Campaign:
    return Campaign(
        name="ablation-push-pull",
        trial="repro.campaign.builtin:pushpull_trial",
        grid={
            "push": [False, True],
            "shape": ["1x6", "3x3", "6x1", "0x6"],
        },
        fixed={"duration": 150.0 if quick else 300.0},
        seeds=[0],
        description="push vs pull diffusion as the sink:source ratio varies",
    )


# ---------------------------------------------------------------------------
# fig8 — the paper's Figure 8 sweep, seeds pinned like the original harness


def fig8_trial(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One Figure 8 trial, flattened to a JSON-safe dict."""
    from dataclasses import asdict

    from repro.experiments.fig8_aggregation import run_fig8_trial

    result = run_fig8_trial(
        sources=int(params["sources"]),
        suppression=bool(params["suppression"]),
        seed=seed,
        duration=float(params.get("duration", 1800.0)),
    )
    payload = asdict(result)
    payload["bytes_per_event"] = result.bytes_per_event
    payload["delivery_ratio"] = result.delivery_ratio
    return payload


def fig8_campaign(quick: bool = False, root_seed: int = 100) -> Campaign:
    trials = 2 if quick else 5
    return Campaign(
        name="fig8",
        trial="repro.campaign.builtin:fig8_trial",
        grid={"sources": [1, 2, 3, 4], "suppression": [True, False]},
        fixed={"duration": 240.0 if quick else 1800.0},
        seeds=[root_seed + trial for trial in range(trials)],
        description="Figure 8: bytes per distinct event vs number of sources",
    )


# ---------------------------------------------------------------------------
# resilience — fault injection with repair-time verification
# (exploratory-interval sensitivity across the builtin fault plans)


def resilience_trial(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One fault on the standard grid, flattened for aggregation.

    ``time_to_repair``/``repair_intervals`` use -1.0 as the "never
    repaired" sentinel (aggregation needs numbers, not nulls); delivery
    ratios use 0.0 when nothing was originated in the window.
    """
    from repro.faults import resilience_run

    result = resilience_run(
        fault=str(params["fault"]),
        seed=int(params.get("seed", seed)),
        exploratory_interval=float(params["exploratory_interval"]),
        duration=float(params.get("duration", 160.0)),
    )
    fault = result["report"]["faults"][0]
    ttr = fault["time_to_repair"]
    intervals = fault["repair_intervals"]
    return {
        "fault": result["fault"],
        "exploratory_interval": result["exploratory_interval"],
        "overall_delivery": result["report"]["overall_delivery"] or 0.0,
        "delivery_during": fault["delivery_during"] or 0.0,
        "delivery_after": fault["delivery_after"] or 0.0,
        "time_to_repair": ttr if ttr is not None else -1.0,
        "repair_intervals": intervals if intervals is not None else -1.0,
        "violations": len(result["violations"]),
        "invariants_ok": result["invariants_ok"],
    }


def resilience_campaign(quick: bool = False, root_seed: int = 1) -> Campaign:
    return Campaign(
        name="resilience",
        trial="repro.campaign.builtin:resilience_trial",
        grid={
            "fault": ["crash", "link-flap", "partition"],
            "exploratory_interval": (
                [5.0, 10.0] if quick else [5.0, 10.0, 20.0]
            ),
        },
        fixed={"duration": 120.0 if quick else 200.0},
        seeds=[root_seed],
        description="repair time and delivery under faults vs exploratory interval",
    )


# ---------------------------------------------------------------------------
# hierarchy — propagation-mode ablation (flat / clustered / rendezvous)


def hierarchy_trial(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One propagation mode on the regional workload, via the sharded
    kernel; flattened for aggregation."""
    from repro.experiments.hierarchybench import run_trial

    row = run_trial(
        mode=str(params["mode"]),
        columns=int(params["columns"]),
        rows=int(params["rows"]),
        region=int(params.get("region", 8)),
        duration=float(params.get("duration", 90.0)),
        send_interval=float(params.get("send_interval", 2.0)),
        seed=seed,
        shards=int(params.get("shards", 1)),
    )
    h = row["hierarchy"]
    return {
        "mode": row["mode"],
        "n_nodes": row["n_nodes"],
        "control_messages": row["control_messages"],
        "control_bytes": row["control_bytes"],
        "delivered": row["delivered"],
        "delivery_ratio": row["delivery_ratio"],
        "time_to_first_data": (
            row["time_to_first_data"]
            if row["time_to_first_data"] is not None
            else -1.0
        ),
        "heads": h["heads"],
        "reelections": h["reelections"],
        "suppressed_interests": h["suppressed_interests"],
    }


def hierarchy_campaign(quick: bool = False, root_seed: int = 3) -> Campaign:
    return Campaign(
        name="hierarchy",
        trial="repro.campaign.builtin:hierarchy_trial",
        grid={"mode": ["flat", "clustered", "rendezvous"]},
        fixed={
            "columns": 10 if quick else 16,
            "rows": 10 if quick else 16,
            "region": 5 if quick else 8,
            "duration": 30.0 if quick else 90.0,
        },
        seeds=[root_seed],
        description=(
            "control overhead and delivery across interest propagation "
            "modes on the regional workload"
        ),
    )


# ---------------------------------------------------------------------------
# dtn — disruption-tolerant transfer: custody vs the legacy stack


def dtn_trial(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One bulk transfer under a repeating partition, flattened for
    aggregation.

    ``completed_at`` uses -1.0 as the "never completed" sentinel
    (aggregation needs numbers, not nulls).  ``unattributed`` must stay
    zero — every undelivered block is charged to a ``custody.*`` event
    or a per-layer drop reason.
    """
    from repro.dtn.scenario import dtn_run

    result = dtn_run(
        seed=int(params.get("seed", seed)),
        duty=float(params["duty"]),
        custody=bool(params["custody"]),
        mode=str(params.get("mode", "flat")),
        duration=float(params.get("duration", 260.0)),
    )
    stats = result["custody_stats"]
    return {
        "duty": result["duty"],
        "custody": result["custody"],
        "delivered": result["delivered"],
        "delivery_ratio": result["delivery_ratio"],
        "delivered_during_partition": result["delivery_during_partition"],
        "delivered_after_heal": result["delivery_after_partition"],
        "completed_at": (
            result["completed_at"]
            if result["completed_at"] is not None
            else -1.0
        ),
        "custody_accepted": stats["accepted"],
        "custody_depth": stats["depth_high_water"],
        "custody_expired": stats["expired"],
        "reinjections": stats["reinjections"],
        "retransmits": result["transfer"]["retransmits"],
        "unattributed": result["unattributed"],
        "violations": len(result["violations"]),
        "invariants_ok": result["invariants_ok"],
    }


def dtn_campaign(quick: bool = False, root_seed: int = 1) -> Campaign:
    return Campaign(
        name="dtn",
        trial="repro.campaign.builtin:dtn_trial",
        grid={
            "custody": [False, True],
            "duty": [0.0, 0.6] if quick else [0.0, 0.3, 0.6],
        },
        # One horizon for both forms: the custody arm keeps delivering
        # through the final heal window, so a clipped quick horizon
        # under-reports it against a baseline that already stalled.
        fixed={"duration": 260.0},
        seeds=[root_seed],
        description=(
            "bulk-transfer delivery and custody depth vs partition duty "
            "cycle, custody on/off"
        ),
    )


# ---------------------------------------------------------------------------
# registry


CAMPAIGNS: Dict[str, Callable[..., Campaign]] = {
    "demo": demo_campaign,
    "scale-aggregation": scale_campaign,
    "ablation-dutycycle": dutycycle_campaign,
    "ablation-push-pull": pushpull_campaign,
    "fig8": fig8_campaign,
    "resilience": resilience_campaign,
    "hierarchy": hierarchy_campaign,
    "dtn": dtn_campaign,
}


def get_campaign(
    name: str, quick: bool = False, root_seed: Optional[int] = None
) -> Campaign:
    try:
        factory = CAMPAIGNS[name]
    except KeyError:
        raise ValueError(
            f"unknown campaign {name!r}; known: {', '.join(sorted(CAMPAIGNS))}"
        ) from None
    if root_seed is None:
        return factory(quick=quick)
    return factory(quick=quick, root_seed=root_seed)


def report_table(name: str, report: "CampaignReport") -> str:  # noqa: F821
    """The campaign's headline aggregate table (EXPERIMENTS.md shape)."""
    outcomes = report.outcomes
    if name == "demo":
        rows = aggregate(outcomes, "value", by=("x",))
        return format_table(rows, "value", title="demo: value by x")
    if name == "scale-aggregation":
        rows = aggregate(outcomes, "bytes_per_event", by=("suppression",))
        table = format_table(
            rows, "B/event",
            title="49 nodes, 5 sources, 5 sinks, exploratory:data 1:100",
        )
        by_supp = {row.params["suppression"]: row.ci.mean for row in rows}
        if True in by_supp and False in by_supp and by_supp[True]:
            factor = by_supp[False] / by_supp[True]
            table += f"\nsavings factor: {factor:.1f}x (paper cites 3-5x)"
        return table
    if name == "ablation-dutycycle":
        energy = aggregate(outcomes, "energy", by=("duty_cycle",))
        delivery = aggregate(outcomes, "delivery", by=("duty_cycle",))
        lines = [format_table(energy, "total energy", title="duty-cycle sweep")]
        lines.append(format_table(delivery, "delivery"))
        return "\n".join(lines)
    if name == "ablation-push-pull":
        table = pivot(outcomes, "bytes", row="shape", col="push")
        return format_pivot(
            table, "sinks x srcs",
            title="bytes by shape (pull=False / push=True)",
        )
    if name == "fig8":
        table = pivot(outcomes, "bytes_per_event", row="sources", col="suppression")
        return format_pivot(
            table, "sources",
            title="Figure 8 — bytes/event (suppression True / False)",
        )
    if name == "resilience":
        table = pivot(
            outcomes, "repair_intervals", row="fault", col="exploratory_interval"
        )
        return format_pivot(
            table, "fault",
            title="time-to-repair in exploratory intervals (-1 = never)",
        )
    if name == "dtn":
        delivery = pivot(outcomes, "delivery_ratio", row="duty", col="custody")
        depth = aggregate(outcomes, "custody_depth", by=("duty", "custody"))
        unattributed = sum(
            o.result.get("unattributed", 0) for o in outcomes if o.ok
        )
        lines = [
            format_pivot(
                delivery, "duty",
                title="delivery ratio vs partition duty (custody False / True)",
            ),
            format_table(depth, "custody depth"),
            f"unattributed losses across all trials: {unattributed}",
        ]
        return "\n".join(lines)
    if name == "hierarchy":
        ctrl = aggregate(outcomes, "control_messages", by=("mode",))
        delivery = aggregate(outcomes, "delivery_ratio", by=("mode",))
        lines = [
            format_table(
                ctrl, "control msgs",
                title="interest + cluster-control transmissions by mode",
            ),
            format_table(delivery, "delivery"),
        ]
        return "\n".join(lines)
    return f"({len([o for o in outcomes if o.ok])} successful trials)"
