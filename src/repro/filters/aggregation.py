"""In-network data aggregation filters (paper Sections 5.1 and 6.1).

The surveillance experiment deploys :class:`SuppressionFilter` on every
node: overlapping sensors detect the same object and tag their reports
with synchronized sequence numbers; the filter forwards the first copy
of each sequence number and suppresses the rest, cutting traffic by up
to 42% with four sources.

:class:`CountingAggregationFilter` implements the paper's sketched
refinement: hold the first report briefly, count how many sensors
reported the same event, annotate the surviving message, and forward
one aggregate.  It trades a little latency for a detection count.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.core.cache import DataCache
from repro.core.filter_api import FilterHandle, GRADIENT_FILTER_PRIORITY
from repro.core.messages import Message
from repro.core.node import DiffusionNode
from repro.naming import AttributeVector
from repro.naming.attribute import Attribute, Operator, ValueType
from repro.naming.keys import Key


def _event_key(message: Message) -> Optional[Tuple]:
    """Identity of the sensed event: the synchronized sequence number.

    Returns None when the message carries no sequence number, in which
    case aggregation does not apply.
    """
    seq = message.attrs.value_of(Key.SEQUENCE)
    if seq is None:
        return None
    return ("event", message.attrs.value_of(Key.TYPE), seq)


class SuppressionFilter:
    """Forward the first copy of each event; drop duplicates.

    Registered above the gradient filter so suppression happens before
    routing: a suppressed message costs this node nothing on the radio.
    The paper's variant "does not affect latency at all, since we
    forward unique events immediately upon reception and then suppress
    any additional duplicates".
    """

    def __init__(
        self,
        node: DiffusionNode,
        match_attrs: Optional[AttributeVector] = None,
        priority: int = GRADIENT_FILTER_PRIORITY + 20,
        window: float = 30.0,
        capacity: int = 256,
    ) -> None:
        self.node = node
        self.seen = DataCache(capacity=capacity, timeout=window)
        self.suppressed = 0
        self.passed = 0
        self.handle = node.add_filter(
            match_attrs if match_attrs is not None else AttributeVector(),
            priority,
            self._callback,
            name="suppression",
        )

    def _callback(self, message: Message, handle: FilterHandle) -> None:
        if not message.msg_type.is_data:
            self.node.send_message(message, handle)
            return
        key = _event_key(message)
        if key is None:
            self.node.send_message(message, handle)
            return
        if self.seen.seen_before(key, self.node.sim.now):
            self.suppressed += 1
            return  # drop: do not re-inject
        self.passed += 1
        self.node.send_message(message, handle)

    def remove(self) -> None:
        self.node.remove_filter(self.handle)


class CountingAggregationFilter:
    """Delay, count detections, annotate, forward one aggregate.

    The first report of an event is held for ``delay`` seconds; further
    reports of the same event increment a counter and are dropped.  When
    the timer fires, the held message is forwarded annotated with the
    number of concurring detections (carried in ``DETECTIONS_KEY``), so
    downstream nodes and the sink learn how many sensors agreed.
    """

    #: attribute key carrying the number of concurring detections
    DETECTIONS_KEY = int(Key.INTENSITY)

    def __init__(
        self,
        node: DiffusionNode,
        match_attrs: Optional[AttributeVector] = None,
        priority: int = GRADIENT_FILTER_PRIORITY + 20,
        delay: float = 0.5,
        window: float = 30.0,
    ) -> None:
        self.node = node
        self.delay = delay
        self.window = window
        # event key -> [message, count, timer_event]
        self._pending: Dict[Tuple, list] = {}
        self._done = DataCache(capacity=256, timeout=window)
        self.aggregates_sent = 0
        self.reports_absorbed = 0
        self.handle = node.add_filter(
            match_attrs if match_attrs is not None else AttributeVector(),
            priority,
            self._callback,
            name="counting-aggregation",
        )

    def _callback(self, message: Message, handle: FilterHandle) -> None:
        if not message.msg_type.is_data:
            self.node.send_message(message, handle)
            return
        key = _event_key(message)
        if key is None:
            self.node.send_message(message, handle)
            return
        now = self.node.sim.now
        if self._done.contains(key, now):
            self.reports_absorbed += 1
            return  # aggregate already sent for this event
        pending = self._pending.get(key)
        if pending is not None:
            pending[1] += 1
            self.reports_absorbed += 1
            return
        timer = self.node.sim.schedule(
            self.delay, self._flush, key, name="aggregation.flush"
        )
        self._pending[key] = [message, 1, timer]

    def _flush(self, key: Tuple) -> None:
        pending = self._pending.pop(key, None)
        if pending is None:
            return
        message, count, _ = pending
        self._done.insert(key, self.node.sim.now)
        count_attr = Attribute(
            self.DETECTIONS_KEY, ValueType.INT32, Operator.IS, count
        )
        annotated = replace(
            message,
            attrs=message.attrs.without_key(self.DETECTIONS_KEY).with_attribute(
                count_attr
            ),
        )
        self.aggregates_sent += 1
        self.node.send_message(annotated, self.handle)

    def remove(self) -> None:
        for pending in self._pending.values():
            pending[2].cancel()
        self._pending.clear()
        self.node.remove_filter(self.handle)
