"""Monitoring/debugging filter.

Section 3.3: "In addition to these applications, we have found them
[filters] very useful for debugging and monitoring."  This filter is
transparent: it records what passes and always forwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.filter_api import FilterHandle
from repro.core.messages import Message, MessageType
from repro.core.node import DiffusionNode
from repro.naming import AttributeVector


@dataclass
class LoggedMessage:
    """One observation of a message passing through the node."""

    time: float
    msg_type: MessageType
    origin: int
    last_hop: Optional[int]
    nbytes: int


class LoggingFilter:
    """Transparent tap on a node's message pipeline."""

    def __init__(
        self,
        node: DiffusionNode,
        match_attrs: Optional[AttributeVector] = None,
        priority: int = 200,
        keep_records: bool = True,
        max_records: int = 10_000,
    ) -> None:
        self.node = node
        self.keep_records = keep_records
        self.max_records = max_records
        self.records: List[LoggedMessage] = []
        self.counts: Dict[MessageType, int] = {t: 0 for t in MessageType}
        self.bytes: Dict[MessageType, int] = {t: 0 for t in MessageType}
        self.handle = node.add_filter(
            match_attrs if match_attrs is not None else AttributeVector(),
            priority,
            self._callback,
            name="logging",
        )

    def _callback(self, message: Message, handle: FilterHandle) -> None:
        self.counts[message.msg_type] += 1
        self.bytes[message.msg_type] += message.nbytes
        if self.keep_records and len(self.records) < self.max_records:
            self.records.append(
                LoggedMessage(
                    time=self.node.sim.now,
                    msg_type=message.msg_type,
                    origin=message.origin,
                    last_hop=message.last_hop,
                    nbytes=message.nbytes,
                )
            )
        self.node.send_message(message, handle)

    @property
    def total_messages(self) -> int:
        return sum(self.counts.values())

    def remove(self) -> None:
        self.node.remove_filter(self.handle)
