"""Geographically constrained interest forwarding (GEAR-style).

The paper's Section 4.2 notes: "We are currently exploring using
filters to optimize diffusion (avoiding flooding) with geographic
information [39]" — reference [39] is Yu, Estrin & Govindan's GEAR.
This filter implements the essential optimization as a diffusion
filter, exactly the deployment route the paper proposes:

* interests carrying a rectangular region (``X_COORD``/``Y_COORD``
  GE/LE formals) are only rebroadcast by nodes that make *progress*
  toward the region (their distance to the region is smaller than the
  previous hop's, within a slack);
* nodes inside the region flood normally so every in-region sensor is
  reached;
* interests without geographic constraints are untouched.

Suppressing a rebroadcast here means the gradient filter never sees the
interest, so no gradient is set up at pruned nodes — data will not flow
through them, which is the point: the interest (and later exploratory
data) avoids irrelevant parts of the network.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.core.filter_api import FilterHandle, GRADIENT_FILTER_PRIORITY
from repro.core.messages import Message, MessageType
from repro.core.node import DiffusionNode
from repro.naming import AttributeVector, Operator
from repro.naming.keys import Key
from repro.radio.topology import Topology


def region_of(attrs: AttributeVector) -> Optional[Tuple[float, float, float, float]]:
    """Extract the (xmin, xmax, ymin, ymax) rectangle, if present."""
    xmin = attrs.find(Key.X_COORD, Operator.GE)
    xmax = attrs.find(Key.X_COORD, Operator.LE)
    ymin = attrs.find(Key.Y_COORD, Operator.GE)
    ymax = attrs.find(Key.Y_COORD, Operator.LE)
    if None in (xmin, xmax, ymin, ymax):
        return None
    return (float(xmin.value), float(xmax.value), float(ymin.value), float(ymax.value))


def distance_to_region(
    x: float, y: float, region: Tuple[float, float, float, float]
) -> float:
    """Euclidean distance from a point to a rectangle (0 when inside)."""
    xmin, xmax, ymin, ymax = region
    dx = max(xmin - x, 0.0, x - xmax)
    dy = max(ymin - y, 0.0, y - ymax)
    return math.hypot(dx, dy)


class GearFilter:
    """Prune interest floods that move away from the target region."""

    def __init__(
        self,
        node: DiffusionNode,
        topology: Topology,
        priority: int = GRADIENT_FILTER_PRIORITY + 40,
        slack: float = 5.0,
    ) -> None:
        self.node = node
        self.topology = topology
        self.slack = slack
        self.pruned = 0
        self.forwarded = 0
        self.handle = node.add_filter(
            AttributeVector(), priority, self._callback, name="gear"
        )

    def _callback(self, message: Message, handle: FilterHandle) -> None:
        if message.msg_type is not MessageType.INTEREST:
            self.node.send_message(message, handle)
            return
        region = region_of(message.attrs)
        if region is None or message.last_hop is None:
            # No geography, or locally originated: normal processing.
            self.node.send_message(message, handle)
            return
        if not self.topology.has_node(self.node.node_id) or not self.topology.has_node(
            message.last_hop
        ):
            self.node.send_message(message, handle)
            return
        here = self.topology.position(self.node.node_id)
        there = self.topology.position(message.last_hop)
        my_distance = distance_to_region(here.x, here.y, region)
        their_distance = distance_to_region(there.x, there.y, region)
        if my_distance == 0.0 or my_distance < their_distance + self.slack:
            # Inside the region, or making progress: keep flooding.
            self.forwarded += 1
            self.node.send_message(message, handle)
            return
        self.pruned += 1  # drop: moving away from the region

    def remove(self) -> None:
        self.node.remove_filter(self.handle)
