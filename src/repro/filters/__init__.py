"""Application filters: in-network processing (paper Sections 3.3, 5).

* :class:`SuppressionFilter` — the Figure 8 aggregation filter: "pass
  the first unique event and suppress subsequent events with identical
  sequence numbers".
* :class:`CountingAggregationFilter` — the "more sophisticated filter"
  the paper sketches: delays briefly, counts detecting sensors, and
  annotates the surviving event.
* :class:`LoggingFilter` — debugging/monitoring, which the paper found
  filters "very useful for".
* :class:`GearFilter` — geographically constrained interest forwarding,
  the paper's cited future-work optimization [39].
"""

from repro.filters.aggregation import CountingAggregationFilter, SuppressionFilter
from repro.filters.logging import LoggingFilter
from repro.filters.gear import GearFilter

__all__ = [
    "SuppressionFilter",
    "CountingAggregationFilter",
    "LoggingFilter",
    "GearFilter",
]
