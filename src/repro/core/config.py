"""Tunable protocol parameters.

Defaults follow the paper's testbed configuration (Section 6.1):
interests re-flooded every 60 s, one exploratory message per ten data
messages, ~127-byte messages on a 13 kb/s radio.
"""

from __future__ import annotations

from dataclasses import dataclass

#: interest/exploratory dissemination strategies (see repro.hierarchy)
PROPAGATION_MODES = ("flat", "clustered", "rendezvous")


@dataclass
class DiffusionConfig:
    """Knobs for the diffusion core.

    Attributes:
        interest_interval: seconds between interest re-floods from a sink
            ("interest messages (sent every 60s and flooded from each
            node)").
        interest_jitter: uniform jitter applied to interest origination
            and to rebroadcasts, decorrelating the flood.
        reinforcement_jitter: upper bound of the random delay before a
            reinforcement is transmitted.  Reinforcements are triggered
            by exploratory data, i.e. exactly while a network-wide flood
            is in progress; the delay lets the flood drain so the
            unicast reinforcement is not clobbered by hidden terminals.
        gradient_timeout: seconds a gradient survives without refresh;
            comfortably above interest_interval so one lost flood does
            not tear paths down.
        exploratory_interval: seconds between exploratory messages from
            a publication ("exploratory messages every 60s" on the
            testbed; with one data message per 6 s that is the paper's
            1:10 exploratory:data ratio).  A send is exploratory when at
            least this long has passed since the last exploratory one.
        exploratory_every: optional count-based override — mark every
            Nth message exploratory instead (used by ablations; None
            selects the time-based rule).
        reinforced_timeout: seconds a reinforced gradient survives
            without a fresh reinforcement.
        push_mode: one-phase push diffusion.  Sinks do not flood
            interests; sources advertise with exploratory data floods
            carrying their publication signature, and nodes whose local
            subscriptions match reinforce back toward the source.  Push
            wins when sinks are plentiful and sources few (the
            advertisement flood is paid once, no interest refresh
            traffic); pull wins in the paper's query-style workloads.
            All nodes of a network must agree on the mode.
        multipath_degree: how many distinct neighbors a sink reinforces
            per exploratory generation.  1 is classic single-path
            diffusion; higher values implement the paper's Section 6.4
            future-work idea of sending "similar data over multiple
            paths to gain robustness when faced with low-quality
            links", trading duplicate transmissions for delivery.
        header_bytes: fixed per-message header charged on the wire in
            addition to the encoded attributes.
        enable_reinforcement: when False the protocol degenerates to pure
            flooding (ablation: two-phase pull vs flooding).
        enable_negative_reinforcement: when False, stale reinforced paths
            only die by timeout.
        enable_duplicate_suppression: the core's own loop-prevention
            cache (distinct from application-level aggregation filters).
        cache_capacity: entries in the duplicate-suppression cache
            (micro-diffusion shrinks this to 10).
        cache_timeout: seconds before a cache entry is forgotten.
        propagation_mode: how interests and exploratory data spread.
            ``flat`` is the paper's network-wide flood and leaves the
            core bit-identical to the classic stack; ``clustered`` and
            ``rendezvous`` are the hierarchical modes implemented by
            :func:`repro.hierarchy.install_hierarchy`, which reads this
            field when no explicit mode is passed.  The field itself
            changes nothing until a hierarchy policy is installed — all
            nodes of a network must agree on the mode.
    """

    interest_interval: float = 60.0
    interest_jitter: float = 2.0
    reinforcement_jitter: float = 1.0
    gradient_timeout: float = 150.0
    exploratory_interval: float = 60.0
    exploratory_every: "int | None" = None
    reinforced_timeout: float = 150.0
    multipath_degree: int = 1
    push_mode: bool = False
    header_bytes: int = 24
    enable_reinforcement: bool = True
    enable_negative_reinforcement: bool = True
    enable_duplicate_suppression: bool = True
    cache_capacity: int = 512
    cache_timeout: float = 60.0
    propagation_mode: str = "flat"

    def validate(self) -> None:
        if self.propagation_mode not in PROPAGATION_MODES:
            raise ValueError(
                f"propagation_mode must be one of {PROPAGATION_MODES}, "
                f"got {self.propagation_mode!r}"
            )
        if self.interest_interval <= 0:
            raise ValueError("interest_interval must be positive")
        if self.exploratory_every is not None and self.exploratory_every < 1:
            raise ValueError("exploratory_every must be >= 1")
        if self.exploratory_interval <= 0:
            raise ValueError("exploratory_interval must be positive")
        if self.gradient_timeout <= self.interest_interval:
            raise ValueError("gradient_timeout should exceed interest_interval")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        if self.multipath_degree < 1:
            raise ValueError("multipath_degree must be >= 1")
