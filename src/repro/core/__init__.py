"""Directed diffusion core (paper Sections 3 and 4).

The core manages interests, gradients, exploratory data, reinforcement
and the filter pipeline.  Applications use the publish/subscribe API of
:class:`~repro.core.api.DiffusionRouting` (Figure 4 of the paper) and
the filter API (Figure 5); both are facades over
:class:`~repro.core.node.DiffusionNode`.
"""

from repro.core.config import DiffusionConfig
from repro.core.messages import Message, MessageType
from repro.core.gradient import Gradient, GradientTable, InterestEntry
from repro.core.cache import DataCache
from repro.core.filter_api import Filter, FilterHandle, GRADIENT_FILTER_PRIORITY
from repro.core.node import DiffusionNode
from repro.core.api import DiffusionRouting, PublicationHandle, SubscriptionHandle

__all__ = [
    "DiffusionConfig",
    "Message",
    "MessageType",
    "Gradient",
    "GradientTable",
    "InterestEntry",
    "DataCache",
    "Filter",
    "FilterHandle",
    "GRADIENT_FILTER_PRIORITY",
    "DiffusionNode",
    "DiffusionRouting",
    "PublicationHandle",
    "SubscriptionHandle",
]
