"""Network Routing API (paper Figure 4 / Coffin et al. [13]).

A thin facade over :class:`~repro.core.node.DiffusionNode` exposing the
publish/subscribe interface the paper defines::

    handle NR::subscribe(NRAttrVec *subscribeAttrs, const NR::Callback *cb);
    int    NR::unsubscribe(handle subscriptionHandle);
    handle NR::publish(NRAttrVec *publishAttrs);
    int    NR::unpublish(handle publication_handle);
    int    NR::send(handle publication_handle, NRAttrVec *sendAttrs);

plus the filter API of Figure 5 (``addFilter``/``removeFilter``/
``sendMessage``/``sendMessageToNext``).  The callback style is
event-driven, as the paper's implementations favour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.filter_api import FilterHandle
from repro.core.messages import Message
from repro.core.node import DiffusionNode
from repro.naming import AttributeVector


@dataclass(frozen=True)
class SubscriptionHandle:
    """Opaque subscription identifier."""

    handle_id: int
    node_id: int


@dataclass(frozen=True)
class PublicationHandle:
    """Opaque publication identifier."""

    handle_id: int
    node_id: int


class DiffusionRouting:
    """The per-node API object applications hold."""

    def __init__(self, node: DiffusionNode) -> None:
        self._node = node

    @property
    def node_id(self) -> int:
        return self._node.node_id

    @property
    def node(self) -> DiffusionNode:
        return self._node

    # -- publish/subscribe ----------------------------------------------------

    def subscribe(
        self,
        attrs: AttributeVector,
        callback: Callable[[AttributeVector, Message], None],
    ) -> SubscriptionHandle:
        """Register interest in data matching ``attrs``.

        Interests are flooded immediately and refreshed periodically;
        ``callback(data_attrs, message)`` fires for every matching
        message delivered at this node (including interest messages, for
        applications that "subscribe for subscriptions").
        """
        handle_id = self._node.subscribe(attrs, callback)
        return SubscriptionHandle(handle_id=handle_id, node_id=self.node_id)

    def unsubscribe(self, handle: SubscriptionHandle) -> bool:
        """Stop the subscription; returns False for unknown handles."""
        return self._node.unsubscribe(handle.handle_id)

    def publish(self, attrs: AttributeVector) -> PublicationHandle:
        """Declare a data source.  Data sent through the returned handle
        carries these attributes merged with the per-send attributes."""
        handle_id = self._node.publish(attrs)
        return PublicationHandle(handle_id=handle_id, node_id=self.node_id)

    def unpublish(self, handle: PublicationHandle) -> bool:
        return self._node.unpublish(handle.handle_id)

    def send(
        self,
        handle: PublicationHandle,
        attrs: AttributeVector,
        padding_bytes: int = 0,
        force_exploratory: bool = False,
    ) -> Optional[Message]:
        """Send one data message.  If no matching interest has reached
        this node, the data does not leave it (paper Section 4.1).

        ``force_exploratory`` marks the message exploratory regardless
        of the publication's cadence — low-rate control-style traffic
        (e.g. loss-recovery requests) uses this to guarantee flooding
        progress even when no reinforced path is alive.
        """
        return self._node.send(
            handle.handle_id,
            attrs,
            padding_bytes=padding_bytes,
            force_exploratory=force_exploratory,
        )

    # -- filters -------------------------------------------------------------------

    def add_filter(
        self,
        attrs: AttributeVector,
        priority: int,
        callback: Callable[[Message, FilterHandle], None],
        name: str = "",
    ) -> FilterHandle:
        """Inject application code into this node's message pipeline."""
        return self._node.add_filter(attrs, priority, callback, name=name)

    def remove_filter(self, handle: FilterHandle) -> bool:
        return self._node.remove_filter(handle)

    def send_message(self, message: Message, handle: FilterHandle) -> None:
        """From a filter callback: pass the message down the pipeline."""
        self._node.send_message(message, handle)

    def send_message_to_next(self, message: Message, handle: FilterHandle) -> None:
        """From a filter callback: hand the message straight to the radio."""
        self._node.send_message_to_next(message, handle)
