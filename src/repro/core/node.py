"""DiffusionNode: the per-node diffusion core.

One instance runs on every sensor node.  It owns the gradient table,
the duplicate cache, the filter pipeline, and the protocol logic of
two-phase-pull directed diffusion:

* interests flood (with per-message dedup) and set up gradients;
* exploratory data floods along gradients and records upstream pointers;
* sinks reinforce the neighbor that delivered the first copy of each new
  exploratory generation; reinforcements propagate hop-by-hop along the
  upstream pointers toward each source;
* non-exploratory data travels only on reinforced gradients;
* negative reinforcements tear down abandoned paths when a sink switches
  preferred neighbors.

The core's routing runs as a built-in filter at
:data:`~repro.core.filter_api.GRADIENT_FILTER_PRIORITY`, so application
filters can interpose above it (see the aggregation and nested-query
filters in :mod:`repro.filters`).
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.core.cache import DataCache
from repro.core.config import DiffusionConfig
from repro.core.filter_api import Filter, FilterHandle, GRADIENT_FILTER_PRIORITY
from repro.core.gradient import GradientTable, InterestEntry
from repro.core.messages import (
    BROADCAST,
    Message,
    MessageType,
    make_data,
    make_interest,
    make_reinforcement,
)
from repro.naming import AttributeVector, fast_two_way_match
from repro.naming.keys import Key
from repro.sim import Simulator, TraceBus
from repro.sim.metrics import CLASS_LABEL, MetricsRegistry, current_registry

_subscription_ids = itertools.count(1)
_publication_ids = itertools.count(1)

#: metric/report label per message class.  Both reinforcement
#: polarities share one label (they are the same control function).
MESSAGE_CLASS_LABELS: Dict[MessageType, str] = {
    MessageType.INTEREST: "interest",
    MessageType.DATA: "data",
    MessageType.EXPLORATORY_DATA: "exploratory",
    MessageType.POSITIVE_REINFORCEMENT: "reinforcement",
    MessageType.NEGATIVE_REINFORCEMENT: "reinforcement",
    MessageType.CONTROL: "control",
}


@dataclass
class Subscription:
    """A local data sink (or interest watcher)."""

    handle_id: int
    attrs: AttributeVector
    callback: Callable[[AttributeVector, Message], None]
    periodic_event: Optional[object] = None
    entry: Optional[InterestEntry] = None


@dataclass
class Publication:
    """A local data source."""

    handle_id: int
    attrs: AttributeVector
    sends: int = 0
    last_exploratory: Optional[float] = None


class NodeStats:
    """Traffic counters for experiments (bytes/messages by type)."""

    def __init__(self) -> None:
        self.bytes_sent: int = 0
        self.messages_sent: int = 0
        self.bytes_by_type: Dict[MessageType, int] = {t: 0 for t in MessageType}
        self.messages_by_type: Dict[MessageType, int] = {t: 0 for t in MessageType}
        self.messages_received: int = 0
        self.events_delivered: int = 0
        self.messages_dropped_no_route: int = 0
        self.duplicates_suppressed: int = 0

    def count_tx(self, message: Message) -> None:
        self.bytes_sent += message.nbytes
        self.messages_sent += 1
        self.bytes_by_type[message.msg_type] += message.nbytes
        self.messages_by_type[message.msg_type] += 1


class DiffusionNode:
    """Diffusion core bound to one node's link stack."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        transport,
        config: Optional[DiffusionConfig] = None,
        trace: Optional[TraceBus] = None,
        rng: Optional[random.Random] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.transport = transport  # FragmentationLayer-compatible
        self.config = config or DiffusionConfig()
        self.config.validate()
        self.trace = trace or TraceBus()
        self.rng = rng or random.Random(node_id)
        self.stats = NodeStats()
        registry = metrics if metrics is not None else current_registry()
        self._m_tx_messages = registry.counter("diffusion.tx.messages")
        self._m_tx_bytes = registry.counter("diffusion.tx.bytes")
        # Per-message-class accounting (interest / data / exploratory /
        # reinforcement / control), resolved once per class so the hot
        # path stays two increments.  Labeled instruments are memoized
        # by (name, labels), so every node shares one counter per class.
        self._m_tx_class = {
            t: (
                registry.counter(
                    "diffusion.tx.messages", **{CLASS_LABEL: label}
                ),
                registry.counter(
                    "diffusion.tx.bytes", **{CLASS_LABEL: label}
                ),
            )
            for t, label in MESSAGE_CLASS_LABELS.items()
        }
        self._m_rx_messages = registry.counter("diffusion.rx.messages")
        self._m_delivered = registry.counter("diffusion.delivered")
        self._m_drop_dup = registry.counter(
            "diffusion.drops", reason="cache-suppression"
        )
        self._m_drop_noroute = registry.counter(
            "diffusion.drops", reason="no-route"
        )
        self._m_drop_negative = registry.counter(
            "diffusion.drops", reason="negative-reinforcement"
        )

        self.gradients = GradientTable()
        self.cache = DataCache(
            capacity=self.config.cache_capacity,
            timeout=self.config.cache_timeout,
        )
        self.subscriptions: Dict[int, Subscription] = {}
        self.publications: Dict[int, Publication] = {}
        self._filters: List[Filter] = []
        self._sweep_event = None
        # Optional hierarchy hook (repro.hierarchy): a ForwardPolicy
        # duck-typed object consulted at each rebroadcast decision.
        # None — the default — takes exactly the legacy code paths, so
        # flat mode stays bit-identical to the classic stack.
        self.forward_policy = None

        if transport is not None:
            transport.deliver_callback = self._on_network_message

        # The routing core is itself a filter: an empty attribute vector
        # has no formals, so it matches every message.
        self._gradient_filter = Filter(
            attrs=AttributeVector(),
            priority=GRADIENT_FILTER_PRIORITY,
            callback=self._gradient_filter_callback,
            name="gradient-core",
        )
        self._filters.append(self._gradient_filter)
        self._schedule_sweep()

    # ------------------------------------------------------------------
    # Filter pipeline
    # ------------------------------------------------------------------

    def add_filter(
        self,
        attrs: AttributeVector,
        priority: int,
        callback: Callable[[Message, FilterHandle], None],
        name: str = "",
    ) -> FilterHandle:
        """Register an application filter (paper Figure 5, ``addFilter``)."""
        if priority == GRADIENT_FILTER_PRIORITY:
            raise ValueError(
                f"priority {GRADIENT_FILTER_PRIORITY} is reserved for the core"
            )
        filt = Filter(attrs=attrs, priority=priority, callback=callback, name=name)
        # The list is kept sorted by descending priority; insort keeps
        # registration order among equal priorities (same as the old
        # stable re-sort) at O(n) per insert instead of O(n log n).
        bisect.insort(self._filters, filt, key=lambda f: -f.priority)
        return filt.handle

    def remove_filter(self, handle: FilterHandle) -> bool:
        """``removeFilter``: deregister; returns False when unknown."""
        for filt in self._filters:
            if filt.handle == handle and filt is not self._gradient_filter:
                self._filters.remove(filt)
                return True
        return False

    def send_message(self, message: Message, handle: FilterHandle) -> None:
        """Filter API: continue pipeline below the caller's priority."""
        self._run_pipeline(message, below_priority=handle.priority)

    def send_message_to_next(self, message: Message, handle: FilterHandle) -> None:
        """Filter API: bypass remaining filters, hand to the radio."""
        self._transmit(message)

    def _run_pipeline(self, message: Message, below_priority: int = 255) -> None:
        for filt in self._filters:  # sorted by descending priority
            if filt.priority >= below_priority:
                continue
            if filt.matches(message):
                filt.callback(message, filt.handle)
                return
        # No filter claimed the message; it dies silently (same as the
        # reference implementation when no filter matches).

    # ------------------------------------------------------------------
    # Publish/subscribe API (used via repro.core.api.DiffusionRouting)
    # ------------------------------------------------------------------

    def subscribe(
        self,
        attrs: AttributeVector,
        callback: Callable[[AttributeVector, Message], None],
    ) -> int:
        """Create a subscription; floods interests periodically."""
        handle_id = next(_subscription_ids)
        entry = self.gradients.entry_for(attrs)
        entry.local_sink = True
        sub = Subscription(
            handle_id=handle_id, attrs=attrs, callback=callback, entry=entry
        )
        self.subscriptions[handle_id] = sub
        if not self.config.push_mode:
            self._originate_interest(sub)
        return handle_id

    def unsubscribe(self, handle_id: int) -> bool:
        sub = self.subscriptions.pop(handle_id, None)
        if sub is None:
            return False
        if sub.periodic_event is not None:
            sub.periodic_event.cancel()
        still_local = any(
            other.entry is sub.entry for other in self.subscriptions.values()
        )
        if not still_local:
            sub.entry.local_sink = False
        return True

    def publish(self, attrs: AttributeVector) -> int:
        handle_id = next(_publication_ids)
        self.publications[handle_id] = Publication(handle_id=handle_id, attrs=attrs)
        return handle_id

    def unpublish(self, handle_id: int) -> bool:
        return self.publications.pop(handle_id, None) is not None

    def send(
        self,
        publication_handle: int,
        attrs: AttributeVector,
        padding_bytes: int = 0,
        force_exploratory: bool = False,
    ) -> Optional[Message]:
        """Send data: publication attrs merged with per-message attrs.

        A message is marked exploratory when ``exploratory_interval``
        seconds have passed since the last exploratory one (the very
        first message always is); a count-based cadence applies instead
        when ``config.exploratory_every`` is set.  Returns the message,
        or None when the publication handle is unknown.
        """
        pub = self.publications.get(publication_handle)
        if pub is None:
            return None
        merged = AttributeVector(list(pub.attrs) + list(attrs))
        if force_exploratory:
            exploratory = True
        elif self.config.exploratory_every is not None:
            exploratory = pub.sends % self.config.exploratory_every == 0
        else:
            exploratory = (
                pub.last_exploratory is None
                or self.sim.now - pub.last_exploratory
                >= self.config.exploratory_interval
            )
        # Only consume the exploratory slot when the message can leave
        # the node: a send with no matching demand is dropped, and
        # burning the slot on it would leave the source without a path
        # until the next interval.  Push-mode advertisements always
        # leave — there is no interest state to consult.
        if self.config.push_mode:
            has_demand = True
        else:
            has_demand = bool(self.gradients.matching_data(merged, self.sim.now))
        if exploratory and has_demand:
            pub.last_exploratory = self.sim.now
        pub.sends += 1
        message = make_data(
            attrs=merged,
            origin=self.node_id,
            exploratory=exploratory,
            header_bytes=self.config.header_bytes,
            padding_bytes=padding_bytes,
            push_attrs=pub.attrs if self.config.push_mode else None,
        )
        self._note_origin(message)
        self._run_pipeline(message)
        return message

    # ------------------------------------------------------------------
    # Interest origination and refresh
    # ------------------------------------------------------------------

    def _originate_interest(self, sub: Subscription) -> None:
        if sub.handle_id not in self.subscriptions:
            return
        message = make_interest(
            attrs=sub.attrs,
            origin=self.node_id,
            header_bytes=self.config.header_bytes,
        )
        self._note_origin(message)
        self._run_pipeline(message)
        jitter = self.rng.uniform(0, self.config.interest_jitter)
        sub.periodic_event = self.sim.schedule(
            self.config.interest_interval + jitter,
            self._originate_interest,
            sub,
            name="diffusion.interest-refresh",
        )

    # ------------------------------------------------------------------
    # Core (gradient filter) processing
    # ------------------------------------------------------------------

    def _gradient_filter_callback(self, message: Message, handle: FilterHandle) -> None:
        if message.msg_type is MessageType.INTEREST:
            self._process_interest(message)
        elif message.msg_type.is_data:
            self._process_data(message)
        elif message.msg_type is MessageType.CONTROL:
            # Control-plane traffic (hierarchy announcements) is consumed
            # by the filters that speak it; the gradient core never
            # routes or re-floods it.
            return
        else:
            self._process_reinforcement(message)

    # -- interests -------------------------------------------------------

    def _note_origin(self, message: Message) -> None:
        """Trace the creation of a message at this node (rare path)."""
        self.trace.emit(
            self.sim.now,
            "path.origin",
            node=self.node_id,
            trace=message.trace_id,
            msg_type=message.msg_type.name,
            parent=message.parent_trace,
        )

    def _note_drop(self, message: Message, reason: str) -> None:
        """Trace a message this node declined to carry further."""
        self.trace.emit(
            self.sim.now,
            "path.drop",
            node=self.node_id,
            trace=message.trace_id,
            msg_type=message.msg_type.name,
            reason=reason,
            layer="core",
        )

    def _process_interest(self, message: Message) -> None:
        now = self.sim.now
        if self.config.enable_duplicate_suppression and self.cache.seen_before(
            ("interest", message.unique_id), now
        ):
            self.stats.duplicates_suppressed += 1
            self._m_drop_dup.inc()
            self._note_drop(message, "cache-suppression")
            if self.forward_policy is not None:
                # Hierarchy modes count duplicate copies as evidence of
                # neighborhood coverage (counter-based suppression).
                self.forward_policy.note_interest_duplicate(self, message)
            return
        entry = self.gradients.entry_for(message.attrs)
        if message.last_hop is not None:
            interval = message.attrs.value_of(Key.INTERVAL)
            entry.update_gradient(
                message.last_hop,
                now,
                self.config.gradient_timeout,
                interval=float(interval) if interval is not None else None,
            )
        else:
            entry.last_refresh = now
        self._deliver_to_subscriptions(message)
        # Flood: every node redistributes the interest to its neighbors
        # — unless an installed hierarchy policy elects to suppress or
        # defer this copy (flat mode has no policy and always floods).
        if self.forward_policy is None or self.forward_policy.forward_interest(
            self, message
        ):
            self._transmit(message.forwarded_copy(BROADCAST))

    # -- data ----------------------------------------------------------------

    def _process_data(self, message: Message) -> None:
        now = self.sim.now
        if self.config.enable_duplicate_suppression and self.cache.seen_before(
            ("data", message.unique_id), now
        ):
            self.stats.duplicates_suppressed += 1
            self._m_drop_dup.inc()
            self._note_drop(message, "cache-suppression")
            if message.msg_type is MessageType.EXPLORATORY_DATA:
                # Duplicate exploratory copies are not re-forwarded or
                # re-delivered, but they still carry path information:
                # each copy's arrival direction extends the upstream
                # candidate list (what multipath reinforcement selects
                # from) and refreshes sink-side reinforcement.
                self._note_duplicate_exploratory(message, now)
                if self.forward_policy is not None:
                    self.forward_policy.note_exploratory_duplicate(
                        self, message
                    )
            return
        if message.push_attrs is not None:
            self._process_push_data(message, now)
            return
        matches = self.gradients.matching_data(message.attrs, now)
        if not matches:
            if (
                self.forward_policy is not None
                and message.msg_type is MessageType.EXPLORATORY_DATA
                and self.forward_policy.forward_unmatched_exploratory(
                    self, message
                )
            ):
                # Hierarchy modes can route exploratory data toward
                # demand this node never heard an interest for (the
                # rendezvous region); flat mode drops it here.
                self._transmit(message.forwarded_copy(BROADCAST))
                return
            self.stats.messages_dropped_no_route += 1
            self._m_drop_noroute.inc()
            self._note_drop(message, "no-route")
            return
        delivered = self._deliver_to_subscriptions(message)
        if message.msg_type is MessageType.EXPLORATORY_DATA:
            self._process_exploratory(message, matches, delivered, now)
        else:
            self._forward_plain_data(message, matches, now)

    def _process_push_data(self, message: Message, now: float) -> None:
        """One-phase push: no interest state exists; data routes on the
        publication entry carried in ``push_attrs``."""
        delivered = self._deliver_to_subscriptions(message)
        entry = self.gradients.entry_for(message.push_attrs)
        data_origin = (
            message.data_origin if message.data_origin is not None else message.origin
        )
        if message.msg_type is MessageType.EXPLORATORY_DATA:
            entry.note_exploratory(
                data_origin, message.unique_id, message.last_hop, now
            )
            if (
                delivered
                and message.last_hop is not None
                and self.config.enable_reinforcement
            ):
                # A matching local subscription makes this node a sink
                # for the advertised publication: reinforce toward it.
                self._sink_reinforce(entry, data_origin, now, cause=message.trace_id)
            # Advertisements flood the whole network (the cost of push).
            self._transmit(message.forwarded_copy(BROADCAST))
            return
        next_hops = [
            n
            for n in entry.reinforced_neighbors(data_origin, now)
            if n != message.last_hop
        ]
        if not next_hops:
            if not delivered:
                self.stats.messages_dropped_no_route += 1
                if entry.was_torn_down(data_origin):
                    self._m_drop_negative.inc()
                    self._note_drop(message, "negative-reinforcement")
                else:
                    self._m_drop_noroute.inc()
                    self._note_drop(message, "no-route")
            return
        for neighbor in next_hops:
            self._transmit(message.forwarded_copy(neighbor))

    def _note_duplicate_exploratory(self, message: Message, now: float) -> None:
        data_origin = (
            message.data_origin if message.data_origin is not None else message.origin
        )
        if message.push_attrs is not None:
            entries = [self.gradients.entry_for(message.push_attrs)]
        else:
            entries = self.gradients.matching_data(message.attrs, now)
        for entry in entries:
            first_copy = entry.note_exploratory(
                data_origin, message.unique_id, message.last_hop, now
            )
            if (
                entry.local_sink
                and not first_copy
                and message.last_hop is not None
                and self.config.enable_reinforcement
                and self.config.multipath_degree > 1
            ):
                self._sink_reinforce(entry, data_origin, now, cause=message.trace_id)

    def _process_exploratory(
        self,
        message: Message,
        matches: List[InterestEntry],
        delivered_locally: bool,
        now: float,
    ) -> None:
        data_origin = message.data_origin if message.data_origin is not None else message.origin
        for entry in matches:
            entry.note_exploratory(
                data_origin, message.unique_id, message.last_hop, now
            )
            if (
                entry.local_sink
                and message.last_hop is not None
                and self.config.enable_reinforcement
            ):
                # Reinforce on *every* copy heard, not just the first:
                # individual reinforcement messages are best-effort and
                # compete with the exploratory flood, so repetition is
                # what makes path setup reliable.  note_exploratory has
                # already pointed "preferred" at the first-copy neighbor.
                self._sink_reinforce(entry, data_origin, now, cause=message.trace_id)
        # Exploratory data floods onward to find/repair paths.
        remote_demand = any(
            entry.active_gradient_neighbors(now) for entry in matches
        )
        policy = self.forward_policy
        if policy is None:
            if remote_demand:
                self._transmit(message.forwarded_copy(BROADCAST))
        elif policy.forward_exploratory(self, message, remote_demand):
            self._transmit(message.forwarded_copy(BROADCAST))

    def _sink_reinforce(
        self,
        entry: InterestEntry,
        data_origin: int,
        now: float,
        cause: Optional[str] = None,
    ) -> None:
        """Sink-side path selection for one (interest, source) pair.

        The preferred neighbors are the first ``multipath_degree``
        distinct deliverers of the newest exploratory generation; with
        degree 1 this is classic single-path diffusion.
        """
        candidates = [
            n for n in entry.upstream_neighbors(data_origin) if n is not None
        ]
        preferred = candidates[: self.config.multipath_degree]
        if not preferred:
            return
        old = entry.sink_preferred.get(data_origin, [])
        if self.config.enable_negative_reinforcement:
            for dropped in old:
                if dropped not in preferred:
                    self._send_reinforcement(
                        positive=False,
                        entry=entry,
                        data_origin=data_origin,
                        next_hop=dropped,
                        cause=cause,
                    )
        entry.sink_preferred[data_origin] = list(preferred)
        for next_hop in preferred:
            self._send_reinforcement(
                positive=True,
                entry=entry,
                data_origin=data_origin,
                next_hop=next_hop,
                cause=cause,
            )

    def _send_reinforcement(
        self,
        positive: bool,
        entry: InterestEntry,
        data_origin: int,
        next_hop: int,
        cause: Optional[str] = None,
    ) -> None:
        message = make_reinforcement(
            positive=positive,
            interest_attrs=entry.attrs,
            interest_digest=entry.digest,
            data_origin=data_origin,
            origin=self.node_id,
            next_hop=next_hop,
            header_bytes=self.config.header_bytes,
            parent_trace=cause,
        )
        self._note_origin(message)
        # Jittered: reinforcements fire while an exploratory flood is in
        # the air; delaying past the flood keeps them out of collisions.
        delay = self.rng.uniform(0.05, max(0.05, self.config.reinforcement_jitter))
        self.sim.schedule(delay, self._transmit, message, name="diffusion.reinforce")

    def _forward_plain_data(
        self, message: Message, matches: List[InterestEntry], now: float
    ) -> None:
        data_origin = message.data_origin if message.data_origin is not None else message.origin
        if not self.config.enable_reinforcement:
            # Flooding ablation: data behaves like exploratory data.
            if any(entry.active_gradient_neighbors(now) for entry in matches):
                self._transmit(message.forwarded_copy(BROADCAST))
            return
        next_hops: List[int] = []
        for entry in matches:
            for neighbor in entry.reinforced_neighbors(data_origin, now):
                if neighbor != message.last_hop and neighbor not in next_hops:
                    next_hops.append(neighbor)
        if not next_hops:
            local = any(entry.local_sink for entry in matches)
            if not local:
                self.stats.messages_dropped_no_route += 1
                if any(entry.was_torn_down(data_origin) for entry in matches):
                    self._m_drop_negative.inc()
                    self._note_drop(message, "negative-reinforcement")
                else:
                    self._m_drop_noroute.inc()
                    self._note_drop(message, "no-route")
            return
        for neighbor in next_hops:
            self._transmit(message.forwarded_copy(neighbor))

    # -- reinforcement --------------------------------------------------------

    def _process_reinforcement(self, message: Message) -> None:
        now = self.sim.now
        if message.interest_digest is None or message.data_origin is None:
            return
        entry = self.gradients.get(message.interest_digest)
        if entry is None:
            entry = self.gradients.entry_for(message.attrs)
        positive = message.msg_type is MessageType.POSITIVE_REINFORCEMENT
        downstream = message.last_hop
        if downstream is None:
            return
        if positive:
            entry.reinforce(
                message.data_origin, downstream, now, self.config.reinforced_timeout
            )
            if (
                self.forward_policy is not None
                and self.forward_policy.reinforcement_implies_demand
            ):
                # Rendezvous sources never hear interests, so the
                # arriving reinforcement is itself the demand signal: it
                # refreshes a plain gradient toward the reinforcing
                # neighbor, letting send() route plain data normally.
                entry.update_gradient(
                    downstream, now, self.config.gradient_timeout
                )
            upstream = entry.upstream_neighbor(message.data_origin)
            if upstream is not None:
                self._send_reinforcement(
                    positive=True,
                    entry=entry,
                    data_origin=message.data_origin,
                    next_hop=upstream,
                    cause=message.trace_id,
                )
        else:
            entry.unreinforce(message.data_origin, downstream)
            if not entry.reinforced_neighbors(message.data_origin, now):
                upstream = entry.upstream_neighbor(message.data_origin)
                if upstream is not None:
                    self._send_reinforcement(
                        positive=False,
                        entry=entry,
                        data_origin=message.data_origin,
                        next_hop=upstream,
                        cause=message.trace_id,
                    )

    # ------------------------------------------------------------------
    # Local delivery
    # ------------------------------------------------------------------

    def _deliver_to_subscriptions(self, message: Message) -> bool:
        delivered = False
        effective = message.matching_attrs()
        for sub in list(self.subscriptions.values()):
            if fast_two_way_match(sub.attrs, effective):
                delivered = True
                self.stats.events_delivered += 1
                self._m_delivered.inc()
                self.trace.emit(
                    self.sim.now,
                    "app.deliver",
                    node=self.node_id,
                    msg_type=message.msg_type.name,
                    origin=message.origin,
                    trace=message.trace_id,
                    hops=message.hop_count,
                )
                sub.callback(message.attrs, message)
        return delivered

    # ------------------------------------------------------------------
    # Network I/O
    # ------------------------------------------------------------------

    def _transmit(self, message: Message) -> None:
        self.stats.count_tx(message)
        self._m_tx_messages.inc()
        self._m_tx_bytes.inc(message.nbytes)
        cls_messages, cls_bytes = self._m_tx_class[message.msg_type]
        cls_messages.inc()
        cls_bytes.inc(message.nbytes)
        self.trace.emit(
            self.sim.now,
            "diffusion.tx",
            node=self.node_id,
            nbytes=message.nbytes,
            msg_type=message.msg_type.name,
            next_hop=message.next_hop,
            trace=message.trace_id,
            hops=message.hop_count,
        )
        if self.transport is not None:
            self.transport.send_message(message, message.nbytes, message.next_hop)

    def _on_network_message(self, message: Message, src: int, nbytes: int) -> None:
        if not isinstance(message, Message):
            return
        self.stats.messages_received += 1
        self._m_rx_messages.inc()
        self.trace.emit(
            self.sim.now,
            "diffusion.rx",
            node=self.node_id,
            nbytes=nbytes,
            msg_type=message.msg_type.name,
            src=src,
            trace=message.trace_id,
            hops=message.hop_count,
        )
        incoming = replace(message, last_hop=src)
        self._run_pipeline(incoming)

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------

    def _schedule_sweep(self) -> None:
        self._sweep_event = self.sim.schedule(
            30.0, self._sweep, name="diffusion.sweep"
        )

    def _sweep(self) -> None:
        self.gradients.sweep(self.sim.now)
        self._schedule_sweep()

    def shutdown(self) -> None:
        """Cancel timers (node failure injection / end of experiment)."""
        if self._sweep_event is not None:
            self._sweep_event.cancel()
        for sub in self.subscriptions.values():
            if sub.periodic_event is not None:
                sub.periodic_event.cancel()
        if self.forward_policy is not None:
            self.forward_policy.shutdown()

    def reboot(self) -> None:
        """Come back from a power cycle with soft state lost.

        Gradients and the duplicate cache live in RAM on a real mote, so
        a reboot wipes them; subscriptions and publications are the
        *application's* configuration and survive (the app restarts with
        the same tasks).  Repair must come from protocol traffic:
        restarted interest flooding rebuilds this node's entries, and
        upstream exploratory data re-discovers it.
        """
        self.shutdown()
        self.gradients = GradientTable()
        self.cache = DataCache(
            capacity=self.config.cache_capacity,
            timeout=self.config.cache_timeout,
        )
        # Coherence checkpoint: monitors verify the wipe at this instant,
        # before re-subscription repopulates the table.
        self.trace.emit(self.sim.now, "node.reboot", node=self.node_id)
        for sub in self.subscriptions.values():
            sub.entry = self.gradients.entry_for(sub.attrs)
            sub.entry.local_sink = True
        for pub in self.publications.values():
            pub.last_exploratory = None
        self._schedule_sweep()
        if not self.config.push_mode:
            for sub in self.subscriptions.values():
                self._originate_interest(sub)
        if self.forward_policy is not None:
            # Cluster/rendezvous state is soft too: the policy restarts
            # with empty neighbor tables and re-arms its timers.
            self.forward_policy.restart()
