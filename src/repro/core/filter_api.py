"""The filter API (paper Figure 5).

A filter is a callback registered with an attribute match spec and a
priority.  When a message enters the node, matching filters run from
highest to lowest priority; each filter decides whether processing
continues by calling ``send_message`` (continue down the pipeline) or
``send_message_to_next`` (skip straight to the network), or by doing
nothing (the message dies).  The diffusion core's own routing logic is
itself a filter at :data:`GRADIENT_FILTER_PRIORITY`, so applications
can interpose above or below it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from repro.naming import AttributeVector, fast_one_way_match

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.messages import Message

#: priority of the built-in gradient (routing) filter; application
#: filters above this value see messages before routing, below after.
GRADIENT_FILTER_PRIORITY = 80

_handle_counter = itertools.count(1)


@dataclass(frozen=True)
class FilterHandle:
    """Opaque identifier returned by ``add_filter``."""

    handle_id: int
    priority: int


@dataclass
class Filter:
    """One registered filter."""

    attrs: AttributeVector
    priority: int
    callback: Callable[["Message", FilterHandle], None]
    handle: Optional[FilterHandle] = field(default=None)
    name: str = ""

    def __post_init__(self) -> None:
        if self.handle is None:
            self.handle = FilterHandle(next(_handle_counter), self.priority)
        if not 1 <= self.priority <= 254:
            raise ValueError("filter priority must be within [1, 254]")

    def matches(self, message: "Message") -> bool:
        """Filter attrs one-way match the message's effective attributes.

        The message side contributes the implicit ``class IS <type>``
        actual so filters can select interests vs data.  Runs on the
        fast-path matcher: the filter's formal key-set is precomputed
        once on its (immutable) attribute vector, so non-matching
        messages are usually rejected by a frozenset subset test
        before any value comparison.
        """
        return fast_one_way_match(self.attrs, message.matching_attrs())
