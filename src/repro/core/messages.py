"""Diffusion messages.

Every message carries an attribute vector plus a small fixed header:
message class, a per-origin unique id (for duplicate suppression and
loop prevention), and hop-by-hop link addressing.  Nodes never use
end-to-end addresses — ``last_hop``/``next_hop`` name immediate
neighbors only (paper Section 3.1).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.naming import AttributeVector, encoded_size
from repro.naming.attribute import Attribute, Operator, ValueType
from repro.naming.keys import ClassValue, Key

#: link-layer broadcast marker for ``next_hop``
BROADCAST = None


class MessageType(enum.IntEnum):
    """Protocol-level message classes."""

    INTEREST = 1
    DATA = 2
    EXPLORATORY_DATA = 3
    POSITIVE_REINFORCEMENT = 4
    NEGATIVE_REINFORCEMENT = 5
    CONTROL = 6

    @property
    def class_value(self) -> ClassValue:
        """The implicit ``class IS ...`` attribute value for matching."""
        return {
            MessageType.INTEREST: ClassValue.INTEREST,
            MessageType.DATA: ClassValue.DATA,
            MessageType.EXPLORATORY_DATA: ClassValue.EXPLORATORY,
            MessageType.POSITIVE_REINFORCEMENT: ClassValue.REINFORCEMENT,
            MessageType.NEGATIVE_REINFORCEMENT: ClassValue.NEGATIVE_REINFORCEMENT,
            MessageType.CONTROL: ClassValue.CONTROL,
        }[self]

    @property
    def is_data(self) -> bool:
        return self in (MessageType.DATA, MessageType.EXPLORATORY_DATA)


_msg_counter = itertools.count(1)


@dataclass
class Message:
    """One diffusion message.

    ``msg_id`` is unique per origin node; together with ``origin`` it
    identifies the message network-wide for duplicate suppression.
    ``data_origin``/``data_seq`` survive forwarding unchanged and
    identify the original data message a reinforcement refers to.
    """

    msg_type: MessageType
    attrs: AttributeVector
    origin: int                       # node that created this message
    msg_id: int = 0                   # per-origin unique id
    last_hop: Optional[int] = None    # filled on reception
    next_hop: Optional[int] = BROADCAST
    # For reinforcements: which (interest, source) pair they concern.
    interest_digest: Optional[bytes] = None
    data_origin: Optional[int] = None
    # Push diffusion: the stable publication signature this data message
    # advertises (None for classic pull-mode data).
    push_attrs: Optional[AttributeVector] = None
    header_bytes: int = 24
    padding_bytes: int = 0            # explicit size padding (test harnesses)
    # Causal-tracing context: forwarding preserves identity (the trace
    # id) while counting hops; messages created *in response* to
    # another (per-hop reinforcements, data answering an interest) name
    # their trigger's trace id so offline analysis can walk the chain.
    hop_count: int = 0
    parent_trace: Optional[str] = None
    # Lazily-built ``attrs + class IS <type>`` vector; every filter in
    # the pipeline consults it, so it is computed at most once per
    # message object (forwarded copies rebuild it on demand).
    _matching_attrs: Optional[AttributeVector] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.msg_id == 0:
            self.msg_id = next(_msg_counter)

    @property
    def unique_id(self) -> Tuple[int, int]:
        return (self.origin, self.msg_id)

    @property
    def trace_id(self) -> str:
        """Network-wide stable identity of this message for tracing.

        Derived from ``(origin, msg_id)``, so every forwarded copy of a
        message shares one trace id and the path tools can stitch its
        hops back together from a recorded trace.
        """
        return f"{self.origin}.{self.msg_id}"

    @property
    def nbytes(self) -> int:
        """Bytes this message occupies on the wire."""
        return self.header_bytes + encoded_size(list(self.attrs)) + self.padding_bytes

    def matching_attrs(self) -> AttributeVector:
        """Attributes used for filter matching: payload attrs plus the
        implicit ``class IS <type>`` actual (paper Section 3.2)."""
        cached = self._matching_attrs
        if cached is None:
            class_attr = Attribute(
                int(Key.CLASS),
                ValueType.INT32,
                Operator.IS,
                int(self.msg_type.class_value),
            )
            cached = self.attrs.with_attribute(class_attr)
            self._matching_attrs = cached
        return cached

    def forwarded_copy(self, next_hop: Optional[int]) -> "Message":
        """A copy for retransmission: same identity, new next hop."""
        return replace(self, next_hop=next_hop, hop_count=self.hop_count + 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Message {self.msg_type.name} id={self.unique_id} "
            f"from={self.last_hop} to={self.next_hop} {self.nbytes}B>"
        )


def make_interest(
    attrs: AttributeVector, origin: int, header_bytes: int = 24
) -> Message:
    return Message(
        msg_type=MessageType.INTEREST,
        attrs=attrs,
        origin=origin,
        header_bytes=header_bytes,
    )


def make_control(
    attrs: AttributeVector, origin: int, header_bytes: int = 24
) -> Message:
    """A control-plane message (hierarchy announcements and the like).

    Control messages never match data subscriptions (their implicit
    class is ``CONTROL``) and the gradient core ignores them; they exist
    for protocol layers that install their own filters, and they are
    accounted separately in the per-class traffic counters.
    """
    return Message(
        msg_type=MessageType.CONTROL,
        attrs=attrs,
        origin=origin,
        header_bytes=header_bytes,
    )


def make_data(
    attrs: AttributeVector,
    origin: int,
    exploratory: bool,
    header_bytes: int = 24,
    padding_bytes: int = 0,
    push_attrs: Optional[AttributeVector] = None,
) -> Message:
    msg_type = MessageType.EXPLORATORY_DATA if exploratory else MessageType.DATA
    return Message(
        msg_type=msg_type,
        attrs=attrs,
        origin=origin,
        data_origin=origin,
        header_bytes=header_bytes,
        padding_bytes=padding_bytes,
        push_attrs=push_attrs,
    )


def make_reinforcement(
    positive: bool,
    interest_attrs: AttributeVector,
    interest_digest: bytes,
    data_origin: int,
    origin: int,
    next_hop: int,
    header_bytes: int = 24,
    parent_trace: Optional[str] = None,
) -> Message:
    msg_type = (
        MessageType.POSITIVE_REINFORCEMENT
        if positive
        else MessageType.NEGATIVE_REINFORCEMENT
    )
    return Message(
        msg_type=msg_type,
        attrs=interest_attrs,
        origin=origin,
        next_hop=next_hop,
        interest_digest=interest_digest,
        data_origin=data_origin,
        header_bytes=header_bytes,
        parent_trace=parent_trace,
    )
