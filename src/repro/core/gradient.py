"""Gradient state (paper Section 3.1).

"To each such neighbor, it sets up a gradient.  A gradient represents
both the direction towards which data matching an interest flows, and
the status of that demand."

The table is keyed by interest digest.  Each entry tracks:

* plain gradients — one per neighbor the interest arrived from, with an
  expiry refreshed by interest re-floods;
* reinforced gradients — per (data origin, neighbor) pairs created by
  positive reinforcement, used to forward non-exploratory data;
* upstream pointers — per data origin, the neighbor that delivered the
  first copy of the newest exploratory message, along which
  reinforcements propagate toward that source.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.naming import AttributeVector, MatchIndex


@dataclass
class Gradient:
    """Demand from one neighbor for one interest."""

    neighbor: int
    expires_at: float
    interval: Optional[float] = None  # requested data interval, if any

    def active(self, now: float) -> bool:
        return self.expires_at > now


@dataclass
class ReinforcedGradient:
    """A reinforced downstream hop for (interest, data origin)."""

    neighbor: int
    data_origin: int
    expires_at: float

    def active(self, now: float) -> bool:
        return self.expires_at > now


@dataclass
class UpstreamPointer:
    """Where the newest exploratory data for a given origin came from.

    ``neighbors`` lists every neighbor that delivered a copy of the
    current generation, in arrival order; the first is the preferred
    (lowest-latency) one.  Multipath reinforcement uses the rest.
    """

    neighbor: Optional[int]      # None when this node is the origin itself
    exploratory_id: Tuple[int, int]
    heard_at: float
    neighbors: List[Optional[int]] = field(default_factory=list)


class InterestEntry:
    """All state for one distinct interest."""

    def __init__(self, digest: bytes, attrs: AttributeVector) -> None:
        self.digest = digest
        self.attrs = attrs
        self.gradients: Dict[int, Gradient] = {}
        # (data_origin, neighbor) -> ReinforcedGradient
        self.reinforced: Dict[Tuple[int, int], ReinforcedGradient] = {}
        # data_origin -> UpstreamPointer
        self.upstream: Dict[int, UpstreamPointer] = {}
        # data_origin -> neighbors this node (as a sink) last reinforced
        self.sink_preferred: Dict[int, List[int]] = {}
        self.last_refresh: float = 0.0
        self.local_sink = False       # a local subscription created this
        # data origins whose routes negative reinforcement tore down and
        # positive reinforcement has not since restored — lets the loss
        # attribution distinguish "path deliberately withdrawn" from
        # "path never established".
        self.torn_down: set = set()

    # -- gradients -----------------------------------------------------------

    def update_gradient(
        self, neighbor: int, now: float, timeout: float, interval: Optional[float] = None
    ) -> Gradient:
        gradient = self.gradients.get(neighbor)
        if gradient is None:
            gradient = Gradient(neighbor=neighbor, expires_at=now + timeout,
                                interval=interval)
            self.gradients[neighbor] = gradient
        else:
            gradient.expires_at = now + timeout
            if interval is not None:
                gradient.interval = interval
        self.last_refresh = now
        return gradient

    def active_gradient_neighbors(self, now: float) -> List[int]:
        return sorted(
            neighbor
            for neighbor, gradient in self.gradients.items()
            if gradient.active(now)
        )

    def has_demand(self, now: float) -> bool:
        """Anyone (local or remote) still asking for this data?"""
        if self.local_sink:
            return True
        return any(g.active(now) for g in self.gradients.values())

    # -- reinforcement ----------------------------------------------------------

    def reinforce(
        self, data_origin: int, neighbor: int, now: float, timeout: float
    ) -> ReinforcedGradient:
        key = (data_origin, neighbor)
        self.torn_down.discard(data_origin)
        entry = self.reinforced.get(key)
        if entry is None:
            entry = ReinforcedGradient(
                neighbor=neighbor, data_origin=data_origin, expires_at=now + timeout
            )
            self.reinforced[key] = entry
        else:
            entry.expires_at = now + timeout
        return entry

    def unreinforce(self, data_origin: int, neighbor: int) -> bool:
        removed = self.reinforced.pop((data_origin, neighbor), None) is not None
        if removed:
            self.torn_down.add(data_origin)
        return removed

    def was_torn_down(self, data_origin: int) -> bool:
        return data_origin in self.torn_down

    def reinforced_neighbors(self, data_origin: int, now: float) -> List[int]:
        return sorted(
            entry.neighbor
            for (origin, _), entry in self.reinforced.items()
            if origin == data_origin and entry.active(now)
        )

    def any_reinforced(self, now: float) -> bool:
        return any(entry.active(now) for entry in self.reinforced.values())

    # -- upstream tracking --------------------------------------------------------

    def note_exploratory(
        self,
        data_origin: int,
        exploratory_id: Tuple[int, int],
        neighbor: Optional[int],
        now: float,
    ) -> bool:
        """Record a copy of an exploratory message.

        Returns True when this copy started a new generation (it was
        the first to arrive); later copies of the same generation are
        appended to the pointer's neighbor list for multipath use.
        """
        pointer = self.upstream.get(data_origin)
        if pointer is not None and pointer.exploratory_id == exploratory_id:
            if neighbor not in pointer.neighbors:
                pointer.neighbors.append(neighbor)
            return False
        self.upstream[data_origin] = UpstreamPointer(
            neighbor=neighbor,
            exploratory_id=exploratory_id,
            heard_at=now,
            neighbors=[neighbor],
        )
        return True

    def upstream_neighbors(self, data_origin: int) -> List[Optional[int]]:
        """All neighbors that delivered the newest generation, in
        arrival order (first = preferred)."""
        pointer = self.upstream.get(data_origin)
        return list(pointer.neighbors) if pointer is not None else []

    def upstream_neighbor(self, data_origin: int) -> Optional[int]:
        pointer = self.upstream.get(data_origin)
        return pointer.neighbor if pointer is not None else None

    # -- housekeeping ---------------------------------------------------------------

    def sweep(self, now: float) -> None:
        """Drop expired gradients and reinforcements.

        The periodic sweep usually finds nothing expired, so the dicts
        are only rebuilt when at least one entry actually lapsed.
        """
        if any(not g.active(now) for g in self.gradients.values()):
            self.gradients = {
                n: g for n, g in self.gradients.items() if g.active(now)
            }
        if any(not r.active(now) for r in self.reinforced.values()):
            self.reinforced = {
                k: r for k, r in self.reinforced.items() if r.active(now)
            }


class GradientTable:
    """All interest entries known at one node."""

    #: bound on the data-digest -> candidate-entries memo
    DATA_MEMO_CAPACITY = 1024

    def __init__(self, match_index: Optional[MatchIndex] = None) -> None:
        self._entries: Dict[bytes, InterestEntry] = {}
        #: memoizing fast-path matcher for the per-data-message
        #: forwarding decision (see :mod:`repro.naming.engine`).
        self.match_index = match_index if match_index is not None else MatchIndex()
        # Second memo level: data digest -> entries whose formals the
        # data satisfies, regardless of demand (matching is
        # time-independent; demand is filtered per lookup).  Cleared on
        # any entry add/remove, which is rare next to data traffic.
        self._data_memo: "OrderedDict[bytes, Tuple[InterestEntry, ...]]" = (
            OrderedDict()
        )
        self.data_memo_hits = 0
        self.data_memo_misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[InterestEntry]:
        return list(self._entries.values())

    def entry_for(self, attrs: AttributeVector) -> InterestEntry:
        """Get or create the entry for an interest's attribute vector."""
        digest = attrs.digest()
        entry = self._entries.get(digest)
        if entry is None:
            entry = InterestEntry(digest=digest, attrs=attrs)
            self._entries[digest] = entry
            self.match_index.invalidate(digest)
            self._data_memo.clear()
        return entry

    def get(self, digest: bytes) -> Optional[InterestEntry]:
        return self._entries.get(digest)

    def matching_data(
        self, data_attrs: AttributeVector, now: float
    ) -> List[InterestEntry]:
        """Entries whose interest formals are satisfied by this data.

        The in-network forwarding decision: interest -> data one-way
        match, restricted to entries that still have active demand.
        Verdicts are identical to the Figure 2 reference scan; the cost
        is not.  Steady-state lookups are one dict probe: the candidate
        entry set per data digest is memoized (matching is independent
        of time), and only the cheap demand filter runs per message.
        Cold lookups fall back to the per-pair memoizing
        :class:`~repro.naming.engine.MatchIndex`.
        """
        digest = data_attrs.digest()
        memo = self._data_memo
        cached = memo.get(digest)
        if cached is None:
            self.data_memo_misses += 1
            index = self.match_index
            cached = tuple(
                entry
                for entry in self._entries.values()
                if index.one_way(entry.attrs, data_attrs)
            )
            memo[digest] = cached
            if len(memo) > self.DATA_MEMO_CAPACITY:
                memo.popitem(last=False)
        else:
            self.data_memo_hits += 1
            memo.move_to_end(digest)
        return [entry for entry in cached if entry.has_demand(now)]

    def entries_with_demand(self, now: float) -> List[InterestEntry]:
        """Entries some sink still wants (local, or an active gradient).

        Used by the hierarchy layer: a freshly elected cluster head
        re-floods the interests it knows are still demanded, so the
        backbone repairs immediately instead of waiting for the next
        sink-side interest refresh.
        """
        return [
            entry
            for entry in self._entries.values()
            if entry.has_demand(now)
        ]

    def sweep(self, now: float) -> None:
        """Expire gradients; drop entries with no state left at all."""
        dead = []
        for digest, entry in self._entries.items():
            entry.sweep(now)
            if (
                not entry.local_sink
                and not entry.gradients
                and not entry.reinforced
            ):
                dead.append(digest)
        for digest in dead:
            del self._entries[digest]
            self.match_index.invalidate(digest)
        if dead:
            self._data_memo.clear()
