"""Duplicate-suppression / loop-prevention cache.

"The core diffusion mechanism uses the cache to suppress duplicate
messages and prevent loops" (Section 3.1).  Entries are message
identities (origin, msg_id); capacity-bounded FIFO with time expiry so
micro-diffusion can run it in a 10-entry footprint.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable


class DataCache:
    """Bounded seen-set with per-entry expiry."""

    def __init__(self, capacity: int = 512, timeout: float = 60.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.timeout = timeout
        self._entries: "OrderedDict[Hashable, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def seen_before(self, key: Hashable, now: float) -> bool:
        """Check-and-insert: True when ``key`` was already cached.

        Inserting on miss is the common case for loop prevention, so the
        two operations are fused.
        """
        expiry = self._entries.get(key)
        if expiry is not None and expiry > now:
            self.hits += 1
            self._entries.move_to_end(key)
            return True
        self.misses += 1
        self._entries[key] = now + self.timeout
        self._entries.move_to_end(key)
        self._evict(now)
        return False

    def contains(self, key: Hashable, now: float) -> bool:
        """Pure lookup without insertion."""
        expiry = self._entries.get(key)
        return expiry is not None and expiry > now

    def insert(self, key: Hashable, now: float) -> None:
        self._entries[key] = now + self.timeout
        self._entries.move_to_end(key)
        self._evict(now)

    def _evict(self, now: float) -> None:
        # Drop expired entries first, then oldest beyond capacity.
        expired = [k for k, exp in self._entries.items() if exp <= now]
        for key in expired:
            del self._entries[key]
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
