"""Deterministic scenarios the sharded kernel can run and verify.

A shard scenario is a recipe every worker evaluates independently: the
*same* topology and move schedule on every shard (geometry is global —
a foreign node's movement changes what an owned node hears), but node
stacks, traffic sources, and sinks built only for the shard's *owned*
subset.  Per-node RNG streams are derived by label
(:class:`~repro.sim.rng.SeedSequence`), so a subset build consumes
exactly the streams those nodes would consume in a whole-network build
— which is what makes the single-queue oracle and the sharded runs
comparable event-for-event.

Scenarios always build their channels with ``loss_mode="hashed"``: the
default stream mode draws loss uniforms in global finalization order,
which no partitioned execution can reproduce, while hashed draws are a
pure function of (seed, src, dst, airtime start).

The ``outcome`` of a run is a plain dict designed to merge across
shards (ints/floats sum, lists concatenate, dicts recurse — see
:func:`repro.shard.runner.merge_outcomes`) and to compare exactly
against the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core import DiffusionConfig
from repro.mac import CsmaMac
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.radio import (
    Channel,
    DistancePropagation,
    Modem,
    Topology,
    vectorize,
)
from repro.sim import SeedSequence, Simulator
from repro.testbed import SensorNetwork

#: (time, node, new_x, new_y) — one topology move.
Move = Tuple[float, int, float, float]


@dataclass
class ShardNet:
    """Everything the shard runtime needs from one built scenario."""

    sim: Simulator
    channel: Channel
    propagation: Any
    topology: Topology
    macs: Dict[int, CsmaMac]
    outcome: Callable[[], Dict[str, Any]]
    extra: Dict[str, Any] = field(default_factory=dict)


class Scenario:
    """One deterministic workload, buildable whole or per shard."""

    name = "?"

    def topology(self, params: Dict[str, Any]) -> Topology:
        raise NotImplementedError

    def move_schedule(
        self, params: Dict[str, Any], topology: Topology
    ) -> List[Move]:
        """Mobility, identical on every shard; default static."""
        return []

    def build(
        self,
        topology: Topology,
        owned: List[int],
        params: Dict[str, Any],
        seed: int,
    ) -> ShardNet:
        raise NotImplementedError


def _channel_outcome(channel: Channel) -> Dict[str, int]:
    return {
        "sent": channel.fragments_sent,
        "delivered": channel.fragments_delivered,
        "collided": channel.fragments_collided,
        "lost": channel.fragments_lost,
    }


class FloodScenario(Scenario):
    """Every node beacons through its CSMA MAC; no upper layers.

    The densest channel workload per simulated second, and the purest
    test of cross-shard physics: almost every fragment near a cut must
    collide, capture, and carrier-block identically on both sides.
    """

    name = "flood"

    def topology(self, params: Dict[str, Any]) -> Topology:
        return Topology.grid(
            int(params.get("columns", 10)),
            int(params.get("rows", 5)),
            spacing=float(params.get("spacing", 26.0)),
        )

    def build(self, topology, owned, params, seed) -> ShardNet:
        interval = float(params.get("interval", 0.5))
        sim = Simulator()
        seeds = SeedSequence(seed)
        propagation = DistancePropagation(topology, seed=seed)
        # params["vectorized"]: opt into the numpy batch engine.  Safe on
        # any worker — without numpy the wrapper is inert and the scalar
        # fast path runs, bit-identically (hashed draws are engine-free).
        if params.get("vectorized"):
            propagation = vectorize(propagation)
        channel = Channel(
            sim, propagation, seeds=seeds, loss_mode="hashed"
        )
        heard = [0]

        def on_receive(payload, src, nbytes, link_dst):
            heard[0] += 1

        macs: Dict[int, CsmaMac] = {}
        for node_id in owned:
            modem = Modem(sim, channel, node_id)
            modem.receive_callback = on_receive
            macs[node_id] = CsmaMac(
                sim, modem, rng=seeds.stream(f"mac:{node_id}")
            )

        def beacon_tick(node_id, rng):
            macs[node_id].enqueue(("beacon", node_id), 27)
            sim.schedule(
                interval * (0.5 + rng.random()), beacon_tick, node_id, rng,
                name="beacon",
            )

        for node_id in owned:
            rng = seeds.stream(f"beacon:{node_id}")
            sim.schedule(
                rng.random() * interval, beacon_tick, node_id, rng,
                name="beacon",
            )

        def outcome() -> Dict[str, Any]:
            result = _channel_outcome(channel)
            result["heard"] = heard[0]
            return result

        return ShardNet(sim, channel, propagation, topology, macs, outcome)


class MobilityFloodScenario(FloodScenario):
    """Flood plus nodes marching across the middle of the deployment.

    The movers cross the natural shard cut mid-run, so boundary sets,
    frontier membership, and audibility all churn — the scenario the
    epoch-invalidation machinery exists for.
    """

    name = "mobility"

    def move_schedule(self, params, topology) -> List[Move]:
        columns = int(params.get("columns", 10))
        rows = int(params.get("rows", 5))
        spacing = float(params.get("spacing", 26.0))
        movers = int(params.get("movers", 2))
        steps = int(params.get("move_steps", 4))
        start = float(params.get("move_start", 5.0))
        step_dt = float(params.get("move_interval", 3.0))
        moves: List[Move] = []
        # Leftmost-column nodes walk east across the whole deployment,
        # one column per step past the midline.
        ids = topology.node_ids()
        for m in range(min(movers, rows)):
            node = ids[m * columns]  # column 0 of row m
            y = topology.position(node).y
            for s in range(1, steps + 1):
                x = spacing * (columns - 1) * s / steps
                moves.append((start + (s - 1) * step_dt + m * 0.7, node, x, y))
        return moves


#: compressed diffusion timers so a short run exercises interest
#: flooding, reinforcement, and steady-state forwarding.
DIFFUSION_CONFIG = DiffusionConfig(
    interest_interval=8.0,
    interest_jitter=0.3,
    exploratory_interval=8.0,
    gradient_timeout=25.0,
    reinforced_timeout=20.0,
)


class DiffusionScenario(Scenario):
    """Full stack: corner sources stream to a corner sink.

    The multihop path crosses every shard cut, so application delivery
    depends on ghost fragments carrying real payloads across shards and
    being reassembled and routed on the far side.
    """

    name = "diffusion"

    def topology(self, params: Dict[str, Any]) -> Topology:
        return Topology.grid(
            int(params.get("columns", 10)),
            int(params.get("rows", 5)),
            spacing=float(params.get("spacing", 18.0)),
        )

    def _pairs(
        self, params: Dict[str, Any], topology: Topology
    ) -> List[Tuple[int, int, str]]:
        """(source, sink, tag) workload triples."""
        columns = int(params.get("columns", 10))
        rows = int(params.get("rows", 5))
        n = columns * rows
        return [
            (n - 1, 0, "diffbench"),
            (columns - 1, 0, "diffbench"),
        ]

    def build(self, topology, owned, params, seed) -> ShardNet:
        duration = float(params.get("duration", 30.0))
        send_interval = float(params.get("send_interval", 0.5))
        owned_set = set(owned)
        net = SensorNetwork(
            topology,
            config=DIFFUSION_CONFIG,
            seed=seed,
            loss_mode="hashed",
            channel_vectorized=bool(params.get("vectorized")),
            nodes=owned,
        )
        delivered: List[float] = []
        for source, sink, tag in self._pairs(params, topology):
            if sink in owned_set:
                sub = (
                    AttributeVector.builder().eq(Key.TYPE, tag).build()
                )
                net.api(sink).subscribe(
                    sub,
                    lambda attrs, msg: delivered.append(net.sim.now),
                )
            if source in owned_set:
                pub = net.api(source).publish(
                    AttributeVector.builder().actual(Key.TYPE, tag).build()
                )
                sends = int((duration - 2.0) / send_interval)
                for i in range(sends):
                    net.sim.schedule(
                        2.0 + i * send_interval,
                        net.api(source).send,
                        pub,
                        AttributeVector.builder()
                        .actual(Key.SEQUENCE, i)
                        .build(),
                    )

        def outcome() -> Dict[str, Any]:
            return {
                "channel": _channel_outcome(net.channel),
                "app_delivered": len(delivered),
                "delivery_times": sorted(delivered),
                "diffusion_messages": net.total_diffusion_messages_sent(),
            }

        return ShardNet(
            net.sim, net.channel, net.propagation, topology,
            {nid: net.stack(nid).mac for nid in owned}, outcome,
            extra={"network": net},
        )


class RegionalDiffusionScenario(DiffusionScenario):
    """Scattered local source→sink pairs: the scale workload.

    Each pair lives inside one region of the grid a few hops across, so
    traffic is everywhere but mostly local — the deployment shape the
    paper argues sensor networks take (many concurrent local tasks),
    and the one where a spatial cut pays: each shard carries its own
    regions' load and only region-straddling paths cross the cut.
    """

    name = "regional"

    def _pairs(self, params, topology) -> List[Tuple[int, int, str]]:
        columns = int(params.get("columns", 32))
        rows = int(params.get("rows", 32))
        region = int(params.get("region", 8))
        pairs: List[Tuple[int, int, str]] = []
        k = 0
        for base_row in range(0, rows - region + 1, region):
            for base_col in range(0, columns - region + 1, region):
                # Source near one region corner, sink a few hops away
                # toward the opposite corner.
                src = (base_row + 1) * columns + (base_col + 1)
                dst = (base_row + region - 2) * columns + (
                    base_col + region - 2
                )
                pairs.append((src, dst, f"region{k}"))
                k += 1
        return pairs


class HierarchyScenario(RegionalDiffusionScenario):
    """The regional workload under a selectable propagation mode.

    ``params["mode"]`` picks flat / clustered / rendezvous;
    ``params["hierarchy"]`` carries :class:`~repro.hierarchy.
    HierarchyParams` overrides.  Flat mode installs nothing, so its
    outcome is bit-identical to :class:`RegionalDiffusionScenario` on
    the same params — the equivalence gate the hierarchy CI relies on.
    The outcome adds per-message-class traffic and hierarchy counters,
    all merge-friendly (ints sum, nested dicts recurse).
    """

    name = "hierarchy"

    def build(self, topology, owned, params, seed) -> ShardNet:
        from repro.core.node import MESSAGE_CLASS_LABELS
        from repro.hierarchy import install_hierarchy

        shardnet = super().build(topology, owned, params, seed)
        net = shardnet.extra["network"]
        mode = str(params.get("mode", "flat"))
        runtime = install_hierarchy(
            net, mode=mode, params=params.get("hierarchy")
        )
        shardnet.extra["hierarchy"] = runtime
        base_outcome = shardnet.outcome

        def outcome() -> Dict[str, Any]:
            result = base_outcome()
            by_class_msgs: Dict[str, int] = {}
            by_class_bytes: Dict[str, int] = {}
            for nid in net.node_ids():
                stats = net.node(nid).stats
                for msg_type, label in MESSAGE_CLASS_LABELS.items():
                    by_class_msgs[label] = (
                        by_class_msgs.get(label, 0)
                        + stats.messages_by_type[msg_type]
                    )
                    by_class_bytes[label] = (
                        by_class_bytes.get(label, 0)
                        + stats.bytes_by_type[msg_type]
                    )
            result["messages_by_class"] = by_class_msgs
            result["bytes_by_class"] = by_class_bytes
            result["hierarchy"] = runtime.counters()
            return result

        shardnet.outcome = outcome
        return shardnet


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        FloodScenario(),
        MobilityFloodScenario(),
        DiffusionScenario(),
        RegionalDiffusionScenario(),
        HierarchyScenario(),
    )
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown shard scenario {name!r}; have {sorted(SCENARIOS)}"
        ) from None
