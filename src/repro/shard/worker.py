"""Shard runtime: one spatial shard under conservative synchronization.

A :class:`ShardRuntime` owns one shard's :class:`~repro.sim.Simulator`
and :class:`~repro.radio.Channel`, built by a scenario for the shard's
owned node subset against the *global* topology.  Execution alternates
windows and exchanges:

1. **Promise.**  After each window the shard computes the earliest
   simulation time at which it could possibly start a transmission some
   foreign node hears.  Three terms, each a lower bound by the MAC
   timing contract (every ``channel.start_transmission`` happens inside
   a ``csma.attempt``/``csma.backoff`` event, and every new attempt is
   scheduled at least ``interframe_gap`` after its trigger):

   * the earliest queued attempt event of a *frontier* node (a node
     some foreign node can hear, per
     :class:`~repro.radio.neighborhood.BoundaryIndex`) — it may
     transmit at its own timestamp;
   * the earliest unexecuted topology move — after a move the frontier
     itself is stale, so no window may cross one (moves are globally
     pre-scheduled, so every shard promises the same barrier);
   * the earliest queued event of any kind plus the lookahead — any
     *other* event can only trigger an attempt at least one interframe
     gap later.

2. **Exchange.**  Shards swap ``(promise, outbox)`` all-to-all and each
   computes the identical next horizon ``H = min(all promises, min
   over exported transmissions of end-of-airtime + lookahead,
   duration)``.  The second term covers influence that is in flight but
   not yet injected: a ghost's earliest downstream transmission follows
   its delivery at end-of-airtime by at least the lookahead.

3. **Inject.**  Foreign transmissions audible to some owned node are
   scheduled at their exact start times as ghost admissions
   (:meth:`~repro.radio.channel.Channel.admit_remote_transmission`)
   with priority ``-1`` so they precede same-instant local events.

4. **Window.**  Every shard runs to ``H`` — exclusively, unless its own
   promise equals ``H`` (then inclusively: it owns the earliest
   potential boundary transmission, and executing it is what guarantees
   global progress).  Transmissions by frontier nodes are captured via
   the channel's ``on_transmission`` hook into the next outbox.

When ``H`` reaches the trial duration, all promises are ≥ duration —
no shard can transmit across any cut again within the horizon — and
every shard finishes independently with one inclusive window.

The protocol is exact, not approximate: outcomes match the single-queue
oracle event-for-event, up to cross-shard events scheduled at exactly
equal floating-point times (jittered per-node delays make such ties
measure-zero; tests/test_shard_equivalence.py asserts exact equality on
seeded scenarios).
"""

from __future__ import annotations

import heapq
import itertools
import math
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

import repro.core.messages as core_messages
from repro.mac import CsmaMac
from repro.radio.neighborhood import BoundaryIndex
from repro.shard.partition import partition_nodes
from repro.shard.scenario import ShardNet, get_scenario
from repro.sim.metrics import current_registry, use_registry

#: event names that may call ``channel.start_transmission`` at their own
#: timestamp; everything else can only do so one interframe gap later.
ATTEMPT_EVENTS = ("csma.attempt", "csma.backoff")

#: consecutive zero-progress rounds before the sync loop declares a
#: stall (a correct run executes at least one event globally per round).
STALL_LIMIT = 10_000


@dataclass(frozen=True)
class ShardPlan:
    """Everything a worker needs to build and run its shard."""

    scenario: str
    params: Dict[str, Any]
    seed: int
    duration: float
    shards: int
    partition: str = "grid"


@dataclass(frozen=True)
class ExportedTx:
    """One boundary transmission crossing shards."""

    src: int
    start: float
    end: float
    nbytes: int
    payload: Any
    link_dst: Optional[int]


@dataclass
class ShardStats:
    """Per-shard accounting reported alongside the merged outcome."""

    rank: int
    owned: int
    rounds: int = 0
    events: int = 0
    exports: int = 0
    ghosts_admitted: int = 0
    ghosts_skipped: int = 0
    boundary_rebuilds: int = 0
    boundary_pair_checks: int = 0
    #: perf_counter seconds spent building and running windows — the
    #: shard's share of the critical path in inline mode.
    busy_seconds: float = 0.0
    #: process mode only: CPU seconds of the whole worker process,
    #: which excludes time blocked on peer pipes — the faithful
    #: per-shard work measure even on an oversubscribed host.
    cpu_seconds: float = 0.0
    wall_seconds: float = 0.0
    #: wall-clock seconds this shard spent waiting at the exchange
    #: barrier for slower peers (process mode: blocked in recv; inline
    #: mode: the round's slowest window minus this shard's own).
    stall_seconds: float = 0.0
    #: bytes of pickled promise/outbox payload sent to peers.
    exchange_bytes: int = 0
    #: window count by the promise term that bound each horizon —
    #: which of the conservative-sync bounds actually paces this shard
    #: ("attempt", "move", "lookahead", "export", "duration", "idle").
    windows_by_term: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        data = dict(vars(self))
        data["windows_by_term"] = dict(self.windows_by_term)
        return data


class ShardRuntime:
    """One shard's simulator plus the bookkeeping for its promises."""

    def __init__(self, plan: ShardPlan, rank: int) -> None:
        if not 0 <= rank < plan.shards:
            raise ValueError(f"rank {rank} outside 0..{plan.shards - 1}")
        build_start = time.perf_counter()
        self.plan = plan
        self.rank = rank
        scenario = get_scenario(plan.scenario)
        topology = scenario.topology(plan.params)
        parts = partition_nodes(
            topology, plan.shards, method=plan.partition, seed=plan.seed
        )
        self.owned: List[int] = parts[rank]
        self.net: ShardNet = scenario.build(
            topology, self.owned, plan.params, plan.seed
        )
        self.sim = self.net.sim
        self.channel = self.net.channel
        self.stats = ShardStats(rank=rank, owned=len(self.owned))
        registry = current_registry()
        self._registry = registry
        self._m_rounds = registry.counter("shard.rounds", shard=rank)
        self._m_exports = registry.counter("shard.exports", shard=rank)
        self._m_ghosts = registry.counter("shard.ghosts_admitted", shard=rank)
        # Profiler instruments: window spans/sizes as distributions (the
        # p95 window span is what tells you whether sync overhead comes
        # from many tiny windows or a few stalls), plus per-term window
        # counts labeled so cross-shard merges keep shards separable.
        self._m_window_span = registry.histogram("shard.window_span", shard=rank)
        self._m_window_events = registry.histogram(
            "shard.window_events", shard=rank
        )
        self._m_stall = registry.gauge("shard.stall_seconds", shard=rank)
        self._m_exchange = registry.counter("shard.exchange_bytes", shard=rank)

        # The MAC timing contract the promise terms rest on.
        lookaheads = []
        for node_id, mac in self.net.macs.items():
            if not isinstance(mac, CsmaMac):
                raise TypeError(
                    f"sharded execution requires CsmaMac everywhere; node "
                    f"{node_id} has {type(mac).__name__}"
                )
            lookaheads.append(min(mac.interframe_gap, mac.min_backoff))
        if not lookaheads:
            raise ValueError(f"shard {rank} built no MACs")
        self.lookahead = min(lookaheads)

        # Globally identical move schedule; priority -2 puts a move
        # ahead of any same-instant traffic (ghosts run at -1).
        self._move_events = [
            self.sim.schedule_at(
                t, self._apply_move, node, x, y,
                name="shard.move", priority=-2,
            )
            for t, node, x, y in sorted(
                scenario.move_schedule(plan.params, topology)
            )
        ]

        self._outbox: List[ExportedTx] = []
        self._attempts: List[Tuple[float, int, Any]] = []
        self._window_horizon = math.inf
        self._window_truncated = False
        if plan.shards > 1:
            owned_set = set(self.owned)
            foreign = [
                n for n in topology.node_ids() if n not in owned_set
            ]
            self.boundary: Optional[BoundaryIndex] = BoundaryIndex(
                self.net.propagation, self.owned, foreign, topology
            )
            self._frontier = self.boundary.boundary_senders()
            self._epoch = self.net.propagation.prr_epoch()
            self.channel.on_transmission = self._on_transmission
            self.sim.set_schedule_observer(self._on_schedule)
            # Catch attempts queued during construction.
            self._rebuild_attempts()
        else:
            self.boundary = None
            self._frontier = set()
        self.stats.busy_seconds += time.perf_counter() - build_start

    # -- hooks ----------------------------------------------------------------

    def _apply_move(self, node: int, x: float, y: float) -> None:
        self.net.topology.move_node(node, x, y)

    def _on_schedule(self, event) -> None:
        if event.name in ATTEMPT_EVENTS:
            mac = getattr(event.callback, "__self__", None)
            if mac is not None and mac.node_id in self._frontier:
                heapq.heappush(
                    self._attempts, (event.time, event.seq, event)
                )

    def _on_transmission(self, tx) -> None:
        if tx.src in self._frontier:
            self._outbox.append(
                ExportedTx(
                    src=tx.src, start=tx.start, end=tx.end,
                    nbytes=tx.nbytes, payload=tx.payload,
                    link_dst=tx.link_dst,
                )
            )
            # Boomerang cap: peers were promised nothing before this
            # round's horizon, but *this* transmission can provoke a
            # foreign reaction as early as its end of airtime plus one
            # lookahead.  If that lands inside the current window, end
            # the window here — the reaction arrives in a later round
            # and the remaining span is re-run under fresh horizons.
            cap = tx.end + self.lookahead
            if cap < self._window_horizon:
                self._window_truncated = True
                self.sim.stop()

    def _rebuild_attempts(self) -> None:
        self._attempts = [
            (event.time, event.seq, event)
            for event in self.sim.pending_events()
            if event.name in ATTEMPT_EVENTS
            and getattr(event.callback, "__self__", None) is not None
            and event.callback.__self__.node_id in self._frontier
        ]
        heapq.heapify(self._attempts)

    def _refresh_boundary(self) -> None:
        """After a window: if geometry moved, recompute the frontier and
        rebuild the attempt bookkeeping (an interior node may have
        become audible across the cut, and its already-queued attempts
        must start counting)."""
        if self.boundary is None:
            return
        epoch = self.net.propagation.prr_epoch()
        if epoch == self._epoch:
            return
        self._epoch = epoch
        self._frontier = self.boundary.boundary_senders()
        self._rebuild_attempts()

    # -- protocol steps -------------------------------------------------------

    def promise(self) -> float:
        """Earliest time this shard could start a boundary transmission."""
        return self.promise_ex()[0]

    def promise_ex(self) -> Tuple[float, str]:
        """The promise plus which term produced it.

        The term names the bound that is actually pacing this shard's
        peers: ``"attempt"`` (a queued frontier attempt event),
        ``"move"`` (the next topology-move barrier), ``"lookahead"``
        (earliest queued event of any kind plus the MAC lookahead), or
        ``"idle"`` (empty queue — the promise is infinite).
        """
        attempts = self._attempts
        while attempts:
            _t, _seq, event = attempts[0]
            # _owner is cleared on dispatch, so this also drops entries
            # that already executed inside the last window.
            if event.cancelled or event._owner is None:
                heapq.heappop(attempts)
                continue
            break
        t_attempt = attempts[0][0] if attempts else math.inf
        moves = self._move_events
        while moves and moves[0]._owner is None:
            moves.pop(0)
        t_move = moves[0].time if moves else math.inf
        peek = self.sim.peek_time()
        t_other = peek + self.lookahead if peek is not None else math.inf
        value = min(t_attempt, t_move, t_other)
        if value is math.inf:
            return value, "idle"
        # Tie-break in specificity order: a frontier attempt is a
        # sharper statement than the generic lookahead bound.
        if value == t_attempt:
            return value, "attempt"
        if value == t_move:
            return value, "move"
        return value, "lookahead"

    def inject(self, records: Iterable[ExportedTx]) -> None:
        """Schedule foreign transmissions as ghost admissions."""
        boundary = self.boundary
        if boundary is None:
            return
        for rec in records:
            if not boundary.listeners_across(rec.src):
                self.stats.ghosts_skipped += 1
                continue
            self.sim.schedule_at(
                rec.start,
                self.channel.admit_remote_transmission,
                rec.src, rec.payload, rec.nbytes, rec.end - rec.start,
                rec.link_dst,
                name="shard.ghost", priority=-1,
            )
            self.stats.ghosts_admitted += 1
            self._m_ghosts.inc()

    def advance(
        self,
        horizon: float,
        inclusive: bool,
        final: bool = False,
        term: str = "peer",
    ) -> Tuple[List[ExportedTx], bool]:
        """Run one window.

        Returns ``(exports, reached)`` — the boundary transmissions the
        window made, and whether it ran all the way to ``horizon``
        (False when the boomerang cap in :meth:`_on_transmission` ended
        it early; a final window that was cut short has NOT finished
        the run and the caller must keep exchanging).

        ``term`` names the promise term that bound ``horizon`` (from
        :func:`next_horizon_ex`); the profiler attributes the window to
        it so a report can say *why* windows were the size they were.
        """
        span = max(0.0, horizon - self.sim.now)
        window_start = time.perf_counter()
        self._window_horizon = horizon
        self._window_truncated = False
        processed = self.sim.run_window(
            horizon, inclusive=inclusive, advance_clock=final
        )
        reached = not self._window_truncated
        self._window_horizon = math.inf
        self.stats.busy_seconds += time.perf_counter() - window_start
        self.stats.rounds += 1
        self.stats.events += processed
        self.stats.windows_by_term[term] = (
            self.stats.windows_by_term.get(term, 0) + 1
        )
        self._m_rounds.inc()
        self._m_window_span.observe(span)
        self._m_window_events.observe(processed)
        self._registry.counter(
            "shard.windows", shard=self.rank, term=term
        ).inc()
        self._refresh_boundary()
        outbox = self._outbox
        self._outbox = []
        self.stats.exports += len(outbox)
        self._m_exports.inc(len(outbox))
        return outbox, reached

    def result(self) -> Dict[str, Any]:
        """Outcome plus shard accounting, after the final window."""
        if self.boundary is not None:
            self.stats.boundary_rebuilds = self.boundary.rebuilds
            self.stats.boundary_pair_checks = self.boundary.pair_checks
        self._m_stall.set(self.stats.stall_seconds)
        self._m_exchange.inc(self.stats.exchange_bytes)
        return {
            "outcome": self.net.outcome(),
            "stats": self.stats.as_dict(),
        }


def next_horizon(
    peer_promises: Iterable[float],
    exports: Iterable[ExportedTx],
    lookahead: float,
    duration: float,
) -> float:
    """One shard's private window horizon for this round.

    Deliberately excludes the shard's *own* promise: a shard's future
    transmissions are events it will simulate itself, so only foreign
    influence bounds its window.  That asymmetry is what lets the
    globally earliest shard batch an entire run of local attempts up to
    the next foreign constraint in one window, instead of the whole
    crew stepping one attempt per round.

    The export term covers influence announced but not yet reacted to:
    promises in this round's messages were computed before this round's
    ghosts were injected anywhere, and a ghost cannot trigger a
    downstream transmission before its airtime ends plus one lookahead.
    """
    horizon, _term = next_horizon_ex(
        ((p, "peer") for p in peer_promises), exports, lookahead, duration
    )
    return horizon


def next_horizon_ex(
    peer_promises: Iterable[Tuple[float, str]],
    exports: Iterable[ExportedTx],
    lookahead: float,
    duration: float,
) -> Tuple[float, str]:
    """:func:`next_horizon` plus *which term bound it*.

    ``peer_promises`` carries ``(value, term)`` pairs as produced by
    :meth:`ShardRuntime.promise_ex`, so when a peer's promise wins, the
    attribution names the peer's own binding term ("attempt", "move",
    "lookahead") rather than an opaque "peer".  The two extra outcomes
    are ``"export"`` (an in-flight boundary transmission bounds the
    window) and ``"duration"`` (nothing constrains the shard before the
    end of the trial — the free-running case).  Ties resolve toward
    the earlier-listed constraint, matching min() semantics.
    """
    horizon = duration
    term = "duration"
    for p, p_term in peer_promises:
        if p < horizon:
            horizon = p
            term = p_term
    for rec in exports:
        bound = rec.end + lookahead
        if bound < horizon:
            horizon = bound
            term = "export"
    return horizon, term


def shard_worker_main(rank, size, peers, plan: ShardPlan):
    """:class:`~repro.campaign.workers.WorkerCrew` entry point.

    Runs the exchange/inject/window loop against all-to-all peer pipes;
    there is no coordinator on the hot path.  Because horizons are
    per-shard, shards finish at different rounds: a finished shard
    keeps exchanging ``(inf, outbox, done=True)`` — its final window's
    exports still matter to slower peers — until every peer has
    reported done, so no pipe is ever left with a blocked reader.
    """
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    # Per-process message-id namespace: ids must be unique per origin
    # network-wide, and shards host disjoint origins, but keeping the
    # namespaces disjoint too makes cross-shard logs unambiguous.
    core_messages._msg_counter = itertools.count(1 + rank * 10 ** 9)
    with use_registry() as registry:
        runtime = ShardRuntime(plan, rank)
        duration = plan.duration
        peer_order = sorted(peers)
        pending: List[ExportedTx] = []
        finalized = False
        peers_done = {r: False for r in peer_order}
        stalled = 0
        last_horizon = -math.inf
        while True:
            promise, my_term = (
                (math.inf, "idle") if finalized else runtime.promise_ex()
            )
            my_exports = pending
            received, recv_wait, sent_bytes = _exchange_all(
                rank, peers, (promise, my_term, pending, finalized)
            )
            # Time blocked in recv is time spent waiting for slower
            # peers — the barrier-stall share of this shard's wall.
            runtime.stats.stall_seconds += recv_wait
            runtime.stats.exchange_bytes += sent_bytes
            pending = []
            for peer_rank, (_p, _t, _outbox, done) in received.items():
                peers_done[peer_rank] = peers_done[peer_rank] or done
            if finalized:
                if all(peers_done.values()):
                    break
                continue
            all_exports = list(my_exports)
            for _p, _t, outbox, _done in received.values():
                all_exports.extend(outbox)
            for peer_rank in peer_order:
                runtime.inject(received[peer_rank][2])
            horizon, bound_term = next_horizon_ex(
                ((received[r][0], received[r][1]) for r in peer_order),
                all_exports, runtime.lookahead, duration,
            )
            if horizon >= duration:
                pending, finalized = runtime.advance(
                    duration, inclusive=True, final=True, term=bound_term
                )
                continue
            if horizon == last_horizon and not all_exports:
                stalled += 1
                if stalled > STALL_LIMIT:
                    raise RuntimeError(
                        f"shard {rank}: conservative sync stalled at "
                        f"t={horizon}"
                    )
            else:
                stalled = 0
            last_horizon = horizon
            pending, _reached = runtime.advance(
                horizon, inclusive=promise <= horizon, term=bound_term
            )
        runtime.stats.cpu_seconds = time.process_time() - cpu_start
        runtime.stats.wall_seconds = time.perf_counter() - wall_start
        result = runtime.result()
        result["metrics"] = registry.snapshot()
        return result


#: eager-exchange cutoff; comfortably below the smallest OS pipe
#: buffer, so firing to every peer before reading cannot block.
_EAGER_SEND_LIMIT = 16384


def _exchange_all(rank, peers, payload):
    """Deadlock-free all-to-all exchange of one pickled message.

    The payload is pickled once.  Small blobs (the overwhelmingly
    common case — a promise and a handful of exports) are fired to
    every peer before any read, so the whole exchange costs each worker
    one wakeup.  Oversized blobs fall back to pairwise rendezvous in
    ascending rank order with the lower rank sending first, which
    cannot cycle even when a send blocks on a full pipe.

    Returns ``(received, recv_wait_seconds, bytes_sent)``: the per-peer
    payloads, the wall-clock spent blocked in ``recv`` (the shard-sync
    profiler's barrier-stall measure — everything this worker computed
    was already done when the waiting started), and the total pickled
    bytes shipped to peers.
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    received = {}
    order = sorted(peers)
    recv_wait = 0.0
    if len(blob) <= _EAGER_SEND_LIMIT:
        for peer_rank in order:
            peers[peer_rank].send_bytes(blob)
        for peer_rank in order:
            waited = time.perf_counter()
            raw = peers[peer_rank].recv_bytes()
            recv_wait += time.perf_counter() - waited
            received[peer_rank] = pickle.loads(raw)
    else:
        for peer_rank in order:
            conn = peers[peer_rank]
            if rank < peer_rank:
                conn.send_bytes(blob)
                waited = time.perf_counter()
                raw = conn.recv_bytes()
                recv_wait += time.perf_counter() - waited
                received[peer_rank] = pickle.loads(raw)
            else:
                waited = time.perf_counter()
                raw = conn.recv_bytes()
                recv_wait += time.perf_counter() - waited
                received[peer_rank] = pickle.loads(raw)
                conn.send_bytes(blob)
    return received, recv_wait, len(blob) * len(order)
