"""Drivers for sharded runs and their single-queue oracle.

Three ways to execute the same :class:`~repro.shard.worker.ShardPlan`:

* :func:`run_oracle` — the whole network in one
  :class:`~repro.sim.Simulator`.  This is the trusted reference: the
  sharded paths exist to reproduce its outcome faster, never to define
  a different one.
* :func:`run_sharded` with ``transport="inline"`` — all shard runtimes
  in the calling process, stepped through the same conservative
  protocol as the process mode.  Deterministic and debuggable; this is
  what the equivalence suite sweeps.
* :func:`run_sharded` with ``transport="process"`` — one OS process
  per shard via :class:`~repro.campaign.workers.WorkerCrew`, all-to-all
  pipes, no coordinator on the hot path.  This is the mode that buys
  wall-clock speedup on multi-core hosts.

Outcomes are merged with :func:`merge_outcomes` (ints/floats sum,
lists concatenate sorted, dicts recurse), so a K-shard result is
directly comparable to the oracle's dict.
"""

from __future__ import annotations

import itertools
import math
import pickle
import time
from typing import Any, Dict, List, Optional

import repro.core.messages as core_messages
from repro.campaign.workers import WorkerCrew
from repro.shard.scenario import get_scenario
from repro.shard.worker import (
    STALL_LIMIT,
    ExportedTx,
    ShardPlan,
    ShardRuntime,
    next_horizon_ex,
    shard_worker_main,
)
from repro.sim.metrics import MetricsRegistry, current_registry, use_registry


def merge_outcomes(parts: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-shard outcome dicts into one network-wide outcome."""
    if not parts:
        return {}
    merged: Dict[str, Any] = {}
    for key in parts[0]:
        values = [part[key] for part in parts]
        first = values[0]
        if isinstance(first, dict):
            merged[key] = merge_outcomes(values)
        elif isinstance(first, bool):
            merged[key] = any(values)
        elif isinstance(first, (int, float)):
            merged[key] = sum(values)
        elif isinstance(first, list):
            combined: List[Any] = []
            for value in values:
                combined.extend(value)
            merged[key] = sorted(combined)
        else:
            raise TypeError(
                f"outcome key {key!r} has unmergeable type "
                f"{type(first).__name__}"
            )
    return merged


def run_oracle(plan: ShardPlan) -> Dict[str, Any]:
    """The whole plan in one event queue — the ground-truth outcome.

    Builds with every node owned, schedules the identical move events
    at the same priority the shards use, and runs straight through.
    """
    core_messages._msg_counter = itertools.count(1)
    scenario = get_scenario(plan.scenario)
    topology = scenario.topology(plan.params)
    net = scenario.build(
        topology, topology.node_ids(), plan.params, plan.seed
    )
    for t, node, x, y in sorted(scenario.move_schedule(plan.params, topology)):
        net.sim.schedule_at(
            t, topology.move_node, node, x, y,
            name="shard.move", priority=-2,
        )
    net.sim.run(until=plan.duration)
    return net.outcome()


def run_sharded(
    plan: ShardPlan,
    transport: str = "inline",
    timeout: Optional[float] = None,
) -> Dict[str, Any]:
    """Execute ``plan`` across ``plan.shards`` shards.

    Returns ``{"outcome": merged outcome, "shards": [per-shard stats],
    "metrics": [per-shard metric snapshots], "profile": sync profile}``.

    Every per-shard metric snapshot is also folded into the *caller's*
    active registry via :meth:`~repro.sim.metrics.MetricsRegistry.merge`
    (a no-op under the null registry), so process-transport runs no
    longer lose shard-worker metrics: ``use_registry()`` around a
    sharded run sees ``shard.*`` instruments exactly as an inline run
    would.
    """
    if transport == "inline":
        results = _run_inline(plan)
    elif transport == "process":
        results = _run_process(plan, timeout=timeout)
    else:
        raise ValueError(f"unknown transport {transport!r}")
    parent = current_registry()
    for r in results:
        parent.merge(r["metrics"])
    return {
        "outcome": merge_outcomes([r["outcome"] for r in results]),
        "shards": [r["stats"] for r in results],
        "metrics": [r["metrics"] for r in results],
        "profile": sync_profile([r["stats"] for r in results]),
    }


def sync_profile(stats: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-shard stats dicts into one synchronization profile.

    ``windows_by_term`` sums across shards (so term shares over the
    total are the network-wide attribution), stall and exchange totals
    aggregate, and ``imbalance`` is max/mean of per-shard busy seconds
    — 1.0 is a perfectly balanced partition, K is one shard doing all
    the work of K.
    """
    windows_by_term: Dict[str, int] = {}
    for s in stats:
        for term, count in s.get("windows_by_term", {}).items():
            windows_by_term[term] = windows_by_term.get(term, 0) + count
    busy = [s.get("busy_seconds", 0.0) for s in stats]
    mean_busy = sum(busy) / len(busy) if busy else 0.0
    return {
        "windows": sum(windows_by_term.values()),
        "windows_by_term": dict(sorted(windows_by_term.items())),
        "stall_seconds": [s.get("stall_seconds", 0.0) for s in stats],
        "exchange_bytes": sum(s.get("exchange_bytes", 0) for s in stats),
        "imbalance": (max(busy) / mean_busy) if mean_busy > 0 else 1.0,
    }


def _run_process(
    plan: ShardPlan, timeout: Optional[float]
) -> List[Dict[str, Any]]:
    with WorkerCrew(
        plan.shards, "repro.shard.worker:shard_worker_main"
    ) as crew:
        crew.start([plan] * plan.shards)
        return crew.collect(timeout=timeout)


def _run_inline(plan: ShardPlan) -> List[Dict[str, Any]]:
    """All shards in-process, same round protocol as the worker loop.

    Each runtime gets its own metrics registry so per-shard kernel
    gauges don't collide; message ids share one counter (uniqueness
    per origin node is all correctness needs).
    """
    core_messages._msg_counter = itertools.count(1)
    registries = [MetricsRegistry() for _ in range(plan.shards)]
    runtimes: List[ShardRuntime] = []
    for rank in range(plan.shards):
        with use_registry(registries[rank]):
            runtimes.append(ShardRuntime(plan, rank))
    duration = plan.duration
    outboxes: List[List[ExportedTx]] = [[] for _ in runtimes]
    finalized = [False] * plan.shards
    stalled = 0
    while not all(finalized):
        # Identical ordering to the process mode: promises are computed
        # before this round's ghosts are injected; the export term of
        # next_horizon() compensates.
        promises = [
            (math.inf, "idle") if finalized[i] else rt.promise_ex()
            for i, rt in enumerate(runtimes)
        ]
        all_exports = [rec for outbox in outboxes for rec in outbox]
        events_before = sum(rt.stats.events for rt in runtimes)
        for i, rt in enumerate(runtimes):
            if finalized[i]:
                continue
            # What the process transport would have shipped this round;
            # measured (outside the busy timers) so inline runs report
            # comparable exchange volume.
            rt.stats.exchange_bytes += len(
                pickle.dumps(
                    (promises[i][0], promises[i][1], outboxes[i],
                     finalized[i]),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            ) * (len(runtimes) - 1)
            rt.inject(
                rec
                for j, outbox in enumerate(outboxes)
                if j != i
                for rec in outbox
            )
        next_outboxes: List[List[ExportedTx]] = [[] for _ in runtimes]
        window_walls = [0.0] * len(runtimes)
        for i, rt in enumerate(runtimes):
            if finalized[i]:
                continue
            horizon, bound_term = next_horizon_ex(
                (p for j, p in enumerate(promises) if j != i),
                all_exports, rt.lookahead, duration,
            )
            window_started = time.perf_counter()
            if horizon >= duration:
                next_outboxes[i], finalized[i] = rt.advance(
                    duration, inclusive=True, final=True, term=bound_term
                )
            else:
                next_outboxes[i], _reached = rt.advance(
                    horizon, inclusive=promises[i][0] <= horizon,
                    term=bound_term,
                )
            window_walls[i] = time.perf_counter() - window_started
        # Inline shards run serially, so barrier stall is *counter-
        # factual*: had the round run in parallel, each shard would
        # have waited for the round's slowest window.
        slowest = max(window_walls)
        for i, rt in enumerate(runtimes):
            if window_walls[i] > 0.0:
                rt.stats.stall_seconds += slowest - window_walls[i]
        outboxes = next_outboxes
        if (
            sum(rt.stats.events for rt in runtimes) == events_before
            and not all_exports
        ):
            stalled += 1
            if stalled > STALL_LIMIT:
                raise RuntimeError("conservative sync stalled")
        else:
            stalled = 0
    results = []
    for rank, rt in enumerate(runtimes):
        result = rt.result()
        result["metrics"] = registries[rank].snapshot()
        results.append(result)
    return results


__all__ = [
    "merge_outcomes",
    "run_oracle",
    "run_sharded",
    "shard_worker_main",
    "sync_profile",
]
