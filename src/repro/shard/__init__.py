"""Sharded parallel simulation: conservative spatially-partitioned
execution of one trial across cooperating event queues.

The single-queue :class:`~repro.sim.Simulator` tops out around a few
thousand nodes per core-hour; the paper's arguments about dense,
large-scale deployments (Sections 1 and 6) want 10k-node trials.  This
package cuts the deployment into spatial shards
(:mod:`repro.shard.partition`), gives each its own simulator and
channel built for just its owned nodes (:mod:`repro.shard.scenario`),
and runs them in lock-step windows under conservative synchronization
(:mod:`repro.shard.worker`): a shard only advances past a time its
peers have promised not to transmit across the cut before.  Boundary
audibility comes from
:class:`~repro.radio.neighborhood.BoundaryIndex`, so per-round
exchange cost scales with the cut, not the network.

The protocol is exact: outcomes are bit-identical to the single-queue
oracle (:func:`~repro.shard.runner.run_oracle`), which stays the
trusted reference — tests/test_shard_equivalence.py holds the two
paths equal on every supported scenario at 1, 2, and 4 shards.
"""

from repro.shard.partition import (
    grid_partition,
    kmeans_partition,
    partition_nodes,
)
from repro.shard.runner import (
    merge_outcomes,
    run_oracle,
    run_sharded,
    sync_profile,
)
from repro.shard.scenario import SCENARIOS, Scenario, ShardNet, get_scenario
from repro.shard.worker import (
    ExportedTx,
    ShardPlan,
    ShardRuntime,
    ShardStats,
    next_horizon,
    next_horizon_ex,
    shard_worker_main,
)

__all__ = [
    "ExportedTx",
    "SCENARIOS",
    "Scenario",
    "ShardNet",
    "ShardPlan",
    "ShardRuntime",
    "ShardStats",
    "get_scenario",
    "grid_partition",
    "kmeans_partition",
    "merge_outcomes",
    "next_horizon",
    "next_horizon_ex",
    "partition_nodes",
    "run_oracle",
    "run_sharded",
    "shard_worker_main",
    "sync_profile",
]
