"""Spatial partitioning of a deployment into shards.

A good shard cut for conservative parallel simulation minimizes the
boundary (nodes audible across the cut) while balancing population, so
per-window work is even and the export traffic small.  Two methods:

* :func:`grid_partition` — quantile slabs: split the x axis into
  near-equal-population slabs, then each slab along y.  Deterministic,
  parameter-free, and near-optimal on the uniform-ish deployments the
  paper's scenarios use.
* :func:`kmeans_partition` — Lloyd's iterations over node positions
  with deterministic farthest-point seeding, for irregular deployments
  where axis-aligned slabs cut through dense clusters.

Both return a list of ``shards`` sorted node-id lists covering every
node exactly once, and both are pure functions of (topology, shards,
seed) so every worker — and the oracle — derives the identical cut.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.radio.topology import Topology
from repro.sim.rng import make_rng


def _axis_factors(shards: int) -> Tuple[int, int]:
    """Split ``shards`` into the most square (columns, rows) grid."""
    best = (shards, 1)
    for rows in range(1, int(math.isqrt(shards)) + 1):
        if shards % rows == 0:
            best = (shards // rows, rows)
    return best


def _slab_split(ids: Sequence[int], pieces: int) -> List[List[int]]:
    """Cut an ordered id sequence into ``pieces`` near-equal runs."""
    out: List[List[int]] = []
    n = len(ids)
    for i in range(pieces):
        lo = (n * i) // pieces
        hi = (n * (i + 1)) // pieces
        out.append(list(ids[lo:hi]))
    return out


def grid_partition(topology: Topology, shards: int) -> List[List[int]]:
    """Quantile-slab cut: x slabs, then y slabs inside each.

    Sorting is by (coordinate, node id) so equal coordinates — grid
    deployments are full of them — still split deterministically.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    ids = topology.node_ids()
    if shards == 1:
        return [ids]
    if shards > len(ids):
        raise ValueError(
            f"cannot cut {len(ids)} nodes into {shards} shards"
        )
    columns, rows = _axis_factors(shards)
    by_x = sorted(ids, key=lambda n: (topology.position(n).x, n))
    parts: List[List[int]] = []
    for slab in _slab_split(by_x, columns):
        by_y = sorted(slab, key=lambda n: (topology.position(n).y, n))
        parts.extend(_slab_split(by_y, rows))
    return [sorted(part) for part in parts]


def kmeans_partition(
    topology: Topology,
    shards: int,
    seed: int = 1,
    iterations: int = 25,
) -> List[List[int]]:
    """Lloyd's k-means over positions, balanced by capacity-capped
    assignment.

    Seeding is farthest-point from a seed-derived start node, so the
    result is a pure function of (topology, shards, seed).  Assignment
    fills shards nearest-centroid-first with a hard capacity of
    ``ceil(N / shards)``, which keeps populations balanced even when
    the geometry is lopsided (an unbalanced shard would dominate every
    synchronization window).
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    ids = topology.node_ids()
    if shards == 1:
        return [ids]
    if shards > len(ids):
        raise ValueError(
            f"cannot cut {len(ids)} nodes into {shards} shards"
        )
    points: Dict[int, Tuple[float, float]] = {
        n: (topology.position(n).x, topology.position(n).y) for n in ids
    }
    rng = make_rng(seed, "kmeans-partition")
    first = ids[rng.randrange(len(ids))]
    centroids: List[Tuple[float, float]] = [points[first]]
    while len(centroids) < shards:
        far = max(
            ids,
            key=lambda n: (
                min(
                    (points[n][0] - cx) ** 2 + (points[n][1] - cy) ** 2
                    for cx, cy in centroids
                ),
                n,
            ),
        )
        centroids.append(points[far])

    capacity = -(-len(ids) // shards)  # ceil
    assignment: Dict[int, int] = {}
    for _ in range(iterations):
        # Greedy balanced assignment: closest (node, centroid) pairs
        # claim their slots first.
        ranked = sorted(
            (
                (points[n][0] - cx) ** 2 + (points[n][1] - cy) ** 2,
                n,
                k,
            )
            for n in ids
            for k, (cx, cy) in enumerate(centroids)
        )
        fill = [0] * shards
        new_assignment: Dict[int, int] = {}
        for _dist, n, k in ranked:
            if n in new_assignment or fill[k] >= capacity:
                continue
            new_assignment[n] = k
            fill[k] += 1
        if new_assignment == assignment:
            break
        assignment = new_assignment
        for k in range(shards):
            members = [n for n in ids if assignment[n] == k]
            if members:
                centroids[k] = (
                    sum(points[n][0] for n in members) / len(members),
                    sum(points[n][1] for n in members) / len(members),
                )
    parts: List[List[int]] = [[] for _ in range(shards)]
    for n in ids:
        parts[assignment[n]].append(n)
    return [sorted(part) for part in parts]


def partition_nodes(
    topology: Topology,
    shards: int,
    method: str = "grid",
    seed: int = 1,
) -> List[List[int]]:
    """Dispatch to a partition method; every shard list is non-empty."""
    if method == "grid":
        parts = grid_partition(topology, shards)
    elif method == "kmeans":
        parts = kmeans_partition(topology, shards, seed=seed)
    else:
        raise ValueError(f"unknown partition method {method!r}")
    if any(not part for part in parts):
        raise ValueError(
            f"{method} partition produced an empty shard for "
            f"{len(topology)} nodes / {shards} shards"
        )
    return parts
