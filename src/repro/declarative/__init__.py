"""MIT-LL declarative routing (paper Section 4.2).

"Dan Coffin helped define the basic diffusion APIs ... and developed an
independent implementation in MIT-Lincoln Lab's Declarative Routing
system.  In principle all applications that do not depend on filters
will run over either implementation."

This package is that second implementation: the same Figure 4
publish/subscribe API over the same attribute matching, but

* **no filters** — ``add_filter`` raises; in-network processing is not
  available (the paper's "critical necessary component" argument);
* **geography-aided routing built in** — interests carrying a
  rectangular region are pruned when they stop making progress toward
  it (what the GEAR *filter* does for diffusion is a core feature
  here);
* **energy-aware relaying built in** — "routes are selected to avoid
  energy-poor nodes": a node below its energy threshold stops relaying
  interests, so gradients (and therefore data) route around it.

The portability claim is test-enforced: the suite runs identical
application code over both implementations.
"""

from repro.declarative.node import (
    DeclarativeRoutingNode,
    UnsupportedFeatureError,
)

__all__ = ["DeclarativeRoutingNode", "UnsupportedFeatureError"]
