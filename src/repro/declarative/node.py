"""The declarative-routing node.

Deliberately implemented as a small delta on
:class:`~repro.core.node.DiffusionNode`: the paper stresses that
"declarative routing and data diffusion are far more similar than they
are different.  Both name data rather than end-nodes.  Differences are
in how routes and transmission are optimized."
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.filter_api import FilterHandle
from repro.core.messages import Message
from repro.core.node import DiffusionNode
from repro.energy import EnergyLedger
from repro.filters.gear import distance_to_region, region_of
from repro.naming import AttributeVector
from repro.radio.topology import Topology


class UnsupportedFeatureError(RuntimeError):
    """Raised for features declarative routing does not provide."""


class DeclarativeRoutingNode(DiffusionNode):
    """Figure 4 API without filters, with built-in route optimization."""

    def __init__(
        self,
        *args,
        topology: Optional[Topology] = None,
        energy_ledger: Optional[EnergyLedger] = None,
        energy_budget: float = 0.0,
        min_energy_fraction: float = 0.1,
        gear_slack: float = 5.0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.topology = topology
        self.energy_ledger = energy_ledger
        self.energy_budget = energy_budget
        self.min_energy_fraction = min_energy_fraction
        self.gear_slack = gear_slack
        self.interests_pruned_geo = 0
        self.interests_declined_energy = 0

    # -- the defining difference: no filter API ---------------------------

    def add_filter(
        self,
        attrs: AttributeVector,
        priority: int,
        callback: Callable[[Message, FilterHandle], None],
        name: str = "",
    ) -> FilterHandle:
        raise UnsupportedFeatureError(
            "declarative routing provides attribute matching but no filters "
            "(paper Section 4.2); use DiffusionNode for in-network processing"
        )

    # -- built-in route optimization --------------------------------------------

    def _energy_poor(self) -> bool:
        if self.energy_ledger is None or self.energy_budget <= 0:
            return False
        spent = self.energy_ledger.energy(elapsed=self.sim.now)
        residual = max(0.0, self.energy_budget - spent)
        return residual < self.min_energy_fraction * self.energy_budget

    def _geo_prunes(self, message: Message) -> bool:
        if self.topology is None or message.last_hop is None:
            return False
        region = region_of(message.attrs)
        if region is None:
            return False
        if not (
            self.topology.has_node(self.node_id)
            and self.topology.has_node(message.last_hop)
        ):
            return False
        here = self.topology.position(self.node_id)
        there = self.topology.position(message.last_hop)
        mine = distance_to_region(here.x, here.y, region)
        theirs = distance_to_region(there.x, there.y, region)
        return mine > 0.0 and mine >= theirs + self.gear_slack

    def _process_interest(self, message: Message) -> None:
        if message.last_hop is not None:
            if self._geo_prunes(message):
                # Moving away from the requested region: neither set up
                # a gradient nor re-flood.
                self.interests_pruned_geo += 1
                return
            if self._energy_poor():
                # Energy-poor nodes abstain from relaying so routes form
                # around them; local subscriptions still hear interests.
                self.interests_declined_energy += 1
                self._deliver_to_subscriptions(message)
                return
        super()._process_interest(message)
