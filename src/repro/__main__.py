"""Command-line entry point.

Usage::

    python -m repro experiments [--quick] [--only fig8] [--jobs 4]
    python -m repro campaign run scale-aggregation --jobs 4
    python -m repro trace record --out run.jsonl --scenario isi
    python -m repro trace paths run.jsonl
    python -m repro faults run --fault partition
    python -m repro faults --smoke
    python -m repro dtn run --duty 0.6
    python -m repro dtn --smoke
    python -m repro example quickstart
    python -m repro info
"""

from __future__ import annotations

import argparse
import runpy
import sys
from pathlib import Path

import repro

EXAMPLES = {
    "quickstart": "quickstart.py",
    "animal-tracking": "animal_tracking.py",
    "surveillance": "surveillance_aggregation.py",
    "nested-queries": "nested_queries.py",
    "tiered-motes": "tiered_motes.py",
    "energy-monitoring": "energy_monitoring.py",
    "bulk-transfer": "bulk_transfer.py",
    "target-tracking": "target_tracking.py",
    "query-console": "query_console.py",
    "adaptive-sampling": "adaptive_sampling.py",
}


def _examples_dir() -> Path:
    # examples/ sits next to src/ in a source checkout.
    return Path(__file__).resolve().parents[2] / "examples"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Building Efficient Wireless Sensor "
        "Networks with Low-Level Naming' (SOSP 2001)",
    )
    sub = parser.add_subparsers(dest="command")

    exp = sub.add_parser("experiments", help="regenerate the paper's figures")
    exp.add_argument("--quick", action="store_true")
    exp.add_argument(
        "--only",
        action="append",
        choices=["fig8", "fig9", "fig11", "duty", "model", "micro"],
    )
    exp.add_argument("--jobs", type=int, default=1)

    camp = sub.add_parser(
        "campaign",
        help="run/status/clean parameter-sweep campaigns",
        add_help=False,
    )
    camp.add_argument("args", nargs=argparse.REMAINDER)

    trace = sub.add_parser(
        "trace",
        help="record/summarize/paths/timeline/profile over JSONL traces",
        add_help=False,
    )
    trace.add_argument("args", nargs=argparse.REMAINDER)

    flt = sub.add_parser(
        "faults",
        help="validate/run/report fault plans; --smoke for the CI gate",
        add_help=False,
    )
    # REMAINDER does not capture a *leading* option, so the smoke flag
    # (the one bare-option invocation) is declared here and forwarded.
    flt.add_argument("--smoke", action="store_true")
    flt.add_argument("args", nargs=argparse.REMAINDER)

    dtn = sub.add_parser(
        "dtn",
        help="run/report disruption-tolerant transfers; --smoke for CI",
        add_help=False,
    )
    dtn.add_argument("--smoke", action="store_true")
    dtn.add_argument("args", nargs=argparse.REMAINDER)

    ex = sub.add_parser("example", help="run a narrated example")
    ex.add_argument("name", choices=sorted(EXAMPLES))

    sub.add_parser("info", help="print version and module inventory")

    args = parser.parse_args(argv)
    if args.command == "experiments":
        from repro.experiments.runner import main as runner_main

        runner_args = []
        if args.quick:
            runner_args.append("--quick")
        for only in args.only or ():
            runner_args.extend(["--only", only])
        if args.jobs != 1:
            runner_args.extend(["--jobs", str(args.jobs)])
        return runner_main(runner_args)
    if args.command == "campaign":
        from repro.campaign.cli import main as campaign_main

        return campaign_main(args.args)
    if args.command == "trace":
        from repro.analysis.tracecli import main as trace_main

        return trace_main(args.args)
    if args.command == "faults":
        from repro.faults.cli import main as faults_main

        return faults_main((["--smoke"] if args.smoke else []) + args.args)
    if args.command == "dtn":
        from repro.dtn.cli import main as dtn_main

        return dtn_main((["--smoke"] if args.smoke else []) + args.args)
    if args.command == "example":
        script = _examples_dir() / EXAMPLES[args.name]
        if not script.exists():
            print(f"example script not found: {script}", file=sys.stderr)
            return 1
        runpy.run_path(str(script), run_name="__main__")
        return 0
    if args.command == "info":
        print(f"repro {repro.__version__}")
        print(__doc__)
        print("subpackages: naming, core, filters, micro, transfer, apps,")
        print("             sim, radio, mac, link, energy, testbed,")
        print("             analysis, experiments, campaign, faults")
        return 0
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
