"""Human-readable rendering of resilience-run results.

Pure formatting over the JSON-safe dicts that
:func:`repro.faults.scenarios.resilience_run` returns — no simulation
imports, so trace tooling and the ``faults report`` CLI can render
saved results without touching the engine.
"""

from __future__ import annotations

from typing import List, Optional


def _ratio(value: Optional[float]) -> str:
    return f"{value:6.1%}" if value is not None else "   n/a"


def _seconds(value: Optional[float]) -> str:
    return f"{value:7.2f}s" if value is not None else "    n/a"


def format_resilience_report(result: dict) -> str:
    """Render one resilience-run result dict as a text report."""
    lines: List[str] = []
    fault = result.get("fault", "?")
    seed = result.get("seed", "?")
    lines.append(f"resilience run: fault={fault} seed={seed}")
    report = result.get("report", {})
    interval = report.get("exploratory_interval")
    if interval:
        lines.append(f"exploratory interval: {interval:g}s")
    lines.append(
        "messages: "
        f"{report.get('messages_originated', 0)} originated, "
        f"{report.get('messages_delivered', 0)} delivered "
        f"(overall {_ratio(report.get('overall_delivery'))})"
    )

    faults = report.get("faults", [])
    if faults:
        lines.append("")
        lines.append(
            f"{'fault':<20} {'inject':>8} {'heal':>8} "
            f"{'during':>7} {'after':>7} {'repair':>9} {'intervals':>9}"
        )
        for entry in faults:
            intervals = entry.get("repair_intervals")
            intervals_text = (
                f"{intervals:9.2f}" if intervals is not None else f"{'n/a':>9}"
            )
            lines.append(
                f"{entry.get('kind', '?'):<20} "
                f"{_seconds(entry.get('inject_at')):>8} "
                f"{_seconds(entry.get('heal_at')):>8} "
                f"{_ratio(entry.get('delivery_during')):>7} "
                f"{_ratio(entry.get('delivery_after')):>7} "
                f"{_seconds(entry.get('time_to_repair')):>9} "
                f"{intervals_text}"
            )

    corrupted = result.get("fragments_corrupted", 0)
    if corrupted:
        lines.append(f"fragments corrupted: {corrupted}")

    violations = result.get("violations", [])
    if violations:
        lines.append("")
        lines.append(f"INVARIANT VIOLATIONS ({len(violations)}):")
        for violation in violations[:10]:
            lines.append(f"  {violation}")
        if len(violations) > 10:
            lines.append(f"  ... and {len(violations) - 10} more")
    else:
        lines.append("invariants: all held")
    return "\n".join(lines)
