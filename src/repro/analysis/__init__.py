"""Experiment analysis: statistics, traffic meters, and the paper's
analytical traffic model."""

from repro.analysis.stats import ConfidenceInterval, mean_ci
from repro.analysis.metrics import DeliveryRecorder, TrafficMeter
from repro.analysis.traffic_model import TrafficModel, TrafficBreakdown
from repro.analysis.charts import bar_chart, line_chart
from repro.analysis.tracelog import (
    CampaignSummary,
    TraceLogger,
    load_trace,
    summarize_campaign,
    summarize_trace,
)
from repro.analysis.dtn import format_dtn_report
from repro.analysis.resilience import format_resilience_report
from repro.analysis.paths import (
    DropRecord,
    HopRecord,
    MessagePath,
    format_loss_table,
    format_path,
    format_route,
    loss_attribution,
    reconstruct_paths,
    trace_timeline,
)

__all__ = [
    "ConfidenceInterval",
    "mean_ci",
    "DeliveryRecorder",
    "TrafficMeter",
    "TrafficModel",
    "TrafficBreakdown",
    "bar_chart",
    "line_chart",
    "TraceLogger",
    "load_trace",
    "summarize_trace",
    "CampaignSummary",
    "summarize_campaign",
    "DropRecord",
    "HopRecord",
    "MessagePath",
    "format_dtn_report",
    "format_loss_table",
    "format_path",
    "format_resilience_report",
    "format_route",
    "loss_attribution",
    "reconstruct_paths",
    "trace_timeline",
]
