"""``python -m repro trace`` — record and analyse JSONL traces.

Subcommands::

    repro trace record    --out run.jsonl --scenario line --nodes 3
    repro trace summarize run.jsonl
    repro trace paths     run.jsonl [--all] [--limit N]
    repro trace timeline  run.jsonl <trace-id>
    repro trace profile   run.jsonl

``record`` runs a small canned scenario (a line network or the ISI
14-node testbed of Figure 7) with full tracing, the metrics registry,
and the kernel profiler enabled, and appends ``metrics.snapshot`` and
``kernel.profile`` records to the end of the log so the analysis
subcommands are self-contained.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.paths import (
    format_loss_table,
    format_path,
    format_route,
    loss_attribution,
    reconstruct_paths,
)
from repro.analysis.tracelog import TraceLogger, load_trace, summarize_trace

DEMO_TYPE = "trace-demo"


def _build_scenario(args):
    """A (network, sink_id, source_ids) triple for the chosen scenario."""
    from repro.radio import Topology
    from repro.testbed import (
        FIG8_SINK,
        FIG8_SOURCES,
        SensorNetwork,
        isi_testbed_network,
    )

    if args.scenario == "isi":
        network = isi_testbed_network(seed=args.seed)
        return network, FIG8_SINK, list(FIG8_SOURCES[: args.sources])
    topology = Topology.line(args.nodes, spacing=15.0)
    network = SensorNetwork(topology, seed=args.seed)
    node_ids = network.node_ids()
    return network, node_ids[0], [node_ids[-1]]


def _run_record(args) -> int:
    from repro.naming import AttributeVector
    from repro.naming.keys import Key
    from repro.sim import use_registry

    with use_registry() as registry:
        network, sink_id, source_ids = _build_scenario(args)
        profiler = network.sim.enable_profiler()
        with TraceLogger(network.trace, path=args.out) as logger:
            received: List = []
            sub = AttributeVector.builder().eq(Key.TYPE, DEMO_TYPE).build()
            network.api(sink_id).subscribe(
                sub, lambda attrs, msg: received.append(msg)
            )

            for source_id in source_ids:
                api = network.api(source_id)
                pub = api.publish(
                    AttributeVector.builder()
                    .actual(Key.TYPE, DEMO_TYPE)
                    .actual(Key.INSTANCE, str(source_id))
                    .build()
                )

                def tick(api=api, pub=pub, seq=[0]):
                    api.send(
                        pub,
                        AttributeVector.builder()
                        .actual(Key.SEQUENCE, seq[0])
                        .build(),
                    )
                    seq[0] += 1
                    if network.sim.now + args.interval < args.duration:
                        network.sim.schedule(args.interval, tick)

                network.sim.schedule(args.warmup, tick)

            network.run(until=args.duration)
            # Trailing aggregate records make the log self-contained.
            network.trace.emit(
                network.sim.now, "metrics.snapshot", **registry.snapshot()
            )
            network.trace.emit(
                network.sim.now, "kernel.profile", **profiler.snapshot()
            )
        print(
            f"recorded {logger.records_written} records to {args.out} "
            f"({args.scenario} scenario, {len(received)} deliveries at "
            f"node {sink_id})"
        )
    return 0


def _run_summarize(args) -> int:
    records = load_trace(args.trace)
    summary = summarize_trace(records)
    print(f"records:   {summary.record_count}")
    print(f"duration:  {summary.duration:.3f}s (simulated)")
    print("by category:")
    for category, count in sorted(summary.by_category.items()):
        print(f"  {category:<24} {count}")
    if summary.tx_bytes_by_node:
        print("tx bytes by node:")
        for node, nbytes in sorted(summary.tx_bytes_by_node.items()):
            print(f"  node {node:<4} {nbytes}")
    if summary.collisions_by_node:
        print("collisions by node:")
        for node, count in sorted(summary.collisions_by_node.items()):
            print(f"  node {node:<4} {count}")
    for record in records:
        if record.category == "metrics.snapshot":
            print("metrics:")
            for name, value in sorted(
                record.data.get("counters", {}).items()
            ):
                print(f"  {name:<44} {value}")
    return 0


def _run_paths(args) -> int:
    records = load_trace(args.trace)
    paths = reconstruct_paths(records)
    data_paths = [
        p
        for p in paths.values()
        if p.msg_type in ("DATA", "EXPLORATORY_DATA")
    ]
    delivered = [p for p in data_paths if p.delivered]
    undelivered = [p for p in data_paths if not p.delivered]
    print(
        f"{len(data_paths)} data messages: {len(delivered)} delivered, "
        f"{len(undelivered)} lost"
    )
    shown = data_paths if args.all else delivered
    for path in shown[: args.limit]:
        print()
        print(format_path(path))
    if len(shown) > args.limit:
        print(f"\n... {len(shown) - args.limit} more (raise --limit)")
    print()
    print("loss attribution (undelivered data messages):")
    print(format_loss_table(loss_attribution(paths)))
    return 0


def _run_timeline(args) -> int:
    from repro.analysis.paths import trace_timeline

    records = load_trace(args.trace)
    timeline = trace_timeline(records, args.trace_id)
    if not timeline:
        print(f"no records mention trace {args.trace_id!r}", file=sys.stderr)
        return 1
    for record in timeline:
        extras = " ".join(
            f"{k}={v}"
            for k, v in sorted(record.data.items())
            if k != "trace"
        )
        print(
            f"{record.time:10.4f}s  {record.category:<18} "
            f"node={record.node}  {extras}"
        )
    paths = reconstruct_paths(records)
    path = paths.get(args.trace_id)
    if path is not None:
        print()
        print(format_path(path))
    return 0


def _run_profile(args) -> int:
    records = load_trace(args.trace)
    profile = None
    for record in records:
        if record.category == "kernel.profile":
            profile = record.data
    if profile is None:
        print(
            "no kernel.profile record in trace "
            "(record with `repro trace record` to include one)",
            file=sys.stderr,
        )
        return 1
    print(f"events:          {profile.get('events')}")
    print(f"events/sec:      {profile.get('events_per_second', 0.0):.0f}")
    print(f"busy seconds:    {profile.get('busy_seconds', 0.0):.4f}")
    print(f"max queue depth: {profile.get('max_queue_depth')}")
    sites = profile.get("sites", [])
    if sites:
        print(f"{'site':<28} {'count':>8} {'seconds':>10} {'mean_us':>9}")
        for site in sites[: args.limit]:
            print(
                f"{site.get('site', '?'):<28} {site.get('count', 0):>8} "
                f"{site.get('seconds', 0.0):>10.4f} "
                f"{site.get('mean_us', 0.0):>9.1f}"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="record and analyse causal message traces",
    )
    sub = parser.add_subparsers(dest="trace_command", required=True)

    rec = sub.add_parser("record", help="run a canned scenario and record it")
    rec.add_argument("--out", required=True, help="JSONL output path")
    rec.add_argument(
        "--scenario", choices=["line", "isi"], default="line",
        help="line topology or the ISI 14-node testbed",
    )
    rec.add_argument("--nodes", type=int, default=3, help="line length")
    rec.add_argument(
        "--sources", type=int, default=4, help="ISI source count (1-4)"
    )
    rec.add_argument("--duration", type=float, default=60.0)
    rec.add_argument("--warmup", type=float, default=3.0)
    rec.add_argument(
        "--interval", type=float, default=5.0,
        help="seconds between data sends (paper cadence: ~6s)",
    )
    rec.add_argument("--seed", type=int, default=1)
    rec.set_defaults(func=_run_record)

    summ = sub.add_parser("summarize", help="run-level statistics")
    summ.add_argument("trace")
    summ.set_defaults(func=_run_summarize)

    paths = sub.add_parser(
        "paths", help="per-message routes and loss attribution"
    )
    paths.add_argument("trace")
    paths.add_argument(
        "--all", action="store_true",
        help="show undelivered messages too, not just delivered ones",
    )
    paths.add_argument("--limit", type=int, default=10)
    paths.set_defaults(func=_run_paths)

    timeline = sub.add_parser(
        "timeline", help="every event touching one trace id"
    )
    timeline.add_argument("trace")
    timeline.add_argument("trace_id", help="e.g. 25.17 (origin.msg_id)")
    timeline.set_defaults(func=_run_timeline)

    profile = sub.add_parser("profile", help="kernel event-loop profile")
    profile.add_argument("trace")
    profile.add_argument("--limit", type=int, default=15)
    profile.set_defaults(func=_run_profile)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
