"""``python -m repro trace`` — record and analyse JSONL traces.

Subcommands::

    repro trace record    --out run.jsonl --scenario line --nodes 3
    repro trace summarize run.jsonl
    repro trace paths     run.jsonl [--all] [--limit N]
    repro trace timeline  run.jsonl <trace-id>
    repro trace profile   run.jsonl
    repro trace shards    [--scenario flood] [--shards 4] [--out f.jsonl]

``record`` runs a small canned scenario (a line network or the ISI
14-node testbed of Figure 7) with full tracing, the metrics registry,
and the kernel profiler enabled, and appends ``metrics.snapshot`` and
``kernel.profile`` records to the end of the log so the analysis
subcommands are self-contained.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.paths import (
    format_loss_table,
    format_path,
    format_route,
    loss_attribution,
    reconstruct_paths,
)
from repro.analysis.tracelog import TraceLogger, load_trace, summarize_trace

DEMO_TYPE = "trace-demo"


def _build_scenario(args):
    """A (network, sink_id, source_ids) triple for the chosen scenario."""
    from repro.radio import Topology
    from repro.testbed import (
        FIG8_SINK,
        FIG8_SOURCES,
        SensorNetwork,
        isi_testbed_network,
    )

    vectorized = bool(getattr(args, "vectorized", False))
    if args.scenario == "isi":
        network = isi_testbed_network(
            seed=args.seed, channel_vectorized=vectorized
        )
        return network, FIG8_SINK, list(FIG8_SOURCES[: args.sources])
    topology = Topology.line(args.nodes, spacing=15.0)
    network = SensorNetwork(
        topology, seed=args.seed, channel_vectorized=vectorized
    )
    node_ids = network.node_ids()
    return network, node_ids[0], [node_ids[-1]]


def _run_record(args) -> int:
    from repro.naming import AttributeVector
    from repro.naming.keys import Key
    from repro.sim import use_registry

    with use_registry() as registry:
        network, sink_id, source_ids = _build_scenario(args)
        profiler = network.sim.enable_profiler()
        with TraceLogger(network.trace, path=args.out) as logger:
            received: List = []
            sub = AttributeVector.builder().eq(Key.TYPE, DEMO_TYPE).build()
            network.api(sink_id).subscribe(
                sub, lambda attrs, msg: received.append(msg)
            )

            for source_id in source_ids:
                api = network.api(source_id)
                pub = api.publish(
                    AttributeVector.builder()
                    .actual(Key.TYPE, DEMO_TYPE)
                    .actual(Key.INSTANCE, str(source_id))
                    .build()
                )

                def tick(api=api, pub=pub, seq=[0]):
                    api.send(
                        pub,
                        AttributeVector.builder()
                        .actual(Key.SEQUENCE, seq[0])
                        .build(),
                    )
                    seq[0] += 1
                    if network.sim.now + args.interval < args.duration:
                        network.sim.schedule(args.interval, tick)

                network.sim.schedule(args.warmup, tick)

            network.run(until=args.duration)
            # Trailing aggregate records make the log self-contained.
            network.trace.emit(
                network.sim.now, "metrics.snapshot", **registry.snapshot()
            )
            network.trace.emit(
                network.sim.now, "kernel.profile", **profiler.snapshot()
            )
        print(
            f"recorded {logger.records_written} records to {args.out} "
            f"({args.scenario} scenario, {len(received)} deliveries at "
            f"node {sink_id})"
        )
    return 0


def _run_summarize(args) -> int:
    records = load_trace(args.trace)
    summary = summarize_trace(records)
    print(f"records:   {summary.record_count}")
    print(f"duration:  {summary.duration:.3f}s (simulated)")
    print("by category:")
    for category, count in sorted(summary.by_category.items()):
        print(f"  {category:<24} {count}")
    if summary.tx_by_class:
        print("tx by message class:")
        for label in sorted(summary.tx_by_class):
            print(
                f"  {label:<14} {summary.tx_by_class[label]:>8} msgs "
                f"{summary.tx_bytes_by_class.get(label, 0):>10} B"
            )
    if summary.tx_bytes_by_node:
        print("tx bytes by node:")
        for node, nbytes in sorted(summary.tx_bytes_by_node.items()):
            print(f"  node {node:<4} {nbytes}")
    if summary.collisions_by_node:
        print("collisions by node:")
        for node, count in sorted(summary.collisions_by_node.items()):
            print(f"  node {node:<4} {count}")
    for record in records:
        if record.category == "metrics.snapshot":
            print("metrics:")
            for name, value in sorted(
                record.data.get("counters", {}).items()
            ):
                print(f"  {name:<44} {value}")
            for name, hist in sorted(
                record.data.get("histograms", {}).items()
            ):
                if not hist.get("count"):
                    continue  # registered but never observed
                line = f"  {name:<44} n={hist['count']} mean={hist['mean']:.2f}"
                if hist.get("p95") is not None:
                    line += f" p95={hist['p95']:.2f} max={hist['max']:g}"
                print(line)
    return 0


def _run_paths(args) -> int:
    records = load_trace(args.trace)
    paths = reconstruct_paths(records)
    data_paths = [
        p
        for p in paths.values()
        if p.msg_type in ("DATA", "EXPLORATORY_DATA")
    ]
    delivered = [p for p in data_paths if p.delivered]
    undelivered = [p for p in data_paths if not p.delivered]
    print(
        f"{len(data_paths)} data messages: {len(delivered)} delivered, "
        f"{len(undelivered)} lost"
    )
    shown = data_paths if args.all else delivered
    for path in shown[: args.limit]:
        print()
        print(format_path(path))
    if len(shown) > args.limit:
        print(f"\n... {len(shown) - args.limit} more (raise --limit)")
    print()
    print("loss attribution (undelivered data messages):")
    print(format_loss_table(loss_attribution(paths)))
    return 0


def _run_timeline(args) -> int:
    from repro.analysis.paths import trace_timeline

    records = load_trace(args.trace)
    timeline = trace_timeline(records, args.trace_id)
    if not timeline:
        print(f"no records mention trace {args.trace_id!r}", file=sys.stderr)
        return 1
    for record in timeline:
        extras = " ".join(
            f"{k}={v}"
            for k, v in sorted(record.data.items())
            if k != "trace"
        )
        print(
            f"{record.time:10.4f}s  {record.category:<18} "
            f"node={record.node}  {extras}"
        )
    paths = reconstruct_paths(records)
    path = paths.get(args.trace_id)
    if path is not None:
        print()
        print(format_path(path))
    return 0


def _run_profile(args) -> int:
    records = load_trace(args.trace)
    profile = None
    for record in records:
        if record.category == "kernel.profile":
            profile = record.data
    if profile is None:
        print(
            "no kernel.profile record in trace "
            "(record with `repro trace record` to include one)",
            file=sys.stderr,
        )
        return 1
    print(f"events:          {profile.get('events')}")
    print(f"events/sec:      {profile.get('events_per_second', 0.0):.0f}")
    print(f"busy seconds:    {profile.get('busy_seconds', 0.0):.4f}")
    print(f"max queue depth: {profile.get('max_queue_depth')}")
    sites = profile.get("sites", [])
    if sites:
        print(f"{'site':<28} {'count':>8} {'seconds':>10} {'mean_us':>9}")
        for site in sites[: args.limit]:
            print(
                f"{site.get('site', '?'):<28} {site.get('count', 0):>8} "
                f"{site.get('seconds', 0.0):>10.4f} "
                f"{site.get('mean_us', 0.0):>9.1f}"
            )
    return 0


def _run_shards(args) -> int:
    """Run a sharded trial and render the synchronization profile.

    This is the PR-6 black box opened up: which promise term bound each
    window, how windows were sized, how long each shard stalled at the
    exchange barrier, and how well the partition balanced the work.
    """
    import json

    from repro.shard import ShardPlan, run_sharded
    from repro.sim import use_registry
    from repro.sim.trace import _jsonable

    params = {"columns": args.columns, "rows": args.rows}
    if args.scenario == "regional":
        params["region"] = max(2, args.columns // 4)
    plan = ShardPlan(
        scenario=args.scenario, params=params, seed=args.seed,
        duration=args.duration, shards=args.shards,
    )
    with use_registry() as registry:
        result = run_sharded(plan, transport=args.transport)
    shards = result["shards"]
    profile = result["profile"]
    n_nodes = sum(s["owned"] for s in shards)

    print(
        f"sharded run: {args.scenario} {n_nodes} nodes, "
        f"{plan.shards} shard(s), {args.transport} transport, "
        f"{plan.duration:g}s simulated"
    )

    total_windows = profile["windows"]
    print("\nwindow attribution (which promise term bound each horizon):")
    print(f"  {'term':<12} {'windows':>8} {'share':>8}")
    share_sum = 0.0
    for term, count in sorted(
        profile["windows_by_term"].items(), key=lambda kv: -kv[1]
    ):
        share = 100.0 * count / total_windows if total_windows else 0.0
        share_sum += share
        print(f"  {term:<12} {count:>8} {share:>7.1f}%")
    print(f"  {'total':<12} {total_windows:>8} {share_sum:>7.1f}%")

    print("\nper shard:")
    print(
        f"  {'rank':>4} {'owned':>6} {'events':>9} {'windows':>8} "
        f"{'busy_s':>8} {'stall_s':>8} {'exch_B':>9} {'exports':>8} "
        f"{'ghosts':>7}"
    )
    for s in shards:
        print(
            f"  {s['rank']:>4} {s['owned']:>6} {s['events']:>9} "
            f"{s['rounds']:>8} {s['busy_seconds']:>8.3f} "
            f"{s['stall_seconds']:>8.3f} {s['exchange_bytes']:>9} "
            f"{s['exports']:>8} {s['ghosts_admitted']:>7}"
        )

    print("\nwindow span (simulated seconds) per shard:")
    print(
        f"  {'rank':>4} {'count':>8} {'mean':>9} {'p50':>9} {'p95':>9} "
        f"{'p99':>9} {'max':>9}"
    )
    for s, snapshot in zip(shards, result["metrics"]):
        span = snapshot.get("histograms", {}).get(
            f"shard.window_span{{shard={s['rank']}}}"
        )
        if not span or not span.get("count"):
            continue
        print(
            f"  {s['rank']:>4} {span['count']:>8} {span['mean']:>9.4f} "
            f"{span['p50']:>9.4f} {span['p95']:>9.4f} "
            f"{span['p99']:>9.4f} {span['max']:>9.4f}"
        )

    stall = profile["stall_seconds"]
    print(
        f"\nbarrier stall: total {sum(stall):.3f}s, "
        f"worst shard {max(stall):.3f}s"
        if stall else "\nbarrier stall: n/a"
    )
    print(f"exchange volume: {profile['exchange_bytes']} bytes")
    print(f"load imbalance (max/mean busy): {profile['imbalance']:.2f}")

    if args.out:
        # A tracelog-compatible JSONL so `trace summarize` reads it.
        with open(args.out, "w", encoding="utf-8") as handle:
            for s in shards:
                handle.write(json.dumps({
                    "t": plan.duration, "cat": "shard.stats",
                    "node": None, "data": _jsonable(s),
                }) + "\n")
            handle.write(json.dumps({
                "t": plan.duration, "cat": "shard.profile",
                "node": None, "data": _jsonable(profile),
            }) + "\n")
            handle.write(json.dumps({
                "t": plan.duration, "cat": "metrics.snapshot",
                "node": None, "data": _jsonable(registry.snapshot()),
            }) + "\n")
        print(f"wrote {args.out}")

    if args.smoke:
        failures = []
        for s in shards:
            attributed = sum(s["windows_by_term"].values())
            if attributed != s["rounds"]:
                failures.append(
                    f"shard {s['rank']}: {attributed} attributed windows "
                    f"!= {s['rounds']} rounds"
                )
        if abs(share_sum - 100.0) > 1e-6 and total_windows:
            failures.append(f"attribution shares sum to {share_sum}%")
        if plan.shards > 1 and profile["exchange_bytes"] <= 0:
            failures.append("no exchange bytes recorded")
        for s, snapshot in zip(shards, result["metrics"]):
            span = snapshot.get("histograms", {}).get(
                f"shard.window_span{{shard={s['rank']}}}", {}
            )
            if span.get("count") != s["rounds"]:
                failures.append(
                    f"shard {s['rank']}: span histogram count "
                    f"{span.get('count')} != rounds {s['rounds']}"
                )
        if failures:
            for failure in failures:
                print(f"SMOKE FAIL: {failure}", file=sys.stderr)
            return 1
        print("\ntrace shards smoke OK: attribution complete, "
              "distributions populated, exchange measured")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="record and analyse causal message traces",
    )
    sub = parser.add_subparsers(dest="trace_command", required=True)

    rec = sub.add_parser("record", help="run a canned scenario and record it")
    rec.add_argument("--out", required=True, help="JSONL output path")
    rec.add_argument(
        "--scenario", choices=["line", "isi"], default="line",
        help="line topology or the ISI 14-node testbed",
    )
    rec.add_argument("--nodes", type=int, default=3, help="line length")
    rec.add_argument(
        "--sources", type=int, default=4, help="ISI source count (1-4)"
    )
    rec.add_argument("--duration", type=float, default=60.0)
    rec.add_argument("--warmup", type=float, default=3.0)
    rec.add_argument(
        "--interval", type=float, default=5.0,
        help="seconds between data sends (paper cadence: ~6s)",
    )
    rec.add_argument("--seed", type=int, default=1)
    rec.add_argument(
        "--vectorized", action="store_true",
        help="route the channel through the numpy batch engine "
        "(DESIGN.md §11); falls back scalar when numpy is absent",
    )
    rec.set_defaults(func=_run_record)

    summ = sub.add_parser("summarize", help="run-level statistics")
    summ.add_argument("trace")
    summ.set_defaults(func=_run_summarize)

    paths = sub.add_parser(
        "paths", help="per-message routes and loss attribution"
    )
    paths.add_argument("trace")
    paths.add_argument(
        "--all", action="store_true",
        help="show undelivered messages too, not just delivered ones",
    )
    paths.add_argument("--limit", type=int, default=10)
    paths.set_defaults(func=_run_paths)

    timeline = sub.add_parser(
        "timeline", help="every event touching one trace id"
    )
    timeline.add_argument("trace")
    timeline.add_argument("trace_id", help="e.g. 25.17 (origin.msg_id)")
    timeline.set_defaults(func=_run_timeline)

    profile = sub.add_parser("profile", help="kernel event-loop profile")
    profile.add_argument("trace")
    profile.add_argument("--limit", type=int, default=15)
    profile.set_defaults(func=_run_profile)

    shards = sub.add_parser(
        "shards", help="run a sharded trial and profile its synchronization"
    )
    shards.add_argument(
        "--scenario", choices=["flood", "mobility", "diffusion", "regional"],
        default="flood",
    )
    shards.add_argument("--shards", type=int, default=4)
    shards.add_argument(
        "--transport", choices=["inline", "process"], default="inline",
    )
    shards.add_argument("--duration", type=float, default=20.0)
    shards.add_argument("--columns", type=int, default=15)
    shards.add_argument("--rows", type=int, default=10)
    shards.add_argument("--seed", type=int, default=11)
    shards.add_argument(
        "--out", help="also write stats/profile/metrics as JSONL here"
    )
    shards.add_argument(
        "--smoke", action="store_true",
        help="assert attribution sums to the round count per shard "
        "(CI gate; counters, not wall time)",
    )
    shards.set_defaults(func=_run_shards)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
