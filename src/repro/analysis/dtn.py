"""Human-readable rendering of disruption-tolerant transfer results.

Pure formatting over the JSON-safe dicts that
:func:`repro.dtn.scenario.dtn_run` / :func:`~repro.dtn.scenario.mule_run`
return — no simulation imports, so saved results render without
touching the engine.  The centerpiece is the loss-attribution table:
every undelivered block charged to a cause, with ``unattributed``
called out loudly because the dtn campaign gates on it being zero.
"""

from __future__ import annotations

from typing import List, Optional


def _ratio(value: Optional[float]) -> str:
    return f"{value:6.1%}" if value is not None else "   n/a"


def format_dtn_report(result: dict) -> str:
    """Render one dtn/mule-run result dict as a text report."""
    lines: List[str] = []
    scenario = result.get("scenario", "?")
    seed = result.get("seed", "?")
    custody = result.get("custody", "?")
    header = f"dtn run: scenario={scenario} seed={seed} custody={custody}"
    duty = result.get("duty")
    if duty is not None:
        header += f" duty={duty:g}"
    mode = result.get("mode")
    if mode and mode != "flat":
        header += f" mode={mode}"
    lines.append(header)

    offered = result.get("offered", 0)
    delivered = result.get("delivered", 0)
    lines.append(
        f"delivery: {delivered}/{offered} blocks "
        f"({_ratio(result.get('delivery_ratio')).strip()}), "
        f"{result.get('delivery_during_partition', 0)} during partition, "
        f"{result.get('delivery_after_partition', 0)} after"
    )
    completed_at = result.get("completed_at")
    if result.get("completed"):
        lines.append(f"object complete at t={completed_at:.1f}s")
    else:
        lines.append("object incomplete at end of run")

    custody_stats = result.get("custody_stats") or {}
    if custody_stats.get("accepted"):
        lines.append(
            "custody: "
            f"{custody_stats.get('accepted', 0)} accepted, "
            f"{custody_stats.get('transferred', 0)} released, "
            f"{custody_stats.get('expired', 0)} expired, "
            f"{custody_stats.get('held_at_end', 0)} held at end "
            f"(depth high-water {custody_stats.get('depth_high_water', 0)})"
        )
        lines.append(
            "carry:   "
            f"{custody_stats.get('reinjections', 0)} re-injections "
            f"({custody_stats.get('beacons', 0)} carrier beacons), "
            f"{custody_stats.get('contacts', 0)} contact triggers, "
            f"{custody_stats.get('custody_acks', 0)} custody acks"
        )
    transfer = result.get("transfer") or {}
    if transfer:
        lines.append(
            "transfer: "
            f"{transfer.get('blocks_sent', 0)} blocks sent "
            f"({transfer.get('retransmits', 0)} retransmits), "
            f"{transfer.get('repairs_served', 0)} repairs, "
            f"{transfer.get('acks_received', 0)} acks heard"
        )

    attribution = result.get("attribution") or {}
    lost = offered - delivered
    if lost:
        lines.append("")
        lines.append(f"loss attribution ({lost} block(s)):")
        width = max(len(reason) for reason in attribution)
        for reason, count in sorted(
            attribution.items(), key=lambda item: (-item[1], item[0])
        ):
            lines.append(f"  {reason:<{width}}  {count:>4}")
        unattributed = result.get("unattributed", 0)
        if unattributed:
            lines.append(
                f"  WARNING: {unattributed} block(s) unattributed — "
                "the evidence chain has a hole"
            )
    else:
        lines.append("no losses: every block arrived")

    violations = result.get("violations") or []
    if violations:
        lines.append("")
        lines.append(f"INVARIANT VIOLATIONS ({len(violations)}):")
        for violation in violations[:10]:
            lines.append(f"  {violation}")
        if len(violations) > 10:
            lines.append(f"  ... and {len(violations) - 10} more")
    else:
        lines.append("invariants: all held")
    return "\n".join(lines)
