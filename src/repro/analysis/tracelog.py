"""Trace logging and offline inspection.

Paper Section 7: the testbed needed "more flexible logging" and better
"analysis tools for these networks"; its authors ran a second, wired
network just to collect experiment data.  This module is that
instrumentation path for the simulator: persist every trace record as
JSON lines, load them back, and summarize a run offline.
"""

from __future__ import annotations

import json
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.sim import TraceBus, TraceRecord
from repro.sim.trace import _jsonable, _jsonable_value  # noqa: F401  (re-export)


class TraceLogger:
    """Streams trace records to a JSONL file (or an in-memory list).

    Usable as a context manager: on exit the logger unsubscribes from
    the bus (returning ``emit`` to its cheap no-listener path) and
    flushes and closes the file, so every record survives even when the
    recording process is about to die.
    """

    def __init__(
        self,
        bus: TraceBus,
        path: Optional[Union[str, Path]] = None,
        categories: Iterable[str] = ("*",),
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.records_written = 0
        self._handle = self.path.open("w") if self.path else None
        self._memory: List[TraceRecord] = []
        self._bus: Optional[TraceBus] = bus
        self._categories = tuple(categories)
        for category in self._categories:
            bus.subscribe(category, self._on_record)

    def _on_record(self, record: TraceRecord) -> None:
        self.records_written += 1
        if self._handle is not None:
            self._handle.write(
                json.dumps(
                    {
                        "t": record.time,
                        "cat": record.category,
                        "node": record.node,
                        "data": _jsonable(record.data),
                    }
                )
                + "\n"
            )
        else:
            self._memory.append(record)

    @property
    def records(self) -> List[TraceRecord]:
        return list(self._memory)

    def close(self) -> None:
        """Stop recording: unsubscribe, flush, and close the file."""
        if self._bus is not None:
            for category in self._categories:
                self._bus.unsubscribe(category, self._on_record)
            self._bus = None
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceLogger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read a JSONL trace back into records.

    A truncated final line (the writer died mid-record) is silently
    dropped; a malformed line anywhere else is still an error.
    """
    records = []
    with Path(path).open() as handle:
        lines = [line.strip() for line in handle]
    while lines and not lines[-1]:
        lines.pop()
    for lineno, line in enumerate(lines):
        if not line:
            continue
        try:
            raw = json.loads(line)
        except ValueError:
            if lineno == len(lines) - 1:
                break
            raise
        records.append(
            TraceRecord(
                time=raw["t"],
                category=raw["cat"],
                node=raw.get("node"),
                data=raw.get("data", {}),
            )
        )
    return records


@dataclass
class TraceSummary:
    """Run-level statistics derived from a trace."""

    record_count: int = 0
    first_time: Optional[float] = None
    last_time: Optional[float] = None
    by_category: Dict[str, int] = field(default_factory=dict)
    tx_bytes_by_node: Dict[int, int] = field(default_factory=dict)
    #: transmissions split by message class (interest / data /
    #: exploratory / reinforcement / control) — the split the hierarchy
    #: ablation reports, recoverable from any recorded run.
    tx_by_class: Dict[str, int] = field(default_factory=dict)
    tx_bytes_by_class: Dict[str, int] = field(default_factory=dict)
    collisions_by_node: Dict[int, int] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.first_time is None or self.last_time is None:
            return 0.0
        return self.last_time - self.first_time


@dataclass
class CampaignSummary:
    """Campaign-level statistics derived from a ``campaign.*`` JSONL log."""

    trials: int = 0
    done: int = 0
    failed: int = 0
    cached: int = 0
    wall_time: float = 0.0
    cpu_time: float = 0.0
    interrupted: bool = False
    trial_seconds: Dict[int, float] = field(default_factory=dict)

    @property
    def executed(self) -> int:
        return self.done + self.failed


def summarize_campaign(records: Iterable[TraceRecord]) -> CampaignSummary:
    """Fold a :mod:`repro.campaign` progress log (read back through
    :func:`load_trace`) into run-level statistics."""
    summary = CampaignSummary()
    for record in records:
        if record.category == "campaign.begin":
            summary.trials = record.data.get("total", 0)
        elif record.category == "campaign.trial":
            status = record.data.get("status")
            if status == "done":
                summary.done += 1
            elif status == "cached":
                summary.cached += 1
            else:
                summary.failed += 1
            index = record.data.get("index")
            if index is not None:
                summary.trial_seconds[index] = record.data.get("elapsed", 0.0)
        elif record.category == "campaign.end":
            summary.wall_time = record.data.get("wall_time", record.time)
            summary.cpu_time = record.data.get("cpu_time", 0.0)
            summary.interrupted = bool(record.data.get("interrupted"))
    return summary


def summarize_trace(records: Iterable[TraceRecord]) -> TraceSummary:
    """The offline analysis Section 7 wished for: per-node traffic and
    collision hot spots from a recorded run."""
    from repro.core.node import MESSAGE_CLASS_LABELS

    class_of = {t.name: label for t, label in MESSAGE_CLASS_LABELS.items()}
    summary = TraceSummary()
    categories: Counter = Counter()
    tx_bytes: Dict[int, int] = defaultdict(int)
    tx_class: Counter = Counter()
    tx_class_bytes: Counter = Counter()
    collisions: Dict[int, int] = defaultdict(int)
    for record in records:
        summary.record_count += 1
        if summary.first_time is None or record.time < summary.first_time:
            summary.first_time = record.time
        if summary.last_time is None or record.time > summary.last_time:
            summary.last_time = record.time
        categories[record.category] += 1
        if record.category == "diffusion.tx" and record.node is not None:
            nbytes = record.data.get("nbytes", 0)
            tx_bytes[record.node] += nbytes
            label = class_of.get(record.data.get("msg_type"))
            if label is not None:
                tx_class[label] += 1
                tx_class_bytes[label] += nbytes
        if record.category == "channel.collision" and record.node is not None:
            collisions[record.node] += 1
    summary.by_category = dict(categories)
    summary.tx_bytes_by_node = dict(tx_bytes)
    summary.tx_by_class = dict(tx_class)
    summary.tx_bytes_by_class = dict(tx_class_bytes)
    summary.collisions_by_node = dict(collisions)
    return summary
