"""Causal path reconstruction from recorded traces.

Every diffusion message carries a network-wide stable trace id (see
``Message.trace_id``), which the stack annotates onto ``path.origin``,
``diffusion.tx``, ``diffusion.rx``, ``app.deliver`` and ``path.drop``
records.  This module folds a recorded trace back into per-message
:class:`MessagePath` objects: the hops each copy took (with per-hop
latency), where it was delivered, and — for copies that died — which
layer killed them and why.

This answers the question the paper's authors could only approach with
a second wired monitoring network (Section 7): *why* did a given data
message not arrive, and which path did the ones that arrived take?
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim import TraceRecord

#: message types whose non-delivery the loss table reports by default
DATA_TYPES = ("DATA", "EXPLORATORY_DATA")


@dataclass
class HopRecord:
    """One radio hop a message copy took: src transmitted, dst received."""

    hop: int                      # 1-based hop index along the path
    src: int
    dst: int
    sent_at: float
    received_at: float

    @property
    def latency(self) -> float:
        return self.received_at - self.sent_at


@dataclass
class DropRecord:
    """One copy of a message dying somewhere in the stack."""

    time: float
    node: int
    reason: str                   # e.g. "collision", "no-route", ...
    layer: str                    # "core" | "mac" | "link" | "radio"


@dataclass
class Delivery:
    """An application-level delivery of the message at a sink."""

    time: float
    node: int
    hops: int


@dataclass
class MessagePath:
    """Everything the trace knows about one message's journey."""

    trace: str
    msg_type: Optional[str] = None
    origin_node: Optional[int] = None
    origin_time: Optional[float] = None
    parent: Optional[str] = None  # trace id of the message that caused this one
    hops: List[HopRecord] = field(default_factory=list)
    deliveries: List[Delivery] = field(default_factory=list)
    drops: List[DropRecord] = field(default_factory=list)
    unmatched_tx: int = 0         # transmissions never heard anywhere

    @property
    def delivered(self) -> bool:
        return bool(self.deliveries)

    @property
    def loss_label(self) -> Optional[str]:
        """Why this message was not delivered (None when it was).

        The label is the reason of the *last* drop on record: copies of
        a flooded message die at many places, and the final drop is the
        moment the last live copy disappeared.  Messages with no drop on
        record (still queued when the run ended, or simply never
        delivered to a matching subscription) are labelled
        ``"in-flight"``.
        """
        if self.delivered:
            return None
        if not self.drops:
            return "in-flight"
        return max(self.drops, key=lambda d: d.time).reason

    def route_to(self, node: int, hops: int) -> List[HopRecord]:
        """The hop chain that carried this message to ``node``.

        Walks backward from the delivery hop: the copy delivered at
        ``node`` with hop count ``h`` arrived over the hop whose
        destination is ``node`` at index ``h``; its source received the
        message over hop ``h - 1``; and so on back to the origin.
        Returns the chain origin-first; empty when the trace lacks the
        records to stitch it (e.g. recording started mid-run).
        """
        by_dst: Dict[Tuple[int, int], HopRecord] = {}
        for hop in self.hops:
            key = (hop.hop, hop.dst)
            # Keep the earliest arrival per (index, dst): later copies of
            # a flooded message reached the same place by slower paths.
            if key not in by_dst or hop.received_at < by_dst[key].received_at:
                by_dst[key] = hop
        chain: List[HopRecord] = []
        current, index = node, hops
        while index > 0:
            hop = by_dst.get((index, current))
            if hop is None:
                break
            chain.append(hop)
            current, index = hop.src, index - 1
        chain.reverse()
        return chain

    def delivery_routes(self) -> List[Tuple[Delivery, List[HopRecord]]]:
        """Each delivery paired with its reconstructed hop chain."""
        return [
            (delivery, self.route_to(delivery.node, delivery.hops))
            for delivery in self.deliveries
        ]


def reconstruct_paths(records: Iterable[TraceRecord]) -> Dict[str, MessagePath]:
    """Fold trace records into per-trace-id :class:`MessagePath` objects.

    Consumes ``path.origin``, ``diffusion.tx``, ``diffusion.rx``,
    ``app.deliver`` and ``path.drop`` records; everything else is
    ignored, so a full ``"*"`` recording works as well as a targeted
    one.  TX and RX records pair up through (trace id, sending node,
    hop index): a reception names its link source, and the forwarded
    copy's hop count ties it to the transmission that carried it.
    """
    paths: Dict[str, MessagePath] = {}
    # (trace, src node, hop index) -> [tx times], FIFO per key.  One
    # broadcast tx may satisfy many receptions, so entries are matched,
    # never consumed.
    pending_tx: Dict[Tuple[str, int, int], List[float]] = defaultdict(list)
    matched_tx: set = set()

    def path_for(trace: str) -> MessagePath:
        path = paths.get(trace)
        if path is None:
            path = MessagePath(trace=trace)
            paths[trace] = path
        return path

    ordered = sorted(records, key=lambda r: r.time)
    for record in ordered:
        trace = record.data.get("trace")
        if not trace:
            continue
        if record.category == "path.origin":
            path = path_for(trace)
            path.msg_type = record.data.get("msg_type")
            path.origin_node = record.node
            path.origin_time = record.time
            path.parent = record.data.get("parent")
        elif record.category == "diffusion.tx":
            hops = record.data.get("hops")
            if record.node is not None and hops is not None:
                path_for(trace)
                pending_tx[(trace, record.node, hops)].append(record.time)
        elif record.category == "diffusion.rx":
            src = record.data.get("src")
            hops = record.data.get("hops")
            if record.node is None or src is None or hops is None:
                continue
            key = (trace, src, hops)
            times = pending_tx.get(key)
            if not times:
                continue
            # The transmission that carried this copy is the latest one
            # from that node at that hop index not after the reception.
            sent_at = None
            for t in reversed(times):
                if t <= record.time:
                    sent_at = t
                    break
            if sent_at is None:
                continue
            matched_tx.add((key, sent_at))
            path_for(trace).hops.append(
                HopRecord(
                    hop=hops,
                    src=src,
                    dst=record.node,
                    sent_at=sent_at,
                    received_at=record.time,
                )
            )
        elif record.category == "app.deliver":
            hops = record.data.get("hops")
            if record.node is not None and hops is not None:
                path_for(trace).deliveries.append(
                    Delivery(time=record.time, node=record.node, hops=hops)
                )
        elif record.category == "path.drop":
            if record.node is not None:
                path_for(trace).drops.append(
                    DropRecord(
                        time=record.time,
                        node=record.node,
                        reason=record.data.get("reason", "unknown"),
                        layer=record.data.get("layer", "unknown"),
                    )
                )

    for (key, times) in pending_tx.items():
        trace = key[0]
        unmatched = sum(1 for t in times if (key, t) not in matched_tx)
        paths[trace].unmatched_tx += unmatched
    return paths


def loss_attribution(
    paths: Dict[str, MessagePath],
    msg_types: Iterable[str] = DATA_TYPES,
) -> Dict[str, int]:
    """Count undelivered messages of the given types by loss label."""
    wanted = set(msg_types)
    labels: Counter = Counter()
    for path in paths.values():
        if path.msg_type not in wanted:
            continue
        label = path.loss_label
        if label is not None:
            labels[label] += 1
    return dict(labels)


def trace_timeline(
    records: Iterable[TraceRecord], trace: str
) -> List[TraceRecord]:
    """Every record that mentions one trace id, time-ordered."""
    return sorted(
        (r for r in records if r.data.get("trace") == trace),
        key=lambda r: r.time,
    )


# -- text rendering (shared by the CLI and notebooks) -----------------------


def format_route(chain: List[HopRecord]) -> str:
    """``12 -(3.1ms)-> 7 -(2.9ms)-> 28`` style route rendering."""
    if not chain:
        return "(no reconstructable route)"
    parts = [str(chain[0].src)]
    for hop in chain:
        parts.append(f"-({hop.latency * 1000.0:.1f}ms)-> {hop.dst}")
    return " ".join(parts)


def format_path(path: MessagePath) -> str:
    """A multi-line human summary of one message's journey."""
    lines = [
        f"trace {path.trace}  type={path.msg_type or '?'}"
        f"  origin={path.origin_node if path.origin_node is not None else '?'}"
        + (f"  parent={path.parent}" if path.parent else "")
    ]
    if path.deliveries:
        for delivery, chain in path.delivery_routes():
            lines.append(
                f"  delivered at node {delivery.node}"
                f" t={delivery.time:.4f}s after {delivery.hops} hop(s): "
                + format_route(chain)
            )
    else:
        lines.append(f"  NOT delivered: {path.loss_label}")
    # Flooded messages shed dozens of copies; list drops individually
    # only while that stays readable, else fold into per-cause counts.
    if len(path.drops) <= 8:
        for drop in path.drops:
            lines.append(
                f"  drop t={drop.time:.4f}s node={drop.node}"
                f" layer={drop.layer} reason={drop.reason}"
            )
    else:
        by_cause = Counter(
            (drop.layer, drop.reason) for drop in path.drops
        )
        folded = ", ".join(
            f"{layer}/{reason}={count}"
            for (layer, reason), count in sorted(
                by_cause.items(), key=lambda kv: -kv[1]
            )
        )
        lines.append(f"  {len(path.drops)} copies dropped: {folded}")
    if path.unmatched_tx:
        lines.append(f"  {path.unmatched_tx} transmission(s) heard by nobody")
    return "\n".join(lines)


def format_loss_table(attribution: Dict[str, int]) -> str:
    """Render a loss-attribution histogram as an aligned table."""
    if not attribution:
        return "no undelivered data messages"
    width = max(len(reason) for reason in attribution)
    total = sum(attribution.values())
    lines = [f"{'reason'.ljust(width)}  count  share"]
    for reason, count in sorted(attribution.items(), key=lambda kv: -kv[1]):
        lines.append(
            f"{reason.ljust(width)}  {count:5d}  {count / total:6.1%}"
        )
    lines.append(f"{'total'.ljust(width)}  {total:5d}")
    return "\n".join(lines)
