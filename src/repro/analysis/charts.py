"""Terminal line charts for the experiment harnesses.

The paper's figures are two-to-four-series line plots; these helpers
render the same shapes as ASCII so ``python -m repro.experiments.*``
shows the figure, not just the table, with no plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: plot markers assigned to series in insertion order
MARKERS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, steps: int) -> int:
    if high <= low:
        return 0
    fraction = (value - low) / (high - low)
    return max(0, min(steps - 1, round(fraction * (steps - 1))))


def line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render ``{name: [(x, y), ...]}`` as an ASCII chart.

    Series are drawn in insertion order with markers from
    :data:`MARKERS`; later series overwrite earlier ones on clashes.
    """
    points = [
        (x, y) for values in series.values() for x, y in values
    ]
    if not points:
        raise ValueError("nothing to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if y_low == y_high:
        y_low, y_high = y_low - 1.0, y_high + 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, values) in zip(MARKERS, series.items()):
        for x, y in values:
            col = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(len(f"{y_high:.0f}"), len(f"{y_low:.0f}")) + 1
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_high:.0f}".rjust(label_width)
        elif i == height - 1:
            label = f"{y_low:.0f}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + "_" + "_" * (width + 1))
    x_axis = f"{x_low:.0f}".ljust(width - len(f"{x_high:.0f}")) + f"{x_high:.0f}"
    lines.append(" " * (label_width + 2) + x_axis)
    if x_label:
        lines.append(" " * (label_width + 2) + x_label.center(width))
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(MARKERS, series)
    )
    lines.append(f"{y_label + '  ' if y_label else ''}{legend}")
    return "\n".join(lines)


def bar_chart(
    values: Dict[str, float],
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal bars, proportional to the maximum value."""
    if not values:
        raise ValueError("nothing to plot")
    peak = max(values.values())
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        length = 0 if peak <= 0 else round(width * value / peak)
        lines.append(f"{name.rjust(label_width)} |{'#' * length} {value:.1f}")
    return "\n".join(lines)
