"""Measurement taps over the trace bus."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set

from repro.sim import TraceBus, TraceRecord


class TrafficMeter:
    """Accumulates bytes/messages sent by diffusion modules.

    Subscribes to the ``diffusion.tx`` trace category; optionally breaks
    totals down per node and per message type.
    """

    def __init__(self, bus: TraceBus) -> None:
        self.total_bytes = 0
        self.total_messages = 0
        self.bytes_by_node: Dict[int, int] = defaultdict(int)
        self.bytes_by_type: Dict[str, int] = defaultdict(int)
        self.messages_by_type: Dict[str, int] = defaultdict(int)
        bus.subscribe("diffusion.tx", self._on_tx)

    def _on_tx(self, record: TraceRecord) -> None:
        nbytes = record.data.get("nbytes", 0)
        msg_type = record.data.get("msg_type", "?")
        self.total_bytes += nbytes
        self.total_messages += 1
        if record.node is not None:
            self.bytes_by_node[record.node] += nbytes
        self.bytes_by_type[msg_type] += nbytes
        self.messages_by_type[msg_type] += 1

    def reset(self) -> None:
        self.total_bytes = 0
        self.total_messages = 0
        self.bytes_by_node.clear()
        self.bytes_by_type.clear()
        self.messages_by_type.clear()


class DeliveryRecorder:
    """Records application-level deliveries (``app.deliver`` traces)."""

    def __init__(self, bus: TraceBus) -> None:
        self.deliveries: List[TraceRecord] = []
        bus.subscribe("app.deliver", self.deliveries.append)

    def count(self, node: Optional[int] = None) -> int:
        if node is None:
            return len(self.deliveries)
        return sum(1 for r in self.deliveries if r.node == node)

    def origins_seen(self, node: int) -> Set[int]:
        return {
            r.data.get("origin")
            for r in self.deliveries
            if r.node == node and r.data.get("origin") is not None
        }
