"""The paper's analytical traffic model (Section 6.1).

"We can confirm these results with a simple traffic model.  We
approximate all messages as 127B long and add together interest
messages (sent every 60s and flooded from each node), reinforcement
messages (sent on the reinforced path between the sink and each
source), simple data messages (9 out of every 10 data messages, sent
only on the reinforced path, and either aggregated or not), and
exploratory data messages (1 out of every 10 data messages, sent from
each source and flooded in turn from each node, again possibly
aggregated).  ...  Summing the message cost and normalizing per event
we expect aggregation to provide a flat 990B/event independent of the
number of sources, and we expect bytes sent per event to increase from
990 to 3289B/event without aggregation as the number of sources rise
from 1 to 4."

With N=14 nodes, 5-hop source-sink paths, 127-byte messages, one data
message per 6 s and one exploratory per ten data messages, the model
below yields 990 B/event aggregated (flat in the number of sources) and
990→3429 B/event unaggregated — the paper quotes 3289 at four sources,
a 4% difference we attribute to an unstated rounding in the paper's
arithmetic (the shape and the single-source anchor are exact).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TrafficBreakdown:
    """Per-event byte cost split by message class."""

    interest: float
    exploratory: float
    data: float
    reinforcement: float

    @property
    def total(self) -> float:
        return self.interest + self.exploratory + self.data + self.reinforcement


@dataclass(frozen=True)
class TrafficModel:
    """Parameters of the Section 6.1 model, defaulting to the testbed's."""

    nodes: int = 14
    path_hops: int = 5
    message_bytes: int = 127
    data_interval: float = 6.0
    interest_interval: float = 60.0
    exploratory_ratio: int = 10   # one exploratory per this many data msgs

    def _flood_cost(self) -> float:
        """Bytes for one network-wide flood: every node sends once."""
        return self.nodes * self.message_bytes

    def breakdown(self, sources: int, aggregated: bool) -> TrafficBreakdown:
        """Per-distinct-event byte costs for ``sources`` sources."""
        if sources < 1:
            raise ValueError("need at least one source")
        events_per_interest = self.interest_interval / self.data_interval
        interest = self._flood_cost() / events_per_interest

        per_source_exploratory = self._flood_cost() / self.exploratory_ratio
        per_source_data = (
            (self.exploratory_ratio - 1)
            / self.exploratory_ratio
            * self.path_hops
            * self.message_bytes
        )
        per_source_reinforcement = (
            self.path_hops * self.message_bytes / self.exploratory_ratio
        )

        if aggregated:
            # Duplicates die at the first hop: network-wide cost is that
            # of a single source, independent of how many report.
            multiplier = 1
        else:
            multiplier = sources
        return TrafficBreakdown(
            interest=interest,
            exploratory=multiplier * per_source_exploratory,
            data=multiplier * per_source_data,
            reinforcement=multiplier * per_source_reinforcement,
        )

    def bytes_per_event(self, sources: int, aggregated: bool) -> float:
        return self.breakdown(sources, aggregated).total

    def savings(self, sources: int) -> float:
        """Fractional traffic saved by aggregation at ``sources`` sources."""
        without = self.bytes_per_event(sources, aggregated=False)
        with_agg = self.bytes_per_event(sources, aggregated=True)
        return 1.0 - with_agg / without

    def table(self, max_sources: int = 4):
        """Rows mirroring Figure 8's two curves."""
        rows = []
        for sources in range(1, max_sources + 1):
            rows.append(
                {
                    "sources": sources,
                    "aggregated": self.bytes_per_event(sources, True),
                    "unaggregated": self.bytes_per_event(sources, False),
                    "savings": self.savings(sources),
                }
            )
        return rows
