"""Statistics helpers: the paper reports means with 95% confidence
intervals over 3–5 trials, so small-sample t intervals matter."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

# Two-sided Student-t critical values for 95% confidence, by degrees of
# freedom.  Kept as a table so the package has no hard scipy dependency;
# scipy is used to cross-check in the tests.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980,
}


def _t_critical_95(dof: int) -> float:
    if dof < 1:
        raise ValueError("need at least 2 samples for an interval")
    if dof in _T95:
        return _T95[dof]
    thresholds = sorted(_T95)
    for limit in thresholds:
        if dof <= limit:
            return _T95[limit]
    return 1.96  # asymptotic


@dataclass(frozen=True)
class ConfidenceInterval:
    """Mean with a symmetric half-width."""

    mean: float
    halfwidth: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.halfwidth

    @property
    def high(self) -> float:
        return self.mean + self.halfwidth

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.halfwidth:.1f} (n={self.n})"


def mean_ci(values: Sequence[float]) -> ConfidenceInterval:
    """Mean and 95% CI half-width of ``values`` (Student-t)."""
    n = len(values)
    if n == 0:
        raise ValueError("no samples")
    mean = sum(values) / n
    if n == 1:
        return ConfidenceInterval(mean=mean, halfwidth=0.0, n=1)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    sem = math.sqrt(variance / n)
    return ConfidenceInterval(
        mean=mean, halfwidth=_t_critical_95(n - 1) * sem, n=n
    )
