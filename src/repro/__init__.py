"""repro — a reproduction of "Building Efficient Wireless Sensor
Networks with Low-Level Naming" (Heidemann et al., SOSP 2001).

The package implements the paper's full software architecture:

* attribute-based naming with one-way/two-way matching
  (:mod:`repro.naming`);
* directed diffusion — interests, gradients, exploratory data,
  reinforcement — with the publish/subscribe and filter APIs
  (:mod:`repro.core`);
* in-network processing filters: aggregation/suppression, counting
  aggregation, logging, GEAR-style geographic pruning
  (:mod:`repro.filters`);
* micro-diffusion and the tiered gateway (:mod:`repro.micro`);
* the simulated substrate standing in for the PC/104 testbed: event
  kernel, radio channel, CSMA/TDMA MACs, fragmentation, energy model
  (:mod:`repro.sim`, :mod:`repro.radio`, :mod:`repro.mac`,
  :mod:`repro.link`, :mod:`repro.energy`);
* the ISI 14-node testbed and experiment harnesses regenerating every
  figure of the evaluation (:mod:`repro.testbed`,
  :mod:`repro.experiments`, :mod:`repro.analysis`).

Quickstart::

    from repro import AttributeVector, Key
    from repro.testbed import SensorNetwork
    from repro.radio import Topology

    net = SensorNetwork(Topology.line(5, spacing=15.0))
    sink, source = net.api(0), net.api(4)
    sub = AttributeVector.builder().eq(Key.TYPE, "light").build()
    sink.subscribe(sub, lambda attrs, msg: print("got", attrs))
    pub = source.publish(
        AttributeVector.builder().actual(Key.TYPE, "light").build())
    net.sim.schedule(1.0, source.send, pub,
                     AttributeVector.builder().actual(Key.SEQUENCE, 0).build())
    net.run(until=10.0)
"""

from repro.naming import (
    Attribute,
    AttributeVector,
    Operator,
    ValueType,
    one_way_match,
    two_way_match,
)
from repro.naming.keys import ClassValue, Key
from repro.core import (
    DiffusionConfig,
    DiffusionNode,
    DiffusionRouting,
    Message,
    MessageType,
)

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "AttributeVector",
    "Operator",
    "ValueType",
    "one_way_match",
    "two_way_match",
    "Key",
    "ClassValue",
    "DiffusionConfig",
    "DiffusionNode",
    "DiffusionRouting",
    "Message",
    "MessageType",
    "__version__",
]
