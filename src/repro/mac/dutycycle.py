"""Duty-cycled CSMA: the power-aware MAC the paper calls for.

Section 6.1: "energy-conscious protocols like PAMAS or TDMA are
necessary for long-lived sensor networks.  We are currently
experimenting with power-aware MAC approaches."  This MAC implements
the simplest such design (the scheme S-MAC later formalized): all nodes
share a synchronized frame of ``period`` seconds and keep their radios
on only for the first ``duty_cycle`` fraction of it.  Transmissions are
deferred to awake windows; a sleeping radio hears nothing, so a
transmission must also *fit* inside the window.

The energy win is exactly the paper's Pd analysis: the listen term
scales by the duty cycle while send/receive stay proportional to
traffic.  Attaching an :class:`~repro.energy.EnergyLedger` with the
matching ``duty_cycle`` makes the ledger arithmetic agree with the
radio's actual sleep schedule.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.mac.csma import CsmaMac
from repro.radio.modem import Modem
from repro.sim import Simulator


class DutyCycledCsmaMac(CsmaMac):
    """CSMA confined to synchronized awake windows."""

    def __init__(
        self,
        sim: Simulator,
        modem: Modem,
        duty_cycle: float = 0.1,
        period: float = 1.0,
        rng: Optional[random.Random] = None,
        **csma_kwargs,
    ) -> None:
        if not 0.0 < duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be within (0, 1]")
        if period <= 0:
            raise ValueError("period must be positive")
        super().__init__(sim, modem, rng=rng, **csma_kwargs)
        self.duty_cycle = duty_cycle
        self.period = period
        if modem.energy is not None:
            modem.energy.duty_cycle = duty_cycle
        self.deferred_to_window = 0
        if duty_cycle < 1.0:
            self._apply_schedule()

    # -- schedule --------------------------------------------------------------

    @property
    def awake_span(self) -> float:
        return self.duty_cycle * self.period

    def is_awake(self, now: float) -> bool:
        return (now % self.period) < self.awake_span

    def next_wakeup(self, now: float) -> float:
        """Absolute time of the next awake-window start (>= now)."""
        frame_start = (now // self.period) * self.period
        if now < frame_start + self.awake_span:
            return now  # already awake
        return frame_start + self.period

    def window_time_left(self, now: float) -> float:
        if not self.is_awake(now):
            return 0.0
        return self.awake_span - (now % self.period)

    def _apply_schedule(self) -> None:
        now = self.sim.now
        if self.is_awake(now):
            self.modem.sleeping = False
            frame_start = (now // self.period) * self.period
            next_change = frame_start + self.awake_span
        else:
            # Never park the radio mid-transmission; the schedule check
            # reruns right after the fragment completes.
            if self.modem.transmitting:
                self.sim.schedule(0.001, self._apply_schedule, name="dmac.retry")
                return
            self.modem.sleeping = True
            next_change = self.next_wakeup(now + 1e-9)
        self.sim.schedule_at(
            max(next_change, now + 1e-9), self._apply_schedule, name="dmac.schedule"
        )

    # -- transmission gating ------------------------------------------------------

    def _attempt(self) -> None:
        if not self._queue:
            self._busy = False
            return
        now = self.sim.now
        _, nbytes, _ = self._queue[0]
        airtime = self.modem.params.fragment_airtime(nbytes)
        if self.duty_cycle < 1.0 and (
            not self.is_awake(now) or self.window_time_left(now) < airtime
        ):
            self.deferred_to_window += 1
            wake = self.next_wakeup(now + 1e-9)
            jitter = self.rng.random() * self.min_backoff
            self.sim.schedule_at(
                max(wake, now) + jitter, self._attempt, name="dmac.defer"
            )
            return
        super()._attempt()
