"""Slotted TDMA MAC: the energy-conserving design point.

Section 6.1 argues that long-lived sensor networks need MACs that sleep
("TDMA radios such as in WINSng nodes may have duty cycles of 10-15%").
Each node owns one slot per frame and transmits only there; collisions
between slot owners are impossible, and the radio can sleep outside its
listen obligations, which the energy model captures as a duty cycle.
"""

from __future__ import annotations

from typing import Optional

from repro.mac.base import Mac
from repro.radio.modem import Modem
from repro.sim import Simulator, TraceBus
from repro.sim.metrics import MetricsRegistry


class TdmaMac(Mac):
    """Fixed-assignment TDMA: node ``slot_index`` of ``slot_count``."""

    def __init__(
        self,
        sim: Simulator,
        modem: Modem,
        slot_index: int,
        slot_count: int,
        slot_duration: float = 0.05,
        guard_time: float = 0.002,
        queue_limit: int = 64,
        trace: Optional[TraceBus] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not 0 <= slot_index < slot_count:
            raise ValueError("slot_index must be within [0, slot_count)")
        super().__init__(sim, modem, queue_limit=queue_limit, trace=trace,
                         metrics=metrics)
        self.slot_index = slot_index
        self.slot_count = slot_count
        self.slot_duration = slot_duration
        self.guard_time = guard_time

    @property
    def frame_duration(self) -> float:
        return self.slot_count * self.slot_duration

    def next_slot_start(self, now: float) -> float:
        """Absolute time our next slot opens (>= now)."""
        frame_start = (now // self.frame_duration) * self.frame_duration
        slot_start = frame_start + self.slot_index * self.slot_duration
        while slot_start < now:
            slot_start += self.frame_duration
        return slot_start

    def duty_cycle(self) -> float:
        """Fraction of time the radio must listen: everyone else's slots.

        A non-base-station in a TDMA net listens only during slots that
        can carry traffic for it; with no further schedule information
        that is every slot but its own.
        """
        return (self.slot_count - 1) / self.slot_count

    def _schedule_attempt(self, first: bool) -> None:
        now = self.sim.now
        opens = self.next_slot_start(now) + self.guard_time
        self.sim.schedule(max(0.0, opens - now), self._attempt, name="tdma.slot")

    def _attempt(self) -> None:
        if not self._queue:
            self._busy = False
            return
        # Check the fragment fits in the remainder of our slot.
        _, nbytes, _ = self._queue[0]
        airtime = self.modem.params.fragment_airtime(nbytes)
        if not self._in_own_slot(self.sim.now) or self._slot_time_left(self.sim.now) < airtime:
            self._schedule_attempt(first=False)
            return
        self._transmit_head()

    def _in_own_slot(self, now: float) -> bool:
        position = now % self.frame_duration
        start = self.slot_index * self.slot_duration
        return start <= position < start + self.slot_duration

    def _slot_time_left(self, now: float) -> float:
        position = now % self.frame_duration
        end = self.slot_index * self.slot_duration + self.slot_duration
        return max(0.0, end - position)
