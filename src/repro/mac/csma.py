"""Carrier-sense MAC without RTS/CTS or ARQ (the testbed MAC).

Before sending, the node listens; if the carrier is busy it backs off a
random interval and tries again.  There is no ACK and no retransmission,
and carrier sensing happens at the *sender* — so two sources that cannot
hear each other (hidden terminals) happily collide at a common receiver,
which the paper identifies as "endemic to our multihop topology".
"""

from __future__ import annotations

import random
from typing import Optional

from repro.mac.base import Mac
from repro.radio.modem import Modem
from repro.sim import Simulator, TraceBus
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import make_rng


class CsmaMac(Mac):
    """Non-persistent CSMA with bounded exponential backoff."""

    def __init__(
        self,
        sim: Simulator,
        modem: Modem,
        rng: Optional[random.Random] = None,
        min_backoff: float = 0.005,
        max_backoff: float = 0.32,
        interframe_gap: float = 0.002,
        queue_limit: int = 64,
        trace: Optional[TraceBus] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(sim, modem, queue_limit=queue_limit, trace=trace,
                         metrics=metrics)
        # A shared random.Random(0) here would give every node the same
        # backoff stream — contending nodes would draw identical delays
        # and re-collide forever.  Derive a per-node stream instead.
        self.rng = rng or make_rng(0, f"csma-mac:{modem.node_id}")
        self.min_backoff = min_backoff
        self.max_backoff = max_backoff
        self.interframe_gap = interframe_gap
        self._backoff_stage = 0

    def _schedule_attempt(self, first: bool) -> None:
        # A short jittered gap decorrelates nodes that queued a broadcast
        # at the same instant (e.g. a flooded interest rebroadcast).
        delay = self.interframe_gap * (1.0 + self.rng.random())
        self.sim.schedule(delay, self._attempt, name="csma.attempt")

    def _attempt(self) -> None:
        if not self._queue:
            self._busy = False
            return
        if self.modem.carrier_busy() or self.modem.transmitting:
            self.stats.backoffs += 1
            self._m_backoffs.inc()
            self._backoff_stage = min(self._backoff_stage + 1, 6)
            window = min(self.max_backoff, self.min_backoff * (2 ** self._backoff_stage))
            delay = self.min_backoff + self.rng.random() * window
            self.sim.schedule(delay, self._attempt, name="csma.backoff")
            return
        self._backoff_stage = 0
        self._transmit_head()
