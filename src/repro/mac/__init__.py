"""Medium access control.

The paper's testbed MAC is "quite unsophisticated, performing only
simple carrier detection and lacking RTS/CTS or ARQ" (Section 6.1) —
:class:`~repro.mac.csma.CsmaMac` reproduces exactly that, hidden
terminals and all.  :class:`~repro.mac.tdma.TdmaMac` is the
energy-conserving alternative the paper says long-lived networks need
(duty cycles of 10–15% on WINSng-style nodes).
"""

from repro.mac.base import Mac, MacStats
from repro.mac.csma import CsmaMac
from repro.mac.dutycycle import DutyCycledCsmaMac
from repro.mac.tdma import TdmaMac

__all__ = ["Mac", "MacStats", "CsmaMac", "DutyCycledCsmaMac", "TdmaMac"]
