"""Common MAC machinery: the transmit queue and statistics."""

from __future__ import annotations

from dataclasses import dataclass
from collections import deque
from typing import Any, Deque, Optional, Tuple

from repro.radio.modem import BROADCAST_ADDRESS, Modem
from repro.sim import Simulator, TraceBus, trace_id_of
from repro.sim.metrics import MetricsRegistry, current_registry


@dataclass
class MacStats:
    """Counters exposed for experiments and debugging."""

    enqueued: int = 0
    transmitted: int = 0
    dropped_queue_full: int = 0
    backoffs: int = 0

    def reset(self) -> None:
        self.enqueued = 0
        self.transmitted = 0
        self.dropped_queue_full = 0
        self.backoffs = 0


class Mac:
    """Base class: a FIFO of fragments feeding the modem.

    Subclasses decide *when* the head of the queue may be transmitted by
    implementing :meth:`_schedule_attempt`.
    """

    def __init__(
        self,
        sim: Simulator,
        modem: Modem,
        queue_limit: int = 64,
        trace: Optional[TraceBus] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.modem = modem
        self.queue_limit = queue_limit
        self.stats = MacStats()
        self.trace = trace or TraceBus()
        registry = metrics if metrics is not None else current_registry()
        self._m_enqueued = registry.counter("mac.enqueued")
        self._m_transmitted = registry.counter("mac.transmitted")
        self._m_backoffs = registry.counter("mac.backoffs")
        self._m_queue_drops = registry.counter("mac.drops", reason="queue-full")
        self._m_queue_depth = registry.histogram("mac.queue_depth")
        self._queue: Deque[Tuple[Any, int, Optional[int]]] = deque()
        self._busy = False

    @property
    def node_id(self) -> int:
        return self.modem.node_id

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def enqueue(
        self,
        payload: Any,
        nbytes: int,
        link_dst: Optional[int] = BROADCAST_ADDRESS,
    ) -> bool:
        """Queue one fragment; returns False when the queue overflowed."""
        if len(self._queue) >= self.queue_limit:
            self.stats.dropped_queue_full += 1
            self._m_queue_drops.inc()
            trace_id = trace_id_of(payload)
            if trace_id is not None:
                self.trace.emit(
                    self.sim.now,
                    "path.drop",
                    node=self.node_id,
                    trace=trace_id,
                    reason="queue-full",
                    layer="mac",
                )
            return False
        self._queue.append((payload, nbytes, link_dst))
        self.stats.enqueued += 1
        self._m_enqueued.inc()
        self._m_queue_depth.observe(len(self._queue))
        if not self._busy:
            self._busy = True
            self._schedule_attempt(first=True)
        return True

    # -- subclass protocol ----------------------------------------------------

    def _schedule_attempt(self, first: bool) -> None:
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------------

    def _transmit_head(self) -> None:
        payload, nbytes, link_dst = self._queue.popleft()
        self.stats.transmitted += 1
        self._m_transmitted.inc()
        self.modem.transmit_fragment(
            payload, nbytes, link_dst, on_done=self._after_transmit
        )

    def _after_transmit(self) -> None:
        if self._queue:
            self._schedule_attempt(first=False)
        else:
            self._busy = False
