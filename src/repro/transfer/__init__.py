"""Reliable transfer of large, persistent data objects over diffusion.

Paper Section 3.1: "Recovery from data loss is currently left to the
application.  While simple applications with transient data ... need no
additional recovery mechanism, we are also developing retransmission
scheme for applications that transfer large, persistent data objects."

This package is that scheme (the design later published as RMST): an
object is split into blocks, each a named diffusion data message; the
receiver tracks a hole map and requests missing blocks with NACKs that
travel as ordinary named data back toward the source; blocks and
repairs ride the same gradients as everything else.
"""

from repro.transfer.blocks import BLOCK_PAYLOAD_BYTES, DataObject, split_object
from repro.transfer.sender import (
    ACK_TYPE,
    REPAIR_TYPE,
    TRANSFER_TYPE,
    BlockSender,
    RetransmitPolicy,
)
from repro.transfer.receiver import BlockReceiver, TransferStats
from repro.transfer.caching import BlockCacheFilter

__all__ = [
    "ACK_TYPE",
    "REPAIR_TYPE",
    "TRANSFER_TYPE",
    "DataObject",
    "split_object",
    "BLOCK_PAYLOAD_BYTES",
    "BlockSender",
    "BlockReceiver",
    "RetransmitPolicy",
    "TransferStats",
    "BlockCacheFilter",
]
