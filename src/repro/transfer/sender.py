"""Sender side of the block-transfer scheme.

The sender publishes blocks under ``(TYPE IS <transfer type>, INSTANCE
IS <object id>)``, paces them out, and subscribes to repair requests for
its objects.  A repair request names missing block indices; the sender
re-sends exactly those blocks.  Both block and repair traffic are plain
named data — no new mechanism below the application.

Disruption tolerance is opt-in: handing the constructor a
:class:`RetransmitPolicy` (plus a per-node ``make_rng`` stream) arms
per-block retransmission timers on the sim kernel — a block stays on a
jittered exponential-backoff schedule until the receiver's ``bulk-ack``
covers it or the bounded retry budget runs out.  Without a policy the
sender behaves exactly as before (the DTN equivalence gate depends on
that).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.api import DiffusionRouting, PublicationHandle
from repro.naming import Attribute, AttributeVector, Operator
from repro.naming.keys import Key
from repro.sim.metrics import current_registry
from repro.transfer.blocks import DataObject

TRANSFER_TYPE = "bulk-transfer"
REPAIR_TYPE = "bulk-repair"
ACK_TYPE = "bulk-ack"


@dataclass(frozen=True)
class RetransmitPolicy:
    """Hop-by-hop NACK/ACK retransmission knobs (DTN mode).

    Retry ``n`` of a block waits ``min(max_timeout, ack_timeout *
    backoff_factor**n)`` seconds plus a uniform seed-deterministic
    jitter draw in ``[0, jitter * delay)``.
    """

    ack_timeout: float = 10.0
    backoff_factor: float = 2.0
    max_timeout: float = 40.0
    jitter: float = 0.4
    max_retransmits: int = 4
    #: retries below this count re-send on the reinforced path; only
    #: later ones flood (silence may mean the path itself is gone, but
    #: flooding every retry congests the channel it is trying to heal).
    flood_after: int = 3
    #: receiver side — acknowledge after every this many fresh blocks.
    ack_every: int = 8
    #: receiver side — how many recent indices one ack enumerates.
    ack_window: int = 16


def encode_block_list(indices) -> bytes:
    """Missing-block list as a compact uint16 vector."""
    return b"".join(struct.pack("<H", i) for i in sorted(indices))


def decode_block_list(payload: bytes):
    if len(payload) % 2:
        raise ValueError("repair payload must be uint16-aligned")
    return [
        struct.unpack_from("<H", payload, offset)[0]
        for offset in range(0, len(payload), 2)
    ]


class BlockSender:
    """Serves one or more objects to interested receivers."""

    def __init__(
        self,
        api: DiffusionRouting,
        block_interval: float = 0.5,
        rampup_delay: float = 1.5,
        transfer_type: str = TRANSFER_TYPE,
        reliability: Optional[RetransmitPolicy] = None,
        rng=None,
    ) -> None:
        self.api = api
        self.block_interval = block_interval
        # Pause between the first (exploratory) block and the stream:
        # the first block's flood triggers reinforcement, and plain
        # blocks sent before the path is reinforced are dropped.
        self.rampup_delay = rampup_delay
        self.transfer_type = transfer_type
        self.reliability = reliability
        self.rng = rng
        self.objects: Dict[str, DataObject] = {}
        self.blocks_sent = 0
        self.repairs_served = 0
        self.retransmits = 0
        self.acks_received = 0
        #: (object id, index) -> trace ids of every transmitted copy;
        #: the dtn scenario joins these against ``path.drop`` records
        #: to attribute every lost block to a cause.
        self.block_traces: Dict[Tuple[str, int], List[str]] = {}
        registry = current_registry()
        self._m_blocks_sent = registry.counter("transfer.blocks_sent")
        self._m_repairs_served = registry.counter("transfer.repairs_served")
        self._m_retransmits = registry.counter("transfer.retransmits")
        self._m_acks_received = registry.counter("transfer.acks_received")
        self._publications: Dict[str, PublicationHandle] = {}
        self._acked: Dict[str, Set[int]] = {}
        self._retry: Dict[Tuple[str, int], object] = {}
        self._tries: Dict[Tuple[str, int], int] = {}
        # Listen for repair requests for any object we serve.
        repair_sub = (
            AttributeVector.builder()
            .eq(Key.TYPE, REPAIR_TYPE)
            .build()
        )
        self.api.subscribe(repair_sub, self._on_repair_request)
        if self.reliability is not None:
            if self.rng is None:
                raise ValueError(
                    "reliability requires a per-node rng (make_rng stream)"
                )
            ack_sub = (
                AttributeVector.builder()
                .eq(Key.TYPE, ACK_TYPE)
                .build()
            )
            self.api.subscribe(ack_sub, self._on_ack)

    def offer(self, obj: DataObject, start: float = 0.0) -> None:
        """Register an object and start streaming its blocks."""
        if obj.object_id in self.objects:
            raise ValueError(f"object {obj.object_id!r} already offered")
        self.objects[obj.object_id] = obj
        self._publications[obj.object_id] = self.api.publish(
            AttributeVector.builder()
            .actual(Key.TYPE, self.transfer_type)
            .actual(Key.INSTANCE, obj.object_id)
            .build()
        )
        sim = self.api.node.sim
        sim.schedule(start, self._send_block, obj.object_id, 0)

    # -- streaming -------------------------------------------------------

    #: every Nth streamed block floods as exploratory, re-anchoring the
    #: reinforced path mid-transfer (mirrors diffusion's data cadence)
    EXPLORATORY_STRIDE = 10

    def _send_block(self, object_id: str, index: int) -> None:
        obj = self.objects.get(object_id)
        if obj is None or index >= obj.block_count:
            return
        self._transmit_block(
            obj, index, force_exploratory=(index % self.EXPLORATORY_STRIDE == 0)
        )
        delay = self.rampup_delay if index == 0 else self.block_interval
        self.api.node.sim.schedule(
            delay, self._send_block, object_id, index + 1,
            name="transfer.block",
        )

    def _transmit_block(
        self, obj: DataObject, index: int, force_exploratory: bool = False
    ) -> None:
        attrs = (
            AttributeVector.builder()
            .actual(Key.SEQUENCE, index)
            .actual(Key.DURATION, obj.block_count)  # total, for hole maps
            .build()
            .with_attribute(
                Attribute.blob(Key.PAYLOAD, Operator.IS, obj.block_payload(index))
            )
        )
        message = self.api.send(
            self._publications[obj.object_id],
            attrs,
            force_exploratory=force_exploratory,
        )
        self.blocks_sent += 1
        self._m_blocks_sent.inc()
        if message is not None:
            self.block_traces.setdefault(
                (obj.object_id, index), []
            ).append(message.trace_id)
        if self.reliability is not None:
            self._arm_retransmit(obj.object_id, index)

    # -- repair ------------------------------------------------------------

    def _on_repair_request(self, attrs: AttributeVector, message) -> None:
        object_id = attrs.value_of(Key.INSTANCE)
        payload = attrs.value_of(Key.PAYLOAD)
        obj = self.objects.get(object_id)
        if obj is None or not isinstance(payload, bytes):
            return
        sim = self.api.node.sim
        indices = decode_block_list(payload)
        if not indices:
            # Empty NACK: the receiver has heard nothing at all and is
            # probing for the object; answer with the first block.
            indices = [0]
        for offset, index in enumerate(indices):
            if 0 <= index < obj.block_count:
                self.repairs_served += 1
                self._m_repairs_served.inc()
                # Repairs are loss-recovery traffic: flood them so they
                # make progress even when the reinforced path is stale.
                sim.schedule(
                    offset * self.block_interval,
                    self._transmit_block,
                    obj,
                    index,
                    True,
                    name="transfer.repair",
                )

    # -- acknowledged retransmission (DTN mode) -----------------------------

    def acked_blocks(self, object_id: str) -> Set[int]:
        return set(self._acked.get(object_id, ()))

    def _arm_retransmit(self, object_id: str, index: int) -> None:
        key = (object_id, index)
        if index in self._acked.get(object_id, ()):
            return
        timer = self._retry.get(key)
        if timer is not None:
            timer.cancel()
        policy = self.reliability
        tries = self._tries.get(key, 0)
        delay = min(
            policy.max_timeout,
            policy.ack_timeout * policy.backoff_factor ** tries,
        )
        delay += self.rng.uniform(0.0, policy.jitter * delay)
        self._retry[key] = self.api.node.sim.schedule(
            delay, self._retransmit_tick, object_id, index,
            name="transfer.retransmit",
        )

    def _retransmit_tick(self, object_id: str, index: int) -> None:
        key = (object_id, index)
        self._retry.pop(key, None)
        if index in self._acked.get(object_id, ()):
            return
        obj = self.objects.get(object_id)
        if obj is None:
            return
        tries = self._tries.get(key, 0) + 1
        self._tries[key] = tries
        if tries > self.reliability.max_retransmits:
            return  # budget spent; NACK repair remains the backstop
        self.retransmits += 1
        self._m_retransmits.inc()
        self._transmit_block(
            obj, index,
            force_exploratory=(tries >= self.reliability.flood_after),
        )

    def _on_ack(self, attrs: AttributeVector, message) -> None:
        object_id = attrs.value_of(Key.INSTANCE)
        payload = attrs.value_of(Key.PAYLOAD)
        obj = self.objects.get(object_id)
        if obj is None or not isinstance(payload, bytes):
            return
        try:
            indices = decode_block_list(payload)
        except ValueError:
            return
        self.acks_received += 1
        self._m_acks_received.inc()
        acked = self._acked.setdefault(object_id, set())
        received = attrs.value_of(Key.DURATION)
        if received is not None and int(received) >= obj.block_count:
            # Completion ack: everything arrived; stand down entirely.
            indices = range(obj.block_count)
        for index in indices:
            acked.add(index)
            timer = self._retry.pop((object_id, index), None)
            if timer is not None:
                timer.cancel()
