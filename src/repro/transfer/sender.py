"""Sender side of the block-transfer scheme.

The sender publishes blocks under ``(TYPE IS <transfer type>, INSTANCE
IS <object id>)``, paces them out, and subscribes to repair requests for
its objects.  A repair request names missing block indices; the sender
re-sends exactly those blocks.  Both block and repair traffic are plain
named data — no new mechanism below the application.
"""

from __future__ import annotations

import struct
from typing import Dict

from repro.core.api import DiffusionRouting, PublicationHandle
from repro.naming import Attribute, AttributeVector, Operator
from repro.naming.keys import Key
from repro.sim.metrics import current_registry
from repro.transfer.blocks import DataObject

TRANSFER_TYPE = "bulk-transfer"
REPAIR_TYPE = "bulk-repair"


def encode_block_list(indices) -> bytes:
    """Missing-block list as a compact uint16 vector."""
    return b"".join(struct.pack("<H", i) for i in sorted(indices))


def decode_block_list(payload: bytes):
    if len(payload) % 2:
        raise ValueError("repair payload must be uint16-aligned")
    return [
        struct.unpack_from("<H", payload, offset)[0]
        for offset in range(0, len(payload), 2)
    ]


class BlockSender:
    """Serves one or more objects to interested receivers."""

    def __init__(
        self,
        api: DiffusionRouting,
        block_interval: float = 0.5,
        rampup_delay: float = 1.5,
        transfer_type: str = TRANSFER_TYPE,
    ) -> None:
        self.api = api
        self.block_interval = block_interval
        # Pause between the first (exploratory) block and the stream:
        # the first block's flood triggers reinforcement, and plain
        # blocks sent before the path is reinforced are dropped.
        self.rampup_delay = rampup_delay
        self.transfer_type = transfer_type
        self.objects: Dict[str, DataObject] = {}
        self.blocks_sent = 0
        self.repairs_served = 0
        registry = current_registry()
        self._m_blocks_sent = registry.counter("transfer.blocks_sent")
        self._m_repairs_served = registry.counter("transfer.repairs_served")
        self._publications: Dict[str, PublicationHandle] = {}
        # Listen for repair requests for any object we serve.
        repair_sub = (
            AttributeVector.builder()
            .eq(Key.TYPE, REPAIR_TYPE)
            .build()
        )
        self.api.subscribe(repair_sub, self._on_repair_request)

    def offer(self, obj: DataObject, start: float = 0.0) -> None:
        """Register an object and start streaming its blocks."""
        if obj.object_id in self.objects:
            raise ValueError(f"object {obj.object_id!r} already offered")
        self.objects[obj.object_id] = obj
        self._publications[obj.object_id] = self.api.publish(
            AttributeVector.builder()
            .actual(Key.TYPE, self.transfer_type)
            .actual(Key.INSTANCE, obj.object_id)
            .build()
        )
        sim = self.api.node.sim
        sim.schedule(start, self._send_block, obj.object_id, 0)

    # -- streaming -------------------------------------------------------

    #: every Nth streamed block floods as exploratory, re-anchoring the
    #: reinforced path mid-transfer (mirrors diffusion's data cadence)
    EXPLORATORY_STRIDE = 10

    def _send_block(self, object_id: str, index: int) -> None:
        obj = self.objects.get(object_id)
        if obj is None or index >= obj.block_count:
            return
        self._transmit_block(
            obj, index, force_exploratory=(index % self.EXPLORATORY_STRIDE == 0)
        )
        delay = self.rampup_delay if index == 0 else self.block_interval
        self.api.node.sim.schedule(
            delay, self._send_block, object_id, index + 1,
            name="transfer.block",
        )

    def _transmit_block(
        self, obj: DataObject, index: int, force_exploratory: bool = False
    ) -> None:
        attrs = (
            AttributeVector.builder()
            .actual(Key.SEQUENCE, index)
            .actual(Key.DURATION, obj.block_count)  # total, for hole maps
            .build()
            .with_attribute(
                Attribute.blob(Key.PAYLOAD, Operator.IS, obj.block_payload(index))
            )
        )
        self.api.send(
            self._publications[obj.object_id],
            attrs,
            force_exploratory=force_exploratory,
        )
        self.blocks_sent += 1
        self._m_blocks_sent.inc()

    # -- repair ------------------------------------------------------------

    def _on_repair_request(self, attrs: AttributeVector, message) -> None:
        object_id = attrs.value_of(Key.INSTANCE)
        payload = attrs.value_of(Key.PAYLOAD)
        obj = self.objects.get(object_id)
        if obj is None or not isinstance(payload, bytes):
            return
        sim = self.api.node.sim
        indices = decode_block_list(payload)
        if not indices:
            # Empty NACK: the receiver has heard nothing at all and is
            # probing for the object; answer with the first block.
            indices = [0]
        for offset, index in enumerate(indices):
            if 0 <= index < obj.block_count:
                self.repairs_served += 1
                self._m_repairs_served.inc()
                # Repairs are loss-recovery traffic: flood them so they
                # make progress even when the reinforced path is stale.
                sim.schedule(
                    offset * self.block_interval,
                    self._transmit_block,
                    obj,
                    index,
                    True,
                    name="transfer.repair",
                )
