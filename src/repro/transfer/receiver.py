"""Receiver side of the block-transfer scheme.

Subscribes to an object's blocks, maintains a hole map, and issues NACK
repair requests after the stream goes quiet with holes outstanding.
Repair requests are published as named data (``TYPE IS bulk-repair``)
that the sender has subscribed to, so they travel on ordinary
gradients.  Retries are bounded; completion delivers the reassembled
object through a callback with checksum intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.api import DiffusionRouting
from repro.naming import Attribute, AttributeVector, Operator
from repro.naming.keys import Key
from repro.sim.metrics import current_registry
from repro.transfer.blocks import join_blocks
from repro.transfer.sender import (
    ACK_TYPE,
    REPAIR_TYPE,
    TRANSFER_TYPE,
    RetransmitPolicy,
    encode_block_list,
)


@dataclass
class TransferStats:
    """Observability for one in-progress/finished transfer."""

    object_id: str
    blocks_expected: Optional[int] = None
    blocks_received: int = 0
    duplicate_blocks: int = 0
    repair_rounds: int = 0
    completed_at: Optional[float] = None

    @property
    def complete(self) -> bool:
        return self.completed_at is not None


class BlockReceiver:
    """Fetches one object and delivers it on completion."""

    def __init__(
        self,
        api: DiffusionRouting,
        object_id: str,
        on_complete: Callable[[bytes, TransferStats], None],
        quiet_timeout: float = 5.0,
        max_repair_rounds: int = 10,
        repair_batch: int = 16,
        backoff_factor: float = 1.5,
        max_quiet_timeout: float = 30.0,
        transfer_type: str = TRANSFER_TYPE,
        reliability: Optional[RetransmitPolicy] = None,
        rng=None,
        persistent: bool = False,
    ) -> None:
        self.api = api
        self.object_id = object_id
        self.on_complete = on_complete
        self.quiet_timeout = quiet_timeout
        self.max_repair_rounds = max_repair_rounds
        self.repair_batch = repair_batch
        # NACK rounds back off exponentially: early rounds race the
        # interest/gradient plumbing, so spreading retries over a longer
        # horizon is what lets a lossy network converge.
        self.backoff_factor = backoff_factor
        self.max_quiet_timeout = max_quiet_timeout
        # DTN mode: acknowledge received blocks (releases sender timers
        # and network custody), jitter the NACK schedule from the
        # per-node rng stream, and — with ``persistent`` — keep probing
        # at the capped cadence instead of failing permanently, so the
        # transfer outlives connectivity gaps.
        self.reliability = reliability
        self.rng = rng
        self.persistent = persistent
        if (reliability is not None or persistent) and rng is None:
            raise ValueError(
                "reliability/persistent require a per-node rng "
                "(make_rng stream)"
            )
        self.stats = TransferStats(object_id=object_id)
        self.acks_sent = 0
        registry = current_registry()
        self._m_blocks_received = registry.counter("transfer.blocks_received")
        self._m_duplicates = registry.counter("transfer.duplicate_blocks")
        self._m_repair_rounds = registry.counter("transfer.repair_rounds")
        self._m_completed = registry.counter("transfer.completed")
        self._m_acks_sent = registry.counter("transfer.acks_sent")
        self._blocks: Dict[int, bytes] = {}
        self._quiet_timer = None
        self._failed = False
        self._ack_pub = None
        self._fresh_since_ack: List[int] = []
        block_sub = (
            AttributeVector.builder()
            .eq(Key.TYPE, transfer_type)
            .eq(Key.INSTANCE, object_id)
            .build()
        )
        api.subscribe(block_sub, self._on_block)
        self._repair_pub = api.publish(
            AttributeVector.builder()
            .actual(Key.TYPE, REPAIR_TYPE)
            .actual(Key.INSTANCE, object_id)
            .build()
        )
        if reliability is not None:
            self._ack_pub = api.publish(
                AttributeVector.builder()
                .actual(Key.TYPE, ACK_TYPE)
                .actual(Key.INSTANCE, object_id)
                .build()
            )
        self._arm_quiet_timer()

    # -- block arrival ------------------------------------------------------

    def _on_block(self, attrs: AttributeVector, message) -> None:
        if self.stats.complete or self._failed:
            return
        index = attrs.value_of(Key.SEQUENCE)
        total = attrs.value_of(Key.DURATION)
        payload = attrs.value_of(Key.PAYLOAD)
        if index is None or total is None or not isinstance(payload, bytes):
            return
        index, total = int(index), int(total)
        if self.stats.blocks_expected is None:
            self.stats.blocks_expected = total
        if index in self._blocks:
            self.stats.duplicate_blocks += 1
            self._m_duplicates.inc()
        else:
            self._blocks[index] = payload
            self.stats.blocks_received += 1
            self._m_blocks_received.inc()
            if self.reliability is not None:
                self._fresh_since_ack.append(index)
                if len(self._fresh_since_ack) >= self.reliability.ack_every:
                    self._send_ack()
        self._arm_quiet_timer()
        if len(self._blocks) == self.stats.blocks_expected:
            self._finish()

    # -- hole repair ------------------------------------------------------------

    def missing_blocks(self) -> List[int]:
        if self.stats.blocks_expected is None:
            return []
        return [
            i for i in range(self.stats.blocks_expected) if i not in self._blocks
        ]

    def _current_quiet_timeout(self) -> float:
        timeout = min(
            self.max_quiet_timeout,
            self.quiet_timeout * self.backoff_factor ** self.stats.repair_rounds,
        )
        if self.rng is not None:
            # Seed-deterministic jitter desynchronizes co-located
            # receivers' NACK rounds (DTN mode only; the legacy path
            # draws nothing and stays bit-identical).
            jitter = (
                self.reliability.jitter if self.reliability is not None else 0.25
            )
            timeout += self.rng.uniform(0.0, jitter * timeout)
        return timeout

    def _arm_quiet_timer(self) -> None:
        if self._quiet_timer is not None:
            self._quiet_timer.cancel()
        self._quiet_timer = self.api.node.sim.schedule(
            self._current_quiet_timeout(), self._on_quiet, name="transfer.quiet"
        )

    def _on_quiet(self) -> None:
        if self.stats.complete or self._failed:
            return
        holes = self.missing_blocks()
        if not holes and self.stats.blocks_expected is not None:
            self._finish()
            return
        if self.stats.repair_rounds >= self.max_repair_rounds:
            if not self.persistent:
                self._failed = True
                return
            # Persistent (DTN) mode: the transfer outlives connectivity
            # gaps — keep probing at the capped cadence so a healed
            # partition or an arriving data mule finds live demand.
        self.stats.repair_rounds += 1
        self._m_repair_rounds.inc()
        # An empty block list is a status probe: "I have heard nothing,
        # does this object exist?" — the sender answers with block 0.
        batch = holes[: self.repair_batch]
        attrs = AttributeVector.builder().actual(
            Key.SEQUENCE, self.stats.repair_rounds
        ).build().with_attribute(
            Attribute.blob(Key.PAYLOAD, Operator.IS, encode_block_list(batch))
        )
        # Repair requests are rare control traffic; flooding them
        # guarantees they reach the sender regardless of path state.
        self.api.send(self._repair_pub, attrs, force_exploratory=True)
        self._arm_quiet_timer()

    # -- completion ------------------------------------------------------------------

    def _finish(self) -> None:
        self.stats.completed_at = self.api.node.sim.now
        self._m_completed.inc()
        if self._quiet_timer is not None:
            self._quiet_timer.cancel()
        if self.reliability is not None:
            self._send_ack()  # completion ack: sender stands down
        data = join_blocks(
            [self._blocks[i] for i in range(self.stats.blocks_expected)]
        )
        self.on_complete(data, self.stats)

    # -- acknowledgement (DTN mode) -----------------------------------------

    def _send_ack(self) -> None:
        """Flood a ``bulk-ack`` naming recently received blocks.

        The ack releases the sender's per-block retransmission timers
        and — because it floods network-wide — any custody agent still
        carrying an acknowledged block (``custody.transfer``).  The
        DURATION attribute carries the total received count so a
        completion ack stands the sender down entirely.
        """
        window = self._fresh_since_ack[-self.reliability.ack_window:]
        if not window and not self.stats.complete:
            window = sorted(self._blocks)[-self.reliability.ack_window:]
        self._fresh_since_ack = []
        attrs = (
            AttributeVector.builder()
            .actual(Key.SEQUENCE, self.acks_sent)
            .actual(Key.DURATION, len(self._blocks))
            .build()
            .with_attribute(
                Attribute.blob(
                    Key.PAYLOAD, Operator.IS, encode_block_list(window)
                )
            )
        )
        self.acks_sent += 1
        self._m_acks_sent.inc()
        # Acks are rare control traffic, flooded like repair requests.
        self.api.send(self._ack_pub, attrs, force_exploratory=True)

    @property
    def failed(self) -> bool:
        return self._failed
