"""Receiver side of the block-transfer scheme.

Subscribes to an object's blocks, maintains a hole map, and issues NACK
repair requests after the stream goes quiet with holes outstanding.
Repair requests are published as named data (``TYPE IS bulk-repair``)
that the sender has subscribed to, so they travel on ordinary
gradients.  Retries are bounded; completion delivers the reassembled
object through a callback with checksum intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.api import DiffusionRouting
from repro.naming import Attribute, AttributeVector, Operator
from repro.naming.keys import Key
from repro.sim.metrics import current_registry
from repro.transfer.blocks import join_blocks
from repro.transfer.sender import (
    REPAIR_TYPE,
    TRANSFER_TYPE,
    encode_block_list,
)


@dataclass
class TransferStats:
    """Observability for one in-progress/finished transfer."""

    object_id: str
    blocks_expected: Optional[int] = None
    blocks_received: int = 0
    duplicate_blocks: int = 0
    repair_rounds: int = 0
    completed_at: Optional[float] = None

    @property
    def complete(self) -> bool:
        return self.completed_at is not None


class BlockReceiver:
    """Fetches one object and delivers it on completion."""

    def __init__(
        self,
        api: DiffusionRouting,
        object_id: str,
        on_complete: Callable[[bytes, TransferStats], None],
        quiet_timeout: float = 5.0,
        max_repair_rounds: int = 10,
        repair_batch: int = 16,
        backoff_factor: float = 1.5,
        max_quiet_timeout: float = 30.0,
        transfer_type: str = TRANSFER_TYPE,
    ) -> None:
        self.api = api
        self.object_id = object_id
        self.on_complete = on_complete
        self.quiet_timeout = quiet_timeout
        self.max_repair_rounds = max_repair_rounds
        self.repair_batch = repair_batch
        # NACK rounds back off exponentially: early rounds race the
        # interest/gradient plumbing, so spreading retries over a longer
        # horizon is what lets a lossy network converge.
        self.backoff_factor = backoff_factor
        self.max_quiet_timeout = max_quiet_timeout
        self.stats = TransferStats(object_id=object_id)
        registry = current_registry()
        self._m_blocks_received = registry.counter("transfer.blocks_received")
        self._m_duplicates = registry.counter("transfer.duplicate_blocks")
        self._m_repair_rounds = registry.counter("transfer.repair_rounds")
        self._m_completed = registry.counter("transfer.completed")
        self._blocks: Dict[int, bytes] = {}
        self._quiet_timer = None
        self._failed = False
        block_sub = (
            AttributeVector.builder()
            .eq(Key.TYPE, transfer_type)
            .eq(Key.INSTANCE, object_id)
            .build()
        )
        api.subscribe(block_sub, self._on_block)
        self._repair_pub = api.publish(
            AttributeVector.builder()
            .actual(Key.TYPE, REPAIR_TYPE)
            .actual(Key.INSTANCE, object_id)
            .build()
        )
        self._arm_quiet_timer()

    # -- block arrival ------------------------------------------------------

    def _on_block(self, attrs: AttributeVector, message) -> None:
        if self.stats.complete or self._failed:
            return
        index = attrs.value_of(Key.SEQUENCE)
        total = attrs.value_of(Key.DURATION)
        payload = attrs.value_of(Key.PAYLOAD)
        if index is None or total is None or not isinstance(payload, bytes):
            return
        index, total = int(index), int(total)
        if self.stats.blocks_expected is None:
            self.stats.blocks_expected = total
        if index in self._blocks:
            self.stats.duplicate_blocks += 1
            self._m_duplicates.inc()
        else:
            self._blocks[index] = payload
            self.stats.blocks_received += 1
            self._m_blocks_received.inc()
        self._arm_quiet_timer()
        if len(self._blocks) == self.stats.blocks_expected:
            self._finish()

    # -- hole repair ------------------------------------------------------------

    def missing_blocks(self) -> List[int]:
        if self.stats.blocks_expected is None:
            return []
        return [
            i for i in range(self.stats.blocks_expected) if i not in self._blocks
        ]

    def _current_quiet_timeout(self) -> float:
        return min(
            self.max_quiet_timeout,
            self.quiet_timeout * self.backoff_factor ** self.stats.repair_rounds,
        )

    def _arm_quiet_timer(self) -> None:
        if self._quiet_timer is not None:
            self._quiet_timer.cancel()
        self._quiet_timer = self.api.node.sim.schedule(
            self._current_quiet_timeout(), self._on_quiet, name="transfer.quiet"
        )

    def _on_quiet(self) -> None:
        if self.stats.complete or self._failed:
            return
        holes = self.missing_blocks()
        if not holes and self.stats.blocks_expected is not None:
            self._finish()
            return
        if self.stats.repair_rounds >= self.max_repair_rounds:
            self._failed = True
            return
        self.stats.repair_rounds += 1
        self._m_repair_rounds.inc()
        # An empty block list is a status probe: "I have heard nothing,
        # does this object exist?" — the sender answers with block 0.
        batch = holes[: self.repair_batch]
        attrs = AttributeVector.builder().actual(
            Key.SEQUENCE, self.stats.repair_rounds
        ).build().with_attribute(
            Attribute.blob(Key.PAYLOAD, Operator.IS, encode_block_list(batch))
        )
        # Repair requests are rare control traffic; flooding them
        # guarantees they reach the sender regardless of path state.
        self.api.send(self._repair_pub, attrs, force_exploratory=True)
        self._arm_quiet_timer()

    # -- completion ------------------------------------------------------------------

    def _finish(self) -> None:
        self.stats.completed_at = self.api.node.sim.now
        self._m_completed.inc()
        if self._quiet_timer is not None:
            self._quiet_timer.cancel()
        data = join_blocks(
            [self._blocks[i] for i in range(self.stats.blocks_expected)]
        )
        self.on_complete(data, self.stats)

    @property
    def failed(self) -> bool:
        return self._failed
