"""In-network block caching: hop-by-hop repair.

Paper Section 3.1: "Data is cached at intermediate nodes as it
propagates toward sinks.  Cached data is used for several purposes ...
[including] application-specific, in-network processing."  Applied to
bulk transfer, caching turns end-to-end retransmission into hop-by-hop
recovery: a repair request is answered by the *nearest* node holding
the block, so repairs cost one or two hops instead of a full
source-round-trip — the reason RMST places caches inside the network.

:class:`BlockCacheFilter` does both halves:

* data path — block messages passing through the node are copied into a
  bounded LRU cache;
* repair path — repair requests passing through are checked against the
  cache; hits are served locally (the served indices are stripped from
  the request before it continues upstream; a fully served request is
  absorbed).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Tuple

from repro.core.filter_api import FilterHandle, GRADIENT_FILTER_PRIORITY
from repro.core.messages import Message, make_data
from repro.core.node import DiffusionNode
from repro.naming import Attribute, AttributeVector, Operator
from repro.naming.keys import Key
from repro.transfer.sender import (
    REPAIR_TYPE,
    TRANSFER_TYPE,
    decode_block_list,
    encode_block_list,
)

BlockKey = Tuple[str, int]  # (object id, block index)


class BlockCacheFilter:
    """Caches transfer blocks and serves repairs from the cache."""

    def __init__(
        self,
        node: DiffusionNode,
        capacity: int = 128,
        priority: int = GRADIENT_FILTER_PRIORITY + 30,
        transfer_type: str = TRANSFER_TYPE,
        repair_type: str = REPAIR_TYPE,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.node = node
        self.capacity = capacity
        self.transfer_type = transfer_type
        self.repair_type = repair_type
        # (object, index) -> (payload, block_count)
        self._cache: "OrderedDict[BlockKey, Tuple[bytes, int]]" = OrderedDict()
        self.blocks_cached = 0
        self.repairs_served_locally = 0
        self.requests_absorbed = 0
        self.requests_trimmed = 0
        # One filter sees both block data and repair requests.
        self.handle = node.add_filter(
            AttributeVector(), priority, self._callback, name="block-cache"
        )

    def __len__(self) -> int:
        return len(self._cache)

    def cached_blocks(self, object_id: str):
        return sorted(i for (oid, i) in self._cache if oid == object_id)

    # -- pipeline ---------------------------------------------------------

    def _callback(self, message: Message, handle: FilterHandle) -> None:
        if message.msg_type.is_data:
            msg_type = message.attrs.value_of(Key.TYPE)
            if msg_type == self.transfer_type:
                self._cache_block(message)
            elif msg_type == self.repair_type:
                if self._handle_repair_request(message):
                    return  # fully served: absorb the request
        self.node.send_message(message, handle)

    # -- data path --------------------------------------------------------------

    def _cache_block(self, message: Message) -> None:
        object_id = message.attrs.value_of(Key.INSTANCE)
        index = message.attrs.value_of(Key.SEQUENCE)
        total = message.attrs.value_of(Key.DURATION)
        payload = message.attrs.value_of(Key.PAYLOAD)
        if (
            object_id is None
            or index is None
            or total is None
            or not isinstance(payload, bytes)
        ):
            return
        key = (object_id, int(index))
        if key not in self._cache:
            self.blocks_cached += 1
        self._cache[key] = (payload, int(total))
        self._cache.move_to_end(key)
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)

    # -- repair path ----------------------------------------------------------------

    def _handle_repair_request(self, message: Message) -> bool:
        """Serve what we can; returns True when nothing is left to ask."""
        object_id = message.attrs.value_of(Key.INSTANCE)
        payload = message.attrs.value_of(Key.PAYLOAD)
        if object_id is None or not isinstance(payload, bytes):
            return False
        try:
            wanted = decode_block_list(payload)
        except ValueError:
            return False
        if not wanted:
            return False  # status probes go to the real sender
        hits = [i for i in wanted if (object_id, i) in self._cache]
        misses = [i for i in wanted if (object_id, i) not in self._cache]
        for index in hits:
            self._serve_block(object_id, index)
        if not hits:
            return False
        if misses:
            # Trim the request: upstream only needs the blocks we lack.
            self.requests_trimmed += 1
            trimmed = message.attrs.without_key(Key.PAYLOAD).with_attribute(
                Attribute.blob(Key.PAYLOAD, Operator.IS, encode_block_list(misses))
            )
            self.node.send_message(
                replace(message, attrs=trimmed), self.handle
            )
            return True  # the original message must not continue as-is
        self.requests_absorbed += 1
        return True

    def _serve_block(self, object_id: str, index: int) -> None:
        payload, total = self._cache[(object_id, index)]
        attrs = (
            AttributeVector.builder()
            .actual(Key.TYPE, self.transfer_type)
            .actual(Key.INSTANCE, object_id)
            .actual(Key.SEQUENCE, index)
            .actual(Key.DURATION, total)
            .build()
            .with_attribute(Attribute.blob(Key.PAYLOAD, Operator.IS, payload))
        )
        # Inject as a locally originated exploratory data message so it
        # floods toward whoever is asking, like a sender repair would.
        served = make_data(
            attrs=attrs,
            origin=self.node.node_id,
            exploratory=True,
            header_bytes=self.node.config.header_bytes,
        )
        self.repairs_served_locally += 1
        self.node.send_message(served, self.handle)
