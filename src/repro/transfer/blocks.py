"""Object blocking: split a persistent object into named blocks.

Blocks are sized so one block message (attributes + payload) stays
within a handful of radio fragments; every block is self-identifying
via attributes — object id, block index, block count — so any node can
cache or serve it (caching repair is what makes hop-by-hop recovery
cheaper than end-to-end).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import List

#: payload bytes carried per block message
BLOCK_PAYLOAD_BYTES = 64


@dataclass(frozen=True)
class DataObject:
    """A large persistent object being transferred."""

    object_id: str
    data: bytes

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def block_count(self) -> int:
        return max(1, math.ceil(len(self.data) / BLOCK_PAYLOAD_BYTES))

    def checksum(self) -> str:
        return hashlib.sha1(self.data).hexdigest()

    def block_payload(self, index: int) -> bytes:
        if not 0 <= index < self.block_count:
            raise IndexError(f"block {index} out of range")
        start = index * BLOCK_PAYLOAD_BYTES
        return self.data[start : start + BLOCK_PAYLOAD_BYTES]


def split_object(object_id: str, data: bytes) -> DataObject:
    """Wrap raw bytes as a transferable object."""
    if not data:
        raise ValueError("cannot transfer an empty object")
    return DataObject(object_id=object_id, data=data)


def join_blocks(blocks: List[bytes]) -> bytes:
    """Reassemble payloads in index order."""
    return b"".join(blocks)
