"""Canned disruption-tolerant transfer scenarios.

:func:`dtn_run` is the workhorse behind the ``dtn`` campaign,
``dtnbench``, and the scenario tests: the standard 4×3 resilience grid
with a corner source bulk-transferring one object to the opposite-corner
sink while a repeating :class:`~repro.faults.plan.Partition` plan splits
the grid at a configurable disruption duty cycle.  With ``custody=True``
the full DTN stack is armed — custody agents on every node, per-block
sender retransmission, receiver acks and persistent NACK keepalive —
and every block that does not arrive is attributed to a cause (a
``custody.*`` event or an existing per-layer drop reason).  With
``custody=False`` the run is the legacy stack, bit-identical to a build
where :mod:`repro.dtn` was never imported (``install_disabled=True``
constructs the disabled plumbing to prove it).

:func:`mule_run` is the 2-partition data-mule variant: a 3-node line
whose middle node is alternately connected to the source side and the
sink side but never both — delivery is possible *only* by carrying
custody across the gap.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

import repro.core.messages as core_messages
from repro.core import DiffusionConfig
from repro.dtn.agent import CustodyAgent
from repro.dtn.config import DtnConfig
from repro.faults.engine import FaultEngine
from repro.faults.monitors import MonitorSuite
from repro.faults.plan import FaultPlan, Partition
from repro.naming.keys import Key
from repro.radio import Topology
from repro.sim.rng import make_rng
from repro.testbed import SensorNetwork
from repro.transfer import (
    BlockCacheFilter,
    BlockReceiver,
    BlockSender,
    DataObject,
    RetransmitPolicy,
)

#: the standard resilience grid (mirrors repro.faults.scenarios).
GRID_COLUMNS = 4
GRID_ROWS = 3
GRID_SPACING = 15.0
SINK = 0
SOURCE = GRID_COLUMNS * GRID_ROWS - 1

OBJECT_ID = "dtn-object"

#: reasons that describe a *duplicate* copy dying, not the block: they
#: only attribute a loss when nothing more causal was recorded.
_WEAK_REASONS = ("cache-suppression",)


def _dtn_diffusion_config(exploratory_interval: float) -> DiffusionConfig:
    """The compressed resilience timer set (paper timers scaled down).

    Interest refresh (10 s) runs on the subscription, *not* on data
    liveness — that decoupling is what lets demand outlive a partition
    longer than any individual gradient entry.
    """
    return DiffusionConfig(
        interest_interval=10.0,
        interest_jitter=0.5,
        gradient_timeout=25.0,
        exploratory_interval=exploratory_interval,
        reinforced_timeout=20.0,
        reinforcement_jitter=0.3,
    )


def partition_windows(
    start: float, duration: float, duty: float, period: float,
    heal_tail: float = 30.0,
) -> List[Tuple[float, float]]:
    """Repeating down-windows at the given disruption duty cycle."""
    if duty <= 0.0:
        return []
    windows = []
    down = duty * period
    at = start
    while at + down <= duration - heal_tail:
        windows.append((at, at + down))
        at += period
    return windows


def _grid_groups() -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    left = tuple(
        row * GRID_COLUMNS + col
        for row in range(GRID_ROWS)
        for col in (0, 1)
    )
    right = tuple(
        row * GRID_COLUMNS + col
        for row in range(GRID_ROWS)
        for col in (2, 3)
    )
    return left, right


class _TimedReceiver(BlockReceiver):
    """BlockReceiver that timestamps every first-copy block arrival."""

    def __init__(self, *args, **kwargs) -> None:
        self.arrivals: Dict[int, float] = {}
        super().__init__(*args, **kwargs)

    def _on_block(self, attrs, message) -> None:
        before = len(self._blocks)
        super()._on_block(attrs, message)
        if len(self._blocks) > before:
            index = attrs.value_of(Key.SEQUENCE)
            self.arrivals[int(index)] = self.api.node.sim.now


class _AttributionTap:
    """Collects the trace evidence the loss attribution joins over."""

    CATEGORIES = (
        "path.drop",
        "diffusion.tx",
        "custody.accept",
        "custody.reinject",
        "custody.transfer",
        "custody.expire",
        "custody.deliver",
    )

    def __init__(self, trace) -> None:
        self.trace = trace
        self.drops_by_trace: Dict[str, List[str]] = {}
        self.tx_traces: set = set()
        self.block_traces: Dict[Tuple[str, int], set] = {}
        self.expire_reason: Dict[Tuple[str, int], str] = {}
        for category in self.CATEGORIES:
            trace.subscribe(category, self._on_record)

    def _on_record(self, record) -> None:
        data = record.data
        if record.category == "path.drop":
            tid = data.get("trace")
            if tid is not None:
                self.drops_by_trace.setdefault(tid, []).append(
                    data.get("reason", "unknown")
                )
            return
        if record.category == "diffusion.tx":
            tid = data.get("trace")
            if tid is not None:
                self.tx_traces.add(tid)
            return
        # custody.* events all carry (object, index, trace).
        key = (data.get("object"), data.get("index"))
        if key[0] is None or key[1] is None:
            return
        tid = data.get("trace")
        if tid is not None:
            self.block_traces.setdefault(key, set()).add(tid)
        if record.category == "custody.expire":
            self.expire_reason[key] = data.get("reason", "unknown")

    def detach(self) -> None:
        for category in self.CATEGORIES:
            self.trace.unsubscribe(category, self._on_record)

    def attribute(
        self,
        object_id: str,
        block_count: int,
        delivered: set,
        sender_traces: Dict[Tuple[str, int], List[str]],
        held_at_end: set,
    ) -> Dict[int, str]:
        """One cause per undelivered block, never 'unattributed' unless
        the evidence really is empty (the dtn campaign gates on zero)."""
        causes: Dict[int, str] = {}
        for index in range(block_count):
            if index in delivered:
                continue
            key = (object_id, index)
            family = set(sender_traces.get(key, ()))
            family |= self.block_traces.get(key, set())
            if index in held_at_end:
                causes[index] = "custody.held-at-end"
                continue
            if key in self.expire_reason:
                causes[index] = f"custody.expire-{self.expire_reason[key]}"
                continue
            reasons = [
                reason
                for tid in family
                for reason in self.drops_by_trace.get(tid, ())
            ]
            strong = [r for r in reasons if r not in _WEAK_REASONS]
            if strong:
                causes[index] = strong[-1]
            elif reasons:
                causes[index] = reasons[-1]
            elif family & self.tx_traces:
                causes[index] = "in-flight-loss"
            elif family:
                causes[index] = "never-transmitted"
            else:
                causes[index] = "unattributed"
        return causes


def _arm_transfer(
    network: SensorNetwork,
    seed: int,
    custody: bool,
    dtn_config: Optional[DtnConfig],
    block_interval: float,
    payload: bytes,
    offer_at: float,
    receiver_rounds: int,
    cache_capacity: int = 64,
    install_disabled: bool = False,
):
    """Sender, receiver, per-node caches, and (optionally) custody."""
    obj = DataObject(OBJECT_ID, payload)
    policy = RetransmitPolicy() if custody else None
    sender = BlockSender(
        network.api(SOURCE),
        block_interval=block_interval,
        reliability=policy,
        rng=make_rng(seed, "dtn:sender") if custody else None,
    )
    receiver = _TimedReceiver(
        network.api(SINK),
        OBJECT_ID,
        on_complete=lambda data, stats: None,
        quiet_timeout=4.0,
        max_repair_rounds=receiver_rounds,
        max_quiet_timeout=20.0,
        reliability=policy,
        rng=make_rng(seed, "dtn:receiver") if custody else None,
        persistent=custody,
    )
    caches = {
        node_id: BlockCacheFilter(network.node(node_id), capacity=cache_capacity)
        for node_id in network.node_ids()
        if node_id not in (SOURCE, SINK)
    }
    agents: Dict[int, CustodyAgent] = {}
    if custody or install_disabled:
        config = dtn_config or DtnConfig()
        if install_disabled:
            config = DtnConfig(enabled=False)
        for node_id in network.node_ids():
            stack = network.stack(node_id)
            ledger = stack.energy
            agents[node_id] = CustodyAgent(
                network.node(node_id),
                rng=make_rng(seed, f"dtn:agent:{node_id}"),
                config=config,
                energy_spent=(
                    lambda ledger=ledger: ledger.energy(
                        elapsed=network.sim.now
                    )
                ),
            )
    network.sim.schedule(offer_at, sender.offer, obj, 0.0)
    return obj, sender, receiver, caches, agents


def _finish_run(
    network: SensorNetwork,
    engine: FaultEngine,
    monitors: MonitorSuite,
    tap: _AttributionTap,
    obj: DataObject,
    sender: BlockSender,
    receiver: "_TimedReceiver",
    agents: Dict[int, CustodyAgent],
    windows: List[Tuple[float, float]],
    extra: Dict[str, Any],
) -> Dict[str, Any]:
    monitors.check()
    monitors.detach()
    tap.detach()
    held_at_end = {
        entry.index
        for agent in agents.values()
        for entry in agent.store.entries()
        if entry.object_id == obj.object_id
    }
    delivered = set(receiver.arrivals)
    causes = tap.attribute(
        obj.object_id, obj.block_count, delivered,
        sender.block_traces, held_at_end,
    )
    attribution: Dict[str, int] = {}
    for cause in causes.values():
        attribution[cause] = attribution.get(cause, 0) + 1

    def in_window(t: float) -> bool:
        return any(at <= t < until for at, until in windows)

    during = sum(1 for t in receiver.arrivals.values() if in_window(t))
    after = len(receiver.arrivals) - during
    custody_stats = {
        "accepted": sum(a.store.accepted for a in agents.values()),
        "transferred": sum(a.store.transferred for a in agents.values()),
        "expired": sum(a.store.expired for a in agents.values()),
        "refused_energy": sum(a.store.refused_energy for a in agents.values()),
        "depth_high_water": max(
            (a.store.depth_high_water for a in agents.values()), default=0
        ),
        "held_at_end": len(held_at_end),
        "reinjections": sum(a.reinjections for a in agents.values()),
        "beacons": sum(a.beacons for a in agents.values()),
        "contacts": sum(a.contacts for a in agents.values()),
        "custody_acks": sum(a.acks_sent for a in agents.values()),
    }
    result = {
        "offered": obj.block_count,
        "delivered": len(delivered),
        "delivery_ratio": round(len(delivered) / obj.block_count, 4),
        "completed": receiver.stats.complete,
        "completed_at": (
            round(receiver.stats.completed_at, 3)
            if receiver.stats.completed_at is not None
            else None
        ),
        "delivery_during_partition": during,
        "delivery_after_partition": after,
        "partition_windows": [
            [round(a, 3), round(b, 3)] for a, b in windows
        ],
        "custody_stats": custody_stats,
        "transfer": {
            "blocks_sent": sender.blocks_sent,
            "retransmits": sender.retransmits,
            "acks_received": sender.acks_received,
            "acks_sent": receiver.acks_sent,
            "repairs_served": sender.repairs_served,
            "repair_rounds": receiver.stats.repair_rounds,
            "duplicate_blocks": receiver.stats.duplicate_blocks,
        },
        "attribution": dict(sorted(attribution.items())),
        "unattributed": attribution.get("unattributed", 0),
        "timeline": engine.timeline,
        "violations": [v.describe() for v in monitors.violations],
        "invariants_ok": monitors.ok,
    }
    result.update(extra)
    return result


def dtn_run(
    seed: int = 1,
    duty: float = 0.6,
    period: float = 50.0,
    duration: float = 260.0,
    custody: bool = True,
    install_disabled: bool = False,
    payload_bytes: int = 2048,
    block_interval: float = 0.5,
    exploratory_interval: float = 8.0,
    mode: str = "flat",
    dtn_config: Optional[DtnConfig] = None,
    flight_recorder: Optional[str] = None,
) -> Dict[str, Any]:
    """One bulk transfer across a grid partitioned at ``duty``.

    ``custody=False`` is the legacy baseline; ``install_disabled=True``
    (with ``custody=False``) additionally constructs every DTN object
    with ``enabled=False`` — the outcome must be bit-identical, which is
    the dtnbench equivalence gate.  ``mode`` may be ``"clustered"`` to
    run the same disruption over the hierarchy backbone.
    """
    core_messages._msg_counter = itertools.count(1)
    from repro.sim.trace import FlightRecorder

    network = SensorNetwork(
        Topology.grid(GRID_COLUMNS, GRID_ROWS, spacing=GRID_SPACING),
        seed=seed,
        config=_dtn_diffusion_config(exploratory_interval),
    )
    hierarchy = None
    if mode != "flat":
        from repro.hierarchy import install_hierarchy

        hierarchy = install_hierarchy(
            network, mode=mode,
            params={"announce_interval": 12.0, "announce_jitter": 1.0},
        )
    windows = partition_windows(30.0, duration, duty, period)
    left, right = _grid_groups()
    plan = FaultPlan(
        tuple(
            Partition(groups=(left, right), at=at, heal_at=until)
            for at, until in windows
        )
    )
    engine = FaultEngine(network, plan)
    recorder = (
        FlightRecorder(network.trace) if flight_recorder is not None else None
    )
    monitors = MonitorSuite(
        network, recorder=recorder, dump_path=flight_recorder
    )
    tap = _AttributionTap(network.trace)
    obj, sender, receiver, caches, agents = _arm_transfer(
        network, seed, custody, dtn_config, block_interval,
        payload=bytes(range(256)) * (payload_bytes // 256),
        offer_at=8.0,
        receiver_rounds=6,
        install_disabled=install_disabled,
    )
    for agent in agents.values():
        monitors.watch_custody(agent)
    network.run(until=duration)
    extra = {
        "scenario": "dtn-grid",
        "seed": seed,
        "duty": duty,
        "period": period,
        "duration": duration,
        "custody": custody,
        "mode": mode,
    }
    result = _finish_run(
        network, engine, monitors, tap, obj, sender, receiver,
        agents, windows, extra,
    )
    if hierarchy is not None:
        result["hierarchy_mode"] = mode
    if recorder is not None:
        recorder.detach()
        if monitors.dumped is None:
            monitors.dumped = recorder.dump(flight_recorder, reason="end-of-run")
        result["flight_recorder"] = {
            "path": str(flight_recorder),
            "records": monitors.dumped,
        }
    return result


#: mule line: source — mule — sink.
MULE_SOURCE = 0
MULE = 1
MULE_SINK = 2


def mule_run(
    seed: int = 1,
    custody: bool = True,
    duration: float = 140.0,
    payload_bytes: int = 1536,
    dtn_config: Optional[DtnConfig] = None,
) -> Dict[str, Any]:
    """The 2-partition data-mule scenario.

    A 3-node line where the middle node alternates sides — first
    ``{source, mule} | {sink}``, then ``{source} | {mule, sink}`` — so
    the endpoints are *never* simultaneously connected until the final
    heal.  Without custody nothing can cross; with custody the source
    hands blocks to the mule during the first window (one-hop carrier
    beacons + custody acks) and the mule re-injects them when the
    sink's interests reach it in the second."""
    core_messages._msg_counter = itertools.count(1)
    network = SensorNetwork(
        Topology.line(3, spacing=GRID_SPACING),
        seed=seed,
        config=_dtn_diffusion_config(8.0),
    )
    windows = [(10.0, 50.0), (50.0, 90.0)]
    plan = FaultPlan(
        (
            Partition(
                groups=((MULE_SOURCE, MULE), (MULE_SINK,)),
                at=windows[0][0], heal_at=windows[0][1],
            ),
            Partition(
                groups=((MULE_SOURCE,), (MULE, MULE_SINK)),
                at=windows[1][0], heal_at=windows[1][1],
            ),
        )
    )
    engine = FaultEngine(network, plan)
    monitors = MonitorSuite(network)
    tap = _AttributionTap(network.trace)

    obj = DataObject(OBJECT_ID, bytes(range(256)) * (payload_bytes // 256))
    policy = RetransmitPolicy() if custody else None
    sender = BlockSender(
        network.api(MULE_SOURCE),
        block_interval=0.5,
        reliability=policy,
        rng=make_rng(seed, "dtn:sender") if custody else None,
    )
    # Overriding SOURCE/SINK globals locally: _finish_run only needs the
    # sender/receiver/agent objects, not the grid ids.
    receiver = _TimedReceiver(
        network.api(MULE_SINK),
        OBJECT_ID,
        on_complete=lambda data, stats: None,
        quiet_timeout=4.0,
        max_repair_rounds=5,
        max_quiet_timeout=20.0,
        reliability=policy,
        rng=make_rng(seed, "dtn:receiver") if custody else None,
        persistent=custody,
    )
    agents: Dict[int, CustodyAgent] = {}
    if custody:
        for node_id in network.node_ids():
            agents[node_id] = CustodyAgent(
                network.node(node_id),
                rng=make_rng(seed, f"dtn:agent:{node_id}"),
                config=dtn_config or DtnConfig(),
            )
            monitors.watch_custody(agents[node_id])
    network.sim.schedule(12.0, sender.offer, obj, 0.0)
    network.run(until=duration)
    extra = {
        "scenario": "dtn-mule",
        "seed": seed,
        "custody": custody,
        "duration": duration,
    }
    return _finish_run(
        network, engine, monitors, tap, obj, sender, receiver,
        agents, windows, extra,
    )
