"""The custody agent: a filter between the transfer layer and the core.

:class:`CustodyAgent` installs one match-all filter just below the
block cache (and above the gradient core), where it can see every
transfer block *before* the core decides its fate.  Three behaviors:

* **accept on dark gradient** — a block the core would drop (no live
  demand, no reinforced next hop, no local sink) is absorbed into the
  :class:`~repro.dtn.custody.CustodyStore` instead of dying, and the
  drop attribution becomes a ``custody.*`` event rather than a silent
  radio loss;
* **carry and hand off** — custodied blocks are re-injected with
  seed-deterministic exponential backoff: through the routing core when
  demand has returned (repair), or as a one-hop carrier beacon when the
  node is still dark — which is how a data mule walking between
  partitions picks blocks up (the beacon carries ``Key.CUSTODIAN``, and
  any neighbor that accepts the handoff or can deliver answers with a
  one-hop CONTROL custody ack, following the hierarchy control-plane
  pattern);
* **release on evidence** — one-hop custody acks, network-flooded
  ``bulk-ack`` receiver acknowledgements, and local sink delivery all
  release custody (``custody.transfer``); everything else ends in an
  explicit ``custody.expire``.

The filter is only installed when ``config.enabled`` — a disabled
agent touches nothing, which is what keeps DTN-off runs bit-identical
(``dtnbench --smoke`` enforces it).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.filter_api import FilterHandle, GRADIENT_FILTER_PRIORITY
from repro.core.messages import Message, MessageType, make_control, make_data
from repro.naming import Attribute, AttributeVector, Operator
from repro.naming.keys import Key
from repro.sim.metrics import current_registry
from repro.transfer.sender import ACK_TYPE, TRANSFER_TYPE, decode_block_list

from repro.dtn.config import DtnConfig
from repro.dtn.custody import BlockKey, CustodyStore

#: below the block cache (+30), above the gradient core — custody sees
#: blocks the instant before the core would route or drop them.
CUSTODY_FILTER_PRIORITY = GRADIENT_FILTER_PRIORITY + 20

#: CONTROL_KIND value tagging one-hop custody acks.
CUSTODY_CONTROL_KIND = "custody"


class CustodyAgent:
    """Store-carry-forward custody for one node's transfer traffic."""

    def __init__(
        self,
        node,
        rng,
        config: Optional[DtnConfig] = None,
        store: Optional[CustodyStore] = None,
        transfer_type: str = TRANSFER_TYPE,
        energy_spent=None,
    ) -> None:
        self.node = node
        self.rng = rng
        self.config = config or DtnConfig()
        self.transfer_type = transfer_type
        self.store = store or CustodyStore(
            node.node_id, node.trace, self.config, energy_spent=energy_spent
        )
        self.reinjections = 0
        self.beacons = 0
        self.contacts = 0
        self.acks_sent = 0
        registry = current_registry()
        self._m_reinjections = registry.counter("dtn.reinjections")
        self._m_acks = registry.counter("dtn.acks_sent")
        self._retry: Dict[BlockKey, object] = {}
        #: key -> time custody last left this node via handoff; a
        #: hold-down against two dark neighbors ping-ponging a block
        #: (each handoff would otherwise reset the age watermark).
        self._released_at: Dict[BlockKey, float] = {}
        #: key -> the neighbor custody was handed to; never re-accept a
        #: handoff of that key from that neighbor — custody must not
        #: migrate backward (source-side nodes reclaiming blocks from a
        #: departing mule would strand them when the partition shifts).
        self._handed_to: Dict[BlockKey, int] = {}
        #: key -> remaining *routed* re-injection credit.  Custody on a
        #: node with live demand and a live path is passive insurance —
        #: the transfer layer's own retransmission and repair machinery
        #: owns recovery there, and blind-firing routed floods on a
        #: backoff loop congests the channel enough to kill the very
        #: acks that would release custody (measured: 2.5x
        #: completion-time regression on a healthy grid).  Credit is
        #: granted only by events that mean the route is *news*: a
        #: contact (a matching interest after a gap — partition heal,
        #: mule reaching the sink), a carrier handoff just accepted, or
        #: a dark (beaconing) spell ending.
        self._credit: Dict[BlockKey, int] = {}
        #: object id -> when a matching interest last passed this node;
        #: the contact detector (see ``DtnConfig.contact_gap``).
        self._last_interest: Dict[str, float] = {}
        #: object id -> when this node last had a live gradient for it;
        #: the beacon-grace reference (see ``DtnConfig.beacon_grace``).
        self._routable_at: Dict[str, float] = {}
        self.handle: Optional[FilterHandle] = None
        if self.config.enabled:
            self.handle = node.add_filter(
                AttributeVector(),
                CUSTODY_FILTER_PRIORITY,
                self._callback,
                name="dtn-custody",
            )

    # -- pipeline --------------------------------------------------------

    def _callback(self, message: Message, handle: FilterHandle) -> None:
        if message.msg_type is MessageType.CONTROL:
            if (
                message.attrs.value_of(Key.CONTROL_KIND)
                == CUSTODY_CONTROL_KIND
            ):
                self._on_custody_ack(message)
                return  # one-hop: acks terminate here
            self.node.send_message(message, handle)
            return
        if message.msg_type is MessageType.INTEREST:
            self._on_interest(message)
            self.node.send_message(message, handle)
            return
        if message.msg_type.is_data:
            data_type = message.attrs.value_of(Key.TYPE)
            if data_type == self.transfer_type:
                self._on_block(message, handle)
                return
            if data_type == ACK_TYPE:
                self._on_transfer_ack(message)
                # The ack still has to reach the sender.
        self.node.send_message(message, handle)

    # -- block handling --------------------------------------------------

    def _on_block(self, message: Message, handle: FilterHandle) -> None:
        attrs = message.attrs
        object_id = attrs.value_of(Key.INSTANCE)
        index = attrs.value_of(Key.SEQUENCE)
        total = attrs.value_of(Key.DURATION)
        payload = attrs.value_of(Key.PAYLOAD)
        if (
            object_id is None
            or index is None
            or total is None
            or not isinstance(payload, bytes)
        ):
            self.node.send_message(message, handle)
            return
        key: BlockKey = (object_id, int(index))
        carrier = attrs.value_of(Key.CUSTODIAN)
        if carrier is not None:
            carrier = int(carrier)
            if carrier == self.node.node_id:
                carrier = None  # a forwarded copy of our own re-injection
        handoff = carrier is not None and message.last_hop == carrier
        now = self.node.sim.now
        matches = self.node.gradients.matching_data(attrs, now)
        local = any(entry.local_sink for entry in matches)
        routable = local or self._has_forward_path(message, matches, now)

        if local and carrier is not None:
            # The block made it: tell the carrier in earshot.
            self.node.trace.emit(
                now, "custody.deliver", node=self.node.node_id,
                object=object_id, index=int(index), trace=message.trace_id,
                carrier=carrier,
            )
            self._send_ack(key, delivered=True)
        elif handoff:
            # A carrier in earshot is offering this block.  Take custody
            # (routable or not — a handoff beacon means the carrier is
            # dark, and we are its best chance) and confirm one-hop.
            if self.store.holds(key) or self._accept(
                message, key, carrier, now
            ) is not None:
                self._send_ack(key, delivered=False)
        elif not routable:
            # Dark gradient: the core is about to drop this block.
            # Insure it before that happens.
            if not self.store.holds(key):
                self._accept(message, key, carrier, now)
        # Custody is insurance, not a detour: the original copy always
        # continues to the core, which remains the single authority on
        # forwarding and drop attribution.  A dark block dies there
        # exactly as it would without custody (no extra transmissions),
        # while the store's copy waits for repair or a new carrier.
        self.node.send_message(message, handle)

    def _has_forward_path(self, message: Message, matches, now: float) -> bool:
        """Mirror of the core's forwarding decision for this message."""
        node = self.node
        if not matches:
            # A hierarchy policy may still route unmatched exploratory
            # data (rendezvous corridors); don't custody what it can carry.
            return (
                node.forward_policy is not None
                and message.msg_type is MessageType.EXPLORATORY_DATA
            )
        if message.msg_type is MessageType.EXPLORATORY_DATA:
            return any(e.active_gradient_neighbors(now) for e in matches)
        if not node.config.enable_reinforcement:
            return any(e.active_gradient_neighbors(now) for e in matches)
        data_origin = (
            message.data_origin
            if message.data_origin is not None
            else message.origin
        )
        for entry in matches:
            for neighbor in entry.reinforced_neighbors(data_origin, now):
                if neighbor != message.last_hop:
                    return True
        return False

    def _accept(
        self,
        message: Message,
        key: BlockKey,
        carrier: Optional[int],
        now: float,
    ):
        if carrier is not None:
            if self._handed_to.get(key) == carrier:
                return None  # never take back what we handed forward
            released = self._released_at.get(key)
            if released is not None and now - released < self.config.retry_max:
                return None  # hold-down: we just handed this block off
        attrs = message.attrs
        entry = self.store.accept(
            key[0], key[1],
            int(attrs.value_of(Key.DURATION)),
            attrs.value_of(Key.PAYLOAD),
            now,
            trace=message.trace_id,
            carrier=carrier,
        )
        if entry is None:
            return None
        # Custody age travels with the block: a handoff must not reset
        # the age watermark, or two dark nodes could carry a block
        # between them forever.
        born = attrs.value_of(Key.TIMESTAMP)
        if born is not None:
            entry.accepted_at = min(now, float(born))
        if carrier is not None:
            # A handoff means the carrier judged us its best chance —
            # clear the block for immediate routed attempts.
            self._credit[key] = self.config.routed_burst
        self.store.sweep(now)
        if self.store.holds(key):
            self._schedule_retry(key, entry.attempts)
        return self.store.get(key)

    # -- acks ------------------------------------------------------------

    def _send_ack(self, key: BlockKey, delivered: bool) -> None:
        node = self.node
        attrs = (
            AttributeVector.builder()
            .actual(Key.CONTROL_KIND, CUSTODY_CONTROL_KIND)
            .actual(Key.INSTANCE, key[0])
            .actual(Key.SEQUENCE, key[1])
            .actual(Key.CUSTODIAN, node.node_id)
            .actual(Key.CONFIDENCE, 1.0 if delivered else 0.0)
            .build()
        )
        message = make_control(
            attrs=attrs,
            origin=node.node_id,
            header_bytes=node.config.header_bytes,
        )
        node._transmit(message)
        self.acks_sent += 1
        self._m_acks.inc()

    def _on_custody_ack(self, message: Message) -> None:
        if message.origin == self.node.node_id:
            return
        attrs = message.attrs
        object_id = attrs.value_of(Key.INSTANCE)
        index = attrs.value_of(Key.SEQUENCE)
        if object_id is None or index is None:
            return
        key: BlockKey = (object_id, int(index))
        delivered = (attrs.value_of(Key.CONFIDENCE) or 0.0) >= 1.0
        if not delivered:
            entry = self.store.get(key)
            if entry is not None and entry.carrier == int(message.origin):
                # The acker is the carrier we accepted this block from:
                # releasing now would move custody backward.  Keep our
                # copy — redundant custody beats stranded custody.
                return
        self._release(key, to=int(message.origin), delivered=delivered)

    def _on_transfer_ack(self, message: Message) -> None:
        """Receiver-side bulk acks flood the network; any custodian that
        overhears one drops the acknowledged blocks — the end-to-end
        release path for custody stranded far from the receiver."""
        attrs = message.attrs
        object_id = attrs.value_of(Key.INSTANCE)
        payload = attrs.value_of(Key.PAYLOAD)
        if object_id is None or not isinstance(payload, bytes):
            return
        try:
            indices = decode_block_list(payload)
        except ValueError:
            return
        for index in indices:
            self._release(
                (object_id, index), to=int(message.origin), delivered=True
            )
        # The ack's DURATION attribute carries the receiver's total
        # received count.  Bulk-acks only name a recent window of
        # indices, so a custodian of an *early* block never sees its
        # index acked — but once the count reaches an entry's known
        # block total the object is complete and every held block of it
        # is delivered.  Release them all.
        received = attrs.value_of(Key.DURATION)
        if received is not None:
            received = int(received)
            done = [
                entry.key
                for entry in self.store.entries()
                if entry.object_id == object_id and received >= entry.total
            ]
            for key in done:
                self._release(key, to=int(message.origin), delivered=True)

    def _release(self, key: BlockKey, to: int, delivered: bool) -> None:
        if not self.store.holds(key):
            return
        now = self.node.sim.now
        self.store.release(key, now, to=to, delivered=delivered)
        self._released_at[key] = now
        self._credit.pop(key, None)
        if not delivered:
            self._handed_to[key] = to
        timer = self._retry.pop(key, None)
        if timer is not None:
            timer.cancel()

    # -- contact trigger -------------------------------------------------

    def _on_interest(self, message: Message) -> None:
        """A matching interest after a gap is a *contact*: demand (or a
        path toward it) just came back — retry held blocks promptly
        instead of waiting out the backoff.  Interests arriving on
        cadence are the connected-path steady state and grant nothing:
        the live transfer layer owns recovery there."""
        # Interests carry *formal* attributes (EQ, not IS), so read the
        # raw attribute value rather than value_of (actuals only).
        type_attr = message.attrs.find(Key.TYPE)
        if type_attr is None or type_attr.value != self.transfer_type:
            return
        instance_attr = message.attrs.find(Key.INSTANCE)
        wanted = instance_attr.value if instance_attr is not None else None
        now = self.node.sim.now
        stream = "" if wanted is None else str(wanted)
        last = self._last_interest.get(stream)
        self._last_interest[stream] = now
        if last is not None and now - last < self.config.contact_gap:
            return  # on-cadence refresh, not a contact
        keys = [
            entry.key
            for entry in self.store.entries()
            if wanted is None or entry.object_id == wanted
        ]
        if not keys:
            return
        self.contacts += 1
        # Stagger the re-injections serially: a full store firing inside
        # one window is a self-inflicted collision storm on a sparse
        # channel, so space the keys out and jitter each slot.
        spacing = max(0.25, self.config.contact_delay / len(keys))
        for slot, key in enumerate(keys):
            self._credit[key] = self.config.routed_burst
            delay = (slot + 1) * spacing + self.rng.uniform(0.0, spacing * 0.5)
            self._schedule_retry(key, attempts=None, delay=delay)

    # -- retry loop ------------------------------------------------------

    def _retry_delay(self, attempts: int) -> float:
        delay = min(
            self.config.retry_max,
            self.config.retry_base * self.config.retry_factor ** attempts,
        )
        return delay + self.rng.uniform(0.0, self.config.retry_jitter * delay)

    def _schedule_retry(
        self,
        key: BlockKey,
        attempts: Optional[int],
        delay: Optional[float] = None,
    ) -> None:
        timer = self._retry.pop(key, None)
        if timer is not None:
            timer.cancel()
        if delay is None:
            delay = self._retry_delay(attempts or 0)
        self._retry[key] = self.node.sim.schedule(
            delay, self._retry_tick, key, name="dtn.retry"
        )

    def _retry_tick(self, key: BlockKey) -> None:
        self._retry.pop(key, None)
        now = self.node.sim.now
        for stale in self.store.sweep(now):
            timer = self._retry.pop(stale, None)
            if timer is not None:
                timer.cancel()
        entry = self.store.get(key)
        if entry is None:
            return
        if entry.attempts >= self.config.max_attempts:
            self.store.expire_retries(key, now)
            return
        builder = (
            AttributeVector.builder()
            .actual(Key.TYPE, self.transfer_type)
            .actual(Key.INSTANCE, entry.object_id)
            .actual(Key.SEQUENCE, entry.index)
            .actual(Key.DURATION, entry.total)
            .actual(Key.TIMESTAMP, round(entry.accepted_at, 6))
        )
        matches = self.node.gradients.matching_data(builder.build(), now)
        if matches:
            self._routable_at[entry.object_id] = now
            credit = self._credit.get(key, 0)
            if credit <= 0:
                # Routable but no credit: nothing new has happened, the
                # live transfer machinery owns recovery here, and
                # custody holds as silent insurance.  Keep ticking (no
                # transmission) so a later dark spell still beacons and
                # the age watermark still expires us.
                if self.store.holds(key):
                    self._schedule_retry(key, entry.attempts)
                return
            self._credit[key] = credit - 1
            entry.attempts += 1
            # Demand is back: hand the block to the routing core — on
            # the reinforced path when one exists, as an exploratory
            # re-anchor otherwise.  No CUSTODIAN attribute: neighbors
            # must not chain-custody a routed flood (a single dark
            # block would end up custodied network-wide); custody stays
            # here until an ack or the age watermark releases it.
            reinforced = self.node.config.enable_reinforcement and any(
                e.reinforced_neighbors(self.node.node_id, now)
                for e in matches
            )
            mode = "routed"
            attrs = builder.build().with_attribute(
                Attribute.blob(Key.PAYLOAD, Operator.IS, entry.payload)
            )
            message = make_data(
                attrs=attrs,
                origin=self.node.node_id,
                exploratory=not reinforced,
                header_bytes=self.node.config.header_bytes,
            )
        else:
            routable = self._routable_at.get(entry.object_id)
            if (
                routable is not None
                and now - routable < self.config.beacon_grace
            ):
                # Demand was here moments ago — this darkness is far
                # more likely a couple of congestion-dropped interest
                # refreshes than a real disruption, and beaconing into
                # congestion amplifies it.  Hold quiet through the
                # grace; a refresh normally lands well before it ends.
                if self.store.holds(key):
                    self._schedule_retry(key, entry.attempts)
                return
            # Still dark: one-hop carrier beacon, looking for a mule or
            # a neighbor with a live path.  The CUSTODIAN attribute
            # marks it as a handoff offer.  Refresh the routed credit so
            # the first routable tick after this spell fires without
            # waiting for an interest refresh.
            self._credit[key] = self.config.routed_burst
            entry.attempts += 1
            mode = "beacon"
            attrs = (
                builder.actual(Key.CUSTODIAN, self.node.node_id)
                .build()
                .with_attribute(
                    Attribute.blob(Key.PAYLOAD, Operator.IS, entry.payload)
                )
            )
            message = make_data(
                attrs=attrs,
                origin=self.node.node_id,
                exploratory=True,
                header_bytes=self.node.config.header_bytes,
            )
        message.parent_trace = entry.trace
        self.reinjections += 1
        self._m_reinjections.inc()
        self.node.trace.emit(
            now, "custody.reinject", node=self.node.node_id,
            object=entry.object_id, index=entry.index,
            trace=message.trace_id, parent=entry.trace,
            mode=mode, attempt=entry.attempts,
        )
        if mode == "routed":
            self.node.send_message(message, self.handle)
        else:
            # The beacon bypasses the core, so mark it seen in our own
            # duplicate cache first — a routable neighbor may flood it
            # back, and re-forwarding our own block at a new hop count
            # would be a forwarding loop.
            self.beacons += 1
            self.node.cache.seen_before(("data", message.unique_id), now)
            self.node.send_message_to_next(message, self.handle)
        if self.store.holds(key):
            if mode == "routed":
                # Space follow-up routed shots a full backoff cap
                # apart: the first shot plus the transfer layer's own
                # machinery usually release custody well before a
                # second is due, and a credit burst burned on the
                # short backoff is just a flood storm.
                delay = self.config.retry_max
                delay += self.rng.uniform(
                    0.0, self.config.retry_jitter * delay
                )
                self._schedule_retry(key, attempts=None, delay=delay)
            else:
                self._schedule_retry(key, entry.attempts)

    # -- lifecycle -------------------------------------------------------

    def detach(self) -> None:
        if self.handle is not None:
            self.node.remove_filter(self.handle)
            self.handle = None
        for timer in self._retry.values():
            timer.cancel()
        self._retry.clear()
