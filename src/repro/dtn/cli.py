"""``python -m repro dtn`` — run and report disruption-tolerant transfers.

Subcommands::

    dtn run [--duty 0.6] [--no-custody] [--mule]    run a scenario
    dtn report result.json                           render a saved result
    dtn --smoke                                      deterministic CI gate

``dtn run`` exits 0 iff invariants held and no loss went unattributed,
so it doubles as a scriptable check.  The smoke gate delegates to
:mod:`repro.experiments.dtnbench` (the same four checks CI runs).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.dtn import format_dtn_report
from repro.dtn.scenario import dtn_run, mule_run


def _cmd_run(args) -> int:
    if args.mule:
        result = mule_run(seed=args.seed, custody=not args.no_custody)
    else:
        result = dtn_run(
            seed=args.seed,
            duty=args.duty,
            duration=args.duration,
            custody=not args.no_custody,
            mode=args.mode,
            flight_recorder=args.flight_recorder,
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
        print(f"wrote {args.out}")
    print(format_dtn_report(result))
    info = result.get("flight_recorder")
    if info is not None:
        print(f"flight recorder: {info['records']} events in {info['path']}")
    return 0 if result["invariants_ok"] and not result["unattributed"] else 1


def _cmd_report(args) -> int:
    try:
        with open(args.result, "r", encoding="utf-8") as handle:
            result = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read result: {exc}", file=sys.stderr)
        return 1
    print(format_dtn_report(result))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro dtn",
        description="disruption-tolerant bulk transfer: custody, "
        "retransmission, and partition-resilient delivery",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the deterministic CI gate (dtnbench --smoke) and exit",
    )
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser("run", help="run a disruption scenario")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument(
        "--duty", type=float, default=0.6,
        help="fraction of each period the grid spends partitioned",
    )
    run.add_argument("--duration", type=float, default=260.0)
    run.add_argument(
        "--mode", choices=("flat", "clustered"), default="flat",
        help="interest propagation mode for the grid scenario",
    )
    run.add_argument(
        "--no-custody", action="store_true",
        help="legacy stack: no custody agents, no retransmission",
    )
    run.add_argument(
        "--mule", action="store_true",
        help="the 3-node data-mule line instead of the grid",
    )
    run.add_argument("--out", help="write the full result JSON here")
    run.add_argument(
        "--flight-recorder", metavar="PATH",
        help="dump the trace rings to PATH (JSONL) on the first "
        "invariant violation, or at end of run",
    )

    rep = sub.add_parser("report", help="render a saved result JSON")
    rep.add_argument("result")

    args = parser.parse_args(argv)
    if args.smoke:
        from repro.experiments.dtnbench import run_smoke

        return run_smoke()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "report":
        return _cmd_report(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
