"""Tuning knobs for the custody layer.

Everything here is opt-in per campaign: constructing a
:class:`DtnConfig` with ``enabled=False`` (or simply not attaching the
custody agents) leaves the stack bit-identical to the legacy behavior —
the equivalence gate in ``dtnbench --smoke`` holds the layer to that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class DtnConfig:
    """Per-node custody policy.

    The retry schedule is exponential with seed-deterministic jitter:
    attempt ``n`` waits ``min(retry_max, retry_base * retry_factor**n)``
    seconds plus a uniform draw in ``[0, retry_jitter * delay)`` from
    the node's own ``make_rng`` stream, so replays are bit-identical
    and co-located custodians do not retry in lockstep.
    """

    enabled: bool = True
    #: custody depth watermark — oldest-first eviction beyond this.
    capacity: int = 64
    #: custody age watermark (seconds) — older entries expire (never
    #: silently: every eviction emits ``custody.expire`` + a
    #: ``path.drop`` with a ``custody.*`` reason).
    max_age: float = 120.0
    #: bound on re-injection transmissions per custodied block.
    max_attempts: int = 16
    #: the schedule starts patient — a contact-triggered retry (a
    #: matching interest arriving) is what provides promptness, so the
    #: periodic retries can stay off the channel.
    retry_base: float = 4.0
    retry_factor: float = 1.7
    retry_max: float = 20.0
    retry_jitter: float = 0.5
    #: contact-triggered retries spread over this many seconds after a
    #: matching interest arrives (jittered, seed-deterministic).  The
    #: window must be wide enough that a full store re-injecting does
    #: not collide with itself — one block every ~250 ms, not all at
    #: once.
    contact_delay: float = 6.0
    #: a matching interest only counts as a *contact* when interests had
    #: stopped arriving for this long (or it is the first one ever seen
    #: for the object).  Sinks refresh interests continuously, so on a
    #: connected path the stream never gaps and custody stays silent;
    #: a gap means the sink side was unreachable and this refresh is
    #: the heal.  Must exceed the sink's refresh interval with margin.
    contact_gap: float = 25.0
    #: a node that goes dark only beacons after demand has been absent
    #: this long.  Losing a couple of interest refreshes to collisions
    #: momentarily darkens a *connected* node, and beaconing into that
    #: congestion (every neighbor accepting a handoff copy, each copy
    #: later beaconing in turn) amplifies exactly the traffic that
    #: caused it.  A node that was never routable — a disconnected
    #: source, a mule in transit — has no recent-demand timestamp and
    #: beacons immediately.
    beacon_grace: float = 25.0
    #: routed re-injection transmissions granted per contact (or per
    #: carrier handoff / dark-to-routable transition).  When the budget
    #: is spent the entry holds passively — the live transfer layer owns
    #: recovery on a connected path, and custody blind-firing routed
    #: floods was measured to congest the channel enough to delay the
    #: very transfer it was insuring.
    routed_burst: int = 3
    #: energy awareness: refuse *new* custody once the node has spent
    #: this many joules (None = never refuse on energy grounds).
    energy_budget: Optional[float] = None
