"""Disruption-tolerant diffusion: store-carry-forward custody.

Sparse mobile deployments break the diffusion fabric's standing
assumption that gradients and reinforcement survive ordinary loss —
connectivity itself comes and goes.  This package (ROADMAP's DTN
scenario item; the NAME mechanism in PAPERS.md) makes delivery robust
to that:

* :class:`~repro.dtn.custody.CustodyStore` — a bounded, energy-aware
  per-node promise ledger: blocks the routing core would drop on a dark
  gradient are held, watermark-evicted oldest-first, and *never*
  silently lost (every exit emits a ``custody.*`` trace event and
  terminal losses join the per-layer drop attribution);
* :class:`~repro.dtn.agent.CustodyAgent` — the filter between
  ``repro.transfer`` and ``repro.core`` that accepts custody, re-injects
  with seed-deterministic backoff (through the core when demand returns,
  as one-hop carrier beacons while dark — the data-mule handoff), and
  releases on one-hop custody acks, flooded receiver acks, or delivery;
* :func:`~repro.dtn.scenario.dtn_run` — the canned
  partition/mobility scenario behind the ``dtn`` campaign,
  ``dtnbench``, and the scenario tests, with per-block loss attribution.

Everything is opt-in per campaign: with no agent attached (or
``DtnConfig(enabled=False)``) the stack is bit-identical to the legacy
behavior — ``python -m repro.experiments.dtnbench --smoke`` gates that.
"""

from repro.dtn.config import DtnConfig
from repro.dtn.custody import CustodyEntry, CustodyStore
from repro.dtn.agent import (
    CUSTODY_CONTROL_KIND,
    CUSTODY_FILTER_PRIORITY,
    CustodyAgent,
)
from repro.dtn.scenario import dtn_run, mule_run

__all__ = [
    "CUSTODY_CONTROL_KIND",
    "CUSTODY_FILTER_PRIORITY",
    "CustodyAgent",
    "CustodyEntry",
    "CustodyStore",
    "DtnConfig",
    "dtn_run",
    "mule_run",
]
