"""Bounded, energy-aware per-node custody store.

A custody entry is one transfer block this node has promised to carry
until somebody downstream takes responsibility for it (a custody ack),
it reaches a sink, or it is *explicitly* expired.  Nothing ever leaves
the store silently: every removal emits a ``custody.*`` trace event,
and terminal losses additionally emit a ``path.drop`` record with
``layer="custody"`` so the per-layer loss attribution (PR 2) covers
disrupted delivery too.  The ``custody-conservation`` monitor in
:mod:`repro.faults.monitors` cross-checks the event stream against the
store contents.

Graceful degradation is watermark-driven: depth beyond
:attr:`~repro.dtn.config.DtnConfig.capacity` evicts oldest-first,
age beyond :attr:`~repro.dtn.config.DtnConfig.max_age` expires on the
next sweep, and a node past its energy budget refuses *new* custody
(it keeps what it already promised to carry).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.sim.metrics import current_registry
from repro.dtn.config import DtnConfig

BlockKey = Tuple[str, int]  # (object id, block index)


@dataclass
class CustodyEntry:
    """One block in custody."""

    object_id: str
    index: int
    total: int
    payload: bytes
    accepted_at: float
    #: trace id of the message custody was taken of — re-injections
    #: carry it as their parent, so the causal chain survives custody.
    trace: str
    #: re-injection transmissions so far.
    attempts: int = 0
    #: the carrier the block was accepted from (None = taken at this
    #: node's own dark gradient).
    carrier: Optional[int] = field(default=None)

    @property
    def key(self) -> BlockKey:
        return (self.object_id, self.index)


class CustodyStore:
    """Custody bookkeeping for one node.

    The store owns acceptance policy (duplicates, energy budget) and
    eviction (depth + age watermarks); the
    :class:`~repro.dtn.agent.CustodyAgent` owns the retry schedule and
    the wire protocol.  All events go through the node's trace bus.
    """

    def __init__(
        self,
        node_id: int,
        trace,
        config: Optional[DtnConfig] = None,
        energy_spent: Optional[Callable[[], float]] = None,
    ) -> None:
        self.node_id = node_id
        self.trace = trace
        self.config = config or DtnConfig()
        #: joules consumed so far (from the node's EnergyLedger);
        #: compared against ``config.energy_budget``.
        self.energy_spent = energy_spent
        self._entries: "OrderedDict[BlockKey, CustodyEntry]" = OrderedDict()
        self.accepted = 0
        self.transferred = 0
        self.expired = 0
        self.refused_energy = 0
        self.depth_high_water = 0
        registry = current_registry()
        self._m_accepted = registry.counter("dtn.custody.accepted")
        self._m_transferred = registry.counter("dtn.custody.transferred")
        self._m_expired = registry.counter("dtn.custody.expired")
        self._m_depth = registry.gauge("dtn.custody.depth")

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def holds(self, key: BlockKey) -> bool:
        return key in self._entries

    def get(self, key: BlockKey) -> Optional[CustodyEntry]:
        return self._entries.get(key)

    def entries(self) -> List[CustodyEntry]:
        return list(self._entries.values())

    def keys_for(self, object_id: str) -> List[BlockKey]:
        return [k for k in self._entries if k[0] == object_id]

    # -- acceptance ------------------------------------------------------

    def accept(
        self,
        object_id: str,
        index: int,
        total: int,
        payload: bytes,
        now: float,
        trace: str,
        carrier: Optional[int] = None,
    ) -> Optional[CustodyEntry]:
        """Take custody of one block; None when policy refuses.

        Acceptance never fails on capacity — the depth watermark evicts
        the *oldest* promise instead (emitting its expiry), because a
        fresh block from a live contact is worth more than the block
        nobody has wanted for longest.
        """
        key = (object_id, index)
        if key in self._entries:
            return None
        if (
            self.config.energy_budget is not None
            and self.energy_spent is not None
            and self.energy_spent() >= self.config.energy_budget
        ):
            self.refused_energy += 1
            self.trace.emit(
                now, "custody.refuse", node=self.node_id,
                object=object_id, index=index, reason="energy",
            )
            return None
        entry = CustodyEntry(
            object_id=object_id, index=index, total=total,
            payload=payload, accepted_at=now, trace=trace, carrier=carrier,
        )
        self._entries[key] = entry
        self.accepted += 1
        self._m_accepted.inc()
        self.depth_high_water = max(self.depth_high_water, len(self._entries))
        self._m_depth.set(len(self._entries))
        self.trace.emit(
            now, "custody.accept", node=self.node_id,
            object=object_id, index=index, trace=trace, carrier=carrier,
        )
        while len(self._entries) > self.config.capacity:
            oldest = next(iter(self._entries))
            self._expire(oldest, now, "capacity")
        return self._entries.get(key)

    # -- release ---------------------------------------------------------

    def release(
        self,
        key: BlockKey,
        now: float,
        to: Optional[int] = None,
        delivered: bool = False,
    ) -> Optional[CustodyEntry]:
        """Custody moved on: a downstream node acked (re-custody or
        final delivery).  Emits ``custody.transfer``."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return None
        self.transferred += 1
        self._m_transferred.inc()
        self._m_depth.set(len(self._entries))
        self.trace.emit(
            now, "custody.transfer", node=self.node_id,
            object=entry.object_id, index=entry.index, trace=entry.trace,
            to=to, delivered=delivered,
        )
        return entry

    def expire_retries(self, key: BlockKey, now: float) -> Optional[CustodyEntry]:
        """The retry bound ran out; an explicit terminal loss."""
        return self._expire(key, now, "retries")

    def sweep(self, now: float) -> List[BlockKey]:
        """Expire every entry past the age watermark; returns their keys."""
        stale = [
            key
            for key, entry in self._entries.items()
            if now - entry.accepted_at >= self.config.max_age
        ]
        for key in stale:
            self._expire(key, now, "age")
        return stale

    def _expire(self, key: BlockKey, now: float, why: str) -> Optional[CustodyEntry]:
        entry = self._entries.pop(key, None)
        if entry is None:
            return None
        self.expired += 1
        self._m_expired.inc()
        self._m_depth.set(len(self._entries))
        self.trace.emit(
            now, "custody.expire", node=self.node_id,
            object=entry.object_id, index=entry.index, trace=entry.trace,
            reason=why, age=round(now - entry.accepted_at, 3),
            attempts=entry.attempts,
        )
        # Terminal loss joins the per-layer drop attribution.
        self.trace.emit(
            now, "path.drop", node=self.node_id, trace=entry.trace,
            msg_type="DATA", reason=f"custody.expire-{why}", layer="custody",
        )
        return entry
