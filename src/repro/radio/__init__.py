"""Wireless substrate: positions, propagation, shared channel, modems.

Models the paper's testbed radio environment: Radiometrix RPC packet
modems (~13 kb/s, 27-byte fragments), attenuated antennas for multi-hop
operation indoors, asymmetric and intermittent links, and a shared
medium where hidden terminals corrupt overlapping transmissions.
"""

from repro.radio.channel import Channel, Transmission
from repro.radio.modem import BROADCAST_ADDRESS, Modem, RadioParams
from repro.radio.neighborhood import NeighborhoodIndex, supports_fast_path
from repro.radio.propagation import (
    DistancePropagation,
    FastPathPropagation,
    GilbertElliotLink,
    PropagationModel,
    TablePropagation,
)
from repro.radio.topology import Position, Topology
from repro.radio.vectorized import (
    VectorizedPropagation,
    available as vectorized_available,
    vectorize,
)

__all__ = [
    "Channel",
    "Transmission",
    "Modem",
    "RadioParams",
    "BROADCAST_ADDRESS",
    "PropagationModel",
    "FastPathPropagation",
    "DistancePropagation",
    "TablePropagation",
    "GilbertElliotLink",
    "NeighborhoodIndex",
    "supports_fast_path",
    "Position",
    "Topology",
    "VectorizedPropagation",
    "vectorize",
    "vectorized_available",
]
