"""Vectorized radio fast path: struct-of-arrays link state on numpy.

The PR-4 neighborhood index made the channel O(audible) per fragment,
but every audible lane still costs a handful of Python dict probes and
float compares.  This module batches that per-lane work:

* :class:`VectorizedPropagation` — an opt-in adapter around any
  :class:`~repro.radio.propagation.FastPathPropagation` model.  Scalar
  queries delegate verbatim (bit-identical fallback); in addition the
  adapter exposes :meth:`VectorizedPropagation.batch_kernel`, which the
  :class:`~repro.radio.neighborhood.NeighborhoodIndex` uses to build a
  :class:`BatchLinkState`.
* :class:`BatchLinkState` — dense per-epoch arrays: member ids, one
  inflated bound row per sender (audibility and carrier-sense cuts as
  single vector compares), and per-sender *delivery rows* holding the
  exact windowed PRR of every audible lane plus the row's joint expiry.
* :func:`batch_hash_units` — the ``loss_mode="hashed"`` splitmix64
  draw for a whole receiver set as uint64 array ops, bit-identical to
  ``channel._hash_unit`` (it replays CPython's tuple hash lane by
  lane).

Correctness contract (DESIGN §11): batch *bounds* are inflated by
``_BOUND_MARGIN`` so numpy ULP drift can only widen candidate sets —
supersets are safe because every verdict re-checks the exact scalar
PRR from ``link_prr_window``, exactly the PR-4 superset rule.  Exact
PRRs are never computed with float vector math: delivery rows are
filled lane by lane through the scalar model (once per validity
window) and only *served* in batch.  Stream-mode loss draws stay on
the shared RNG in finalization order; only hashed draws batch.

Everything degrades gracefully: no numpy (or ``REPRO_NO_NUMPY=1`` in
the environment), an unsupported model, or a non-opted-in model all
yield ``batch_kernel() is None`` and the scalar fast path runs
unchanged.
"""

from __future__ import annotations

import math
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.radio.neighborhood import supports_fast_path
from repro.radio.propagation import (
    DistancePropagation,
    GilbertElliotLink,
    TablePropagation,
)

_MASK64 = (1 << 64) - 1
#: additive slack on batch bound rows: far above float64 ULP noise in
#: numpy's sqrt/cos vs math's, far below any PRR scale of interest, so
#: batch cuts are supersets of the scalar cuts by construction.
_BOUND_MARGIN = 1e-9

# CPython's tuple hash (xxHash-style) and int hash internals, replayed
# by batch_hash_units.  Stable across CPython versions with SIZEOF_VOID_P
# == 8 (the tuple hash algorithm is part of the stable vectors in
# Lib/test), and guarded by tests/test_vectorized.py exactness checks.
_XXPRIME_1 = 11400714785074694791
_XXPRIME_2 = 14029467366897019727
_XXPRIME_5 = 2870177450012600261
_PYHASH_MODULUS = (1 << 61) - 1

_np = None
_np_probed = False


def _numpy():
    """Import numpy once; None when unavailable."""
    global _np, _np_probed
    if not _np_probed:
        _np_probed = True
        try:
            import numpy
        except ImportError:
            numpy = None
        globals()["_np"] = numpy
    return _np


def available() -> bool:
    """Can the batch engine run here?

    False when numpy is missing (it is an optional ``[perf]`` extra)
    or when ``REPRO_NO_NUMPY`` is set in the environment — the CI knob
    that forces the scalar fallback so it can never rot.  The env var
    is re-read per call: tests toggle it around individual scenarios.
    """
    if os.environ.get("REPRO_NO_NUMPY"):
        return False
    return _numpy() is not None


def vectorize(model):
    """Opt ``model`` into the batch engine.

    Returns a :class:`VectorizedPropagation` wrapping ``model`` (idempotent
    on an already-wrapped model).  The wrapper is safe to create even
    when numpy is absent — it simply never yields a kernel and every
    consumer stays on the scalar path.
    """
    if isinstance(model, VectorizedPropagation):
        return model
    return VectorizedPropagation(model)


class VectorizedPropagation:
    """Opt-in adapter: scalar delegation plus a batch kernel factory.

    The channel and the neighborhood/boundary indexes treat any model
    exposing a callable ``batch_kernel`` as vectorization-capable; all
    scalar protocol methods delegate verbatim so verdicts computed
    through the adapter are bit-identical to the wrapped model's.
    """

    def __init__(self, base) -> None:
        if not supports_fast_path(base):
            raise ValueError(
                f"{type(base).__name__} does not implement the radio "
                "fast-path protocol; the batch engine layers on top of it"
            )
        self.base = base
        # Bind the wrapped model's methods straight onto the instance:
        # scalar queries run tens of thousands of times per simulated
        # second (epoch syncs, window refills), and instance-attribute
        # dispatch skips the delegation frame entirely.  The class-level
        # defs below remain the documented protocol (and the fallback
        # for subclasses overriding them).
        self.link_prr = base.link_prr
        self.prr_epoch = base.prr_epoch
        self.link_prr_bound = base.link_prr_bound
        self.link_prr_window = base.link_prr_window

    # -- scalar delegation (bit-identical fallback) -------------------------

    def link_prr(self, src: int, dst: int, now: float) -> float:
        return self.base.link_prr(src, dst, now)

    def prr_epoch(self) -> object:
        return self.base.prr_epoch()

    def link_prr_bound(self, src: int, dst: int) -> float:
        return self.base.link_prr_bound(src, dst)

    def link_prr_window(self, src: int, dst: int, now: float) -> Tuple[float, float]:
        return self.base.link_prr_window(src, dst, now)

    def audible_reach(self) -> Optional[float]:
        reach = getattr(self.base, "audible_reach", None)
        return reach() if reach is not None else None

    # -- batch protocol -----------------------------------------------------

    def batch_kernel(self):
        """A bound-row kernel for the wrapped model, or None.

        None when numpy is unavailable/disabled or when no kernel knows
        the model's geometry — callers must fall back to scalar code
        (and count the fallback; see Channel's radio.vectorized_fallbacks).
        """
        np = _numpy() if available() else None
        if np is None:
            return None
        return _make_kernel(self.base, np)


# -- kernels ----------------------------------------------------------------


def _make_kernel(model, np):
    if isinstance(model, VectorizedPropagation):
        model = model.base
    if isinstance(model, DistancePropagation):
        return _DistanceKernel(model, np)
    if isinstance(model, TablePropagation):
        return _TableKernel(model, np)
    if isinstance(model, GilbertElliotLink):
        base = _make_kernel(model.base, np)
        if base is None:
            return None
        scale = max(1.0, model.bad_scale)
        return base if scale == 1.0 else _ScaledKernel(base, scale)
    return None


class _KernelBase:
    """Shared plumbing: every kernel can build a BatchLinkState."""

    #: True when bound(src, dst) == bound(dst, src) for every pair, so
    #: one row serves both directions of a boundary cut.
    symmetric = False

    def build_state(
        self, members: List[int], propagation, carrier_threshold: float
    ) -> "BatchLinkState":
        return BatchLinkState(propagation, self, members, carrier_threshold)


class _DistanceKernel(_KernelBase):
    """Inflated geometric bound rows for :class:`DistancePropagation`.

    Mirrors the scalar ``link_prr_bound`` (cosine ramp evaluated at
    ``effective_distance * (1 - asymmetry)``) with ``_BOUND_MARGIN``
    slack added to every in-range lane and to the range cut itself.
    Symmetric: effective distance is, and the asymmetry shrink factor
    in the *bound* is a constant.
    """

    symmetric = True

    def __init__(self, model: DistancePropagation, np) -> None:
        self.model = model
        self.np = np

    def prepare(self, members: List[int]) -> "_PreparedDistance":
        return _PreparedDistance(self.model, members, self.np)


class _PreparedDistance:
    def __init__(self, model: DistancePropagation, members: List[int], np) -> None:
        self.np = np
        self.model = model
        topo = model.topology
        positions = [topo.position(m) for m in members]
        self._x = np.array([p.x for p in positions], dtype=np.float64)
        self._y = np.array([p.y for p in positions], dtype=np.float64)
        floors = [p.floor for p in positions]
        self._floors = (
            np.array(floors, dtype=np.float64) if any(floors) else None
        )
        self._penalty = topo.floor_penalty

    def bound_row(self, src: int):
        np = self.np
        model = self.model
        pos = model.topology.position(src)
        dx = self._x - pos.x
        dy = self._y - pos.y
        distance = np.sqrt(dx * dx + dy * dy)
        if self._floors is not None or pos.floor:
            floors = (
                self._floors
                if self._floors is not None
                else np.zeros(len(distance))
            )
            distance = distance + self._penalty * np.abs(floors - pos.floor)
        effective = distance * (1.0 - model.asymmetry)
        full, limit = model.full_range, model.max_range
        frac = np.clip((effective - full) / (limit - full), 0.0, 1.0)
        row = 0.5 * (1.0 + np.cos(np.pi * frac)) + _BOUND_MARGIN
        row[effective >= limit * (1.0 + _BOUND_MARGIN)] = 0.0
        return row


class _TableKernel(_KernelBase):
    """Exact bound rows for :class:`TablePropagation`.

    Table bounds are dict floats copied verbatim — no float math, so no
    margin is needed and the batch cuts equal the scalar cuts exactly.
    Not symmetric: A→B may be pinned without B→A.
    """

    symmetric = False

    def __init__(self, model: TablePropagation, np) -> None:
        self.model = model
        self.np = np

    def prepare(self, members: List[int]) -> "_PreparedTable":
        return _PreparedTable(self.model, members, self.np)


class _PreparedTable:
    def __init__(self, model: TablePropagation, members: List[int], np) -> None:
        self.np = np
        self._size = len(members)
        index = {member: i for i, member in enumerate(members)}
        rows: Dict[int, List[Tuple[int, float]]] = {}
        for (src, dst), prr in model._links.items():
            lane = index.get(dst)
            if lane is not None and prr > 0.0:
                rows.setdefault(src, []).append((lane, prr))
        self._rows = rows

    def bound_row(self, src: int):
        row = self.np.zeros(self._size, dtype=self.np.float64)
        for lane, prr in self._rows.get(src, ()):
            row[lane] = prr
        return row


class _ScaledKernel(_KernelBase):
    """Gilbert–Elliot overlay: the scalar bound is the base bound times
    ``max(1, bad_scale)``; scaling a row by a constant >= 1 preserves
    the superset property lane by lane."""

    def __init__(self, base, scale: float) -> None:
        self.base = base
        self.scale = scale
        self.symmetric = base.symmetric

    def prepare(self, members: List[int]) -> "_ScaledPrepared":
        return _ScaledPrepared(self.base.prepare(members), self.scale)


class _ScaledPrepared:
    def __init__(self, prepared, scale: float) -> None:
        self._prepared = prepared
        self._scale = scale

    def bound_row(self, src: int):
        return self._prepared.bound_row(src) * self._scale


# -- struct-of-arrays link state --------------------------------------------


class BatchLinkState:
    """Dense link state for one (membership, prr_epoch) generation.

    Owned by the :class:`~repro.radio.neighborhood.NeighborhoodIndex`
    and rebuilt whenever it resets, so every array here is internally
    consistent with one topology snapshot.  Three tiers, all lazy per
    sender:

    * **bound rows** — one inflated-bound vector over the members, the
      raw material for both cuts;
    * **audibility / carrier candidate cuts** — single vector compares
      against 0 / the carrier threshold, in member (attach) order so
      delivery walks receivers exactly like the scalar engines;
    * **delivery rows** — the *exact* windowed PRR of every audible
      lane (scalar-filled through ``link_prr_window``, bit-identical by
      construction) plus the row's joint expiry, the min over all lane
      windows.  A Gilbert–Elliot lane at PRR 0 can flip positive, so
      zero lanes participate in the min like any other.

    ``carrier_row`` derives exact carrier-hearer sets from the same
    lanes: carrier sense against an active sender becomes one set
    membership test instead of a candidate-cut plus memo probe chain.
    """

    def __init__(
        self, propagation, kernel, members: List[int], carrier_threshold: float
    ) -> None:
        np = _numpy()
        self.np = np
        self.propagation = propagation
        self.members = list(members)
        self.ids = np.array(self.members, dtype=np.int64)
        self.carrier_threshold = carrier_threshold
        self.kernel = kernel.prepare(self.members)
        self._rows: Dict[int, Any] = {}
        self._audible: Dict[int, List[int]] = {}
        self._carrier: Dict[int, set] = {}
        # src -> (pairs, valid_until, lanes); lanes are mutable
        # [prr, expiry, dst] triples refreshed in place on expiry.
        self._delivery: Dict[int, Tuple[List[Tuple[int, float]], float, list]] = {}
        # src -> (hearers, valid_until), derived from the delivery lanes.
        self._carrier_exact: Dict[int, Tuple[set, float]] = {}

    def bound_row(self, src: int):
        """Inflated bound vector for ``src`` over the members (self lane
        zeroed, like the scalar ``link_prr_bound(src, src) == 0``)."""
        row = self._rows.get(src)
        if row is None:
            row = self.kernel.bound_row(src)
            if row.shape[0]:
                row[self.ids == src] = 0.0
            self._rows[src] = row
        return row

    def audible_ids(self, src: int) -> List[int]:
        """Members that may hear ``src``, in attach order (superset)."""
        audible = self._audible.get(src)
        if audible is None:
            row = self.bound_row(src)
            audible = self.ids[row > 0.0].tolist()
            self._audible[src] = audible
        return audible

    def carrier_ids(self, src: int) -> set:
        """Members where ``src``'s carrier *may* reach the threshold."""
        candidates = self._carrier.get(src)
        if candidates is None:
            row = self.bound_row(src)
            candidates = set(self.ids[row >= self.carrier_threshold].tolist())
            self._carrier[src] = candidates
        return candidates

    def delivery_row(
        self, src: int, now: float
    ) -> Tuple[List[Tuple[int, float]], float]:
        """Exact ``(dst, prr)`` receiver pairs for a fragment from
        ``src`` at ``now``, plus the absolute time the row stays valid.

        Pairs carry only lanes with positive PRR, in member order —
        exactly the receivers (and order) the scalar engines admit.
        """
        cached = self._delivery.get(src)
        if cached is not None and now < cached[1]:
            return cached[0], cached[1]
        window = self.propagation.link_prr_window
        if cached is None:
            lanes = []
            for dst in self.audible_ids(src):
                prr, expiry = window(src, dst, now)
                lanes.append([prr, expiry, dst])
        else:
            lanes = cached[2]
            for lane in lanes:
                if lane[1] <= now:
                    lane[0], lane[1] = window(src, lane[2], now)
        pairs = [(lane[2], lane[0]) for lane in lanes if lane[0] > 0.0]
        valid_until = min((lane[1] for lane in lanes), default=math.inf)
        self._delivery[src] = (pairs, valid_until, lanes)
        return pairs, valid_until

    def carrier_row(self, src: int, now: float) -> Tuple[set, float]:
        """Nodes where ``src``'s carrier is *exactly* audible enough to
        assert busy, with the window the set stays valid."""
        cached = self._carrier_exact.get(src)
        if cached is not None and now < cached[1]:
            return cached
        pairs, valid_until = self.delivery_row(src, now)
        threshold = self.carrier_threshold
        hearers = {dst for dst, prr in pairs if prr >= threshold}
        cached = (hearers, valid_until)
        self._carrier_exact[src] = cached
        return cached


# -- batched hashed loss draws ----------------------------------------------


def _fold_lane(acc: int, lane: int) -> int:
    """One lane of CPython's tuple hash, on Python ints."""
    acc = (acc + lane * _XXPRIME_2) & _MASK64
    acc = ((acc << 31) | (acc >> 33)) & _MASK64
    return (acc * _XXPRIME_1) & _MASK64


def batch_hash_units(
    seed: int, src: int, dsts: List[int], start: float
) -> Optional[List[float]]:
    """``channel._hash_unit((seed, src, dst, start))`` for every dst.

    Replays CPython's 64-bit tuple hash with the seed/src/start lanes
    folded once as scalars (their ``hash()`` is taken from the
    interpreter, so floats and huge seeds stay exact) and the dst lane
    as a uint64 vector — valid because ``hash(n) == n`` for ints in
    ``[0, 2**61 - 1)``, which node ids always are.  The splitmix64
    finalizer then runs as wrapped uint64 array ops.  Returns plain
    Python floats, bit-identical to the scalar draw (asserted by
    tests/test_vectorized.py), or None when numpy is unavailable or a
    dst falls outside the identity-hash range (caller falls back).
    """
    np = _numpy()
    if np is None:
        return None
    if not dsts:
        return []
    if min(dsts) < 0 or max(dsts) >= _PYHASH_MODULUS:
        return None
    acc0 = _fold_lane(_XXPRIME_5, hash(seed) & _MASK64)
    acc0 = _fold_lane(acc0, hash(src) & _MASK64)
    start_lane = hash(start) & _MASK64
    with np.errstate(over="ignore"):
        acc = np.uint64(acc0) + np.asarray(dsts, dtype=np.uint64) * np.uint64(
            _XXPRIME_2
        )
        acc = ((acc << np.uint64(31)) | (acc >> np.uint64(33))) * np.uint64(
            _XXPRIME_1
        )
        acc = acc + np.uint64(start_lane) * np.uint64(_XXPRIME_2)
        acc = ((acc << np.uint64(31)) | (acc >> np.uint64(33))) * np.uint64(
            _XXPRIME_1
        )
        acc = acc + np.uint64(4 ^ (_XXPRIME_5 ^ 3527539))
        # hash() never returns -1; tuplehash substitutes this constant.
        acc[acc == np.uint64(_MASK64)] = np.uint64(1546275796)
        # splitmix64 finalizer, as in channel._hash_unit.
        x = acc + np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x = x ^ (x >> np.uint64(31))
    return ((x >> np.uint64(11)) * (2.0 ** -53)).tolist()
