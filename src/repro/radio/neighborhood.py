"""Neighborhood index: the radio layer's fast path.

The reference :class:`~repro.radio.channel.Channel` pays O(N) per
fragment (every attached modem is probed for audibility) and O(N) per
carrier-sense query (every modem is scanned for an audible transmitter),
which makes dense-traffic runs quadratic in network size.  This module
caches what those scans recompute:

* **audibility sets** — per sender, the nodes whose link PRR *can* be
  non-zero during the current propagation epoch (``link_prr_bound > 0``);
* **carrier-sense sets** — per sender, the nodes whose PRR can reach the
  carrier-sense threshold;
* a **per-directed-link PRR memo** holding the exact PRR returned by the
  propagation model plus the absolute time it stays valid.

Correctness contract (see DESIGN.md "Radio fast path"): the sets are
*supersets* built from ``link_prr_bound`` and every use re-checks the
exact memoized PRR, so channel verdicts are bit-identical to the
reference scan.  Invalidation is two-tier:

* the model's ``prr_epoch()`` token changes whenever a link *bound* may
  have changed (topology moves, table edits) — everything is dropped;
* per-link windows expire on their own (Gilbert–Elliot state flips),
  which a global counter could not express because flips are discovered
  lazily at query time.

Static topologies therefore compute each set exactly once per run.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple


def supports_fast_path(model) -> bool:
    """Can ``model`` back a :class:`NeighborhoodIndex`?

    True when the model implements the fast-path protocol
    (:class:`~repro.radio.propagation.FastPathPropagation`) end to end —
    a Gilbert–Elliot overlay on an unsupported base model answers
    ``prr_epoch`` with AttributeError, which is how delegation failures
    surface here.
    """
    if not all(
        hasattr(model, name)
        for name in ("prr_epoch", "link_prr_bound", "link_prr_window")
    ):
        return False
    try:
        model.prr_epoch()
    except AttributeError:
        return False
    return True


class NeighborhoodIndex:
    """Cached audibility / carrier-sense sets plus a windowed PRR memo.

    Membership (which nodes exist) is pushed in by the channel via
    :meth:`add_node` / :meth:`remove_node`; link data is pulled lazily
    from the propagation model and dropped wholesale whenever its
    ``prr_epoch()`` token changes.
    """

    def __init__(self, propagation, carrier_threshold: float) -> None:
        if not supports_fast_path(propagation):
            raise ValueError(
                f"{type(propagation).__name__} does not implement the "
                "radio fast-path protocol (prr_epoch/link_prr_bound/"
                "link_prr_window); use the reference channel scan instead"
            )
        self.propagation = propagation
        self.carrier_threshold = carrier_threshold
        # Attach order, preserved so reception scheduling walks receivers
        # in exactly the order the reference modem scan would.
        self._members: List[int] = []
        self._epoch: object = propagation.prr_epoch()
        # Batch engine (repro.radio.vectorized): models opting in expose
        # batch_kernel(); it returns None when numpy is unavailable, and
        # the scalar code below then serves every query unchanged.
        kernel_fn = getattr(propagation, "batch_kernel", None)
        self._kernel = kernel_fn() if callable(kernel_fn) else None
        self._batch = None
        #: bumped whenever cached link state may have changed (epoch
        #: move or membership edit); consumers caching derived rows
        #: (the channel's delivery path) key on it.
        self.generation = 0
        self._audible: Dict[int, List[int]] = {}
        #: lazily built carrier-sense candidate sets, exposed (like
        #: :attr:`prr_memo`) for the channel's carrier-scan loop: after
        #: :meth:`sync`, present entries may be read directly; misses
        #: must go through :meth:`carrier_candidates`.
        self.carrier_map: Dict[int, Set[int]] = {}
        #: the windowed PRR memo, exposed for the channel's hot loops:
        #: after calling :meth:`sync`, a ``(src, dst)`` entry whose
        #: expiry exceeds ``now`` may be read directly (saving a method
        #: call per link); misses must go through :meth:`link_prr`.
        self.prr_memo: Dict[Tuple[int, int], Tuple[float, float]] = {}
        # Statistics (channelbench reports these).
        self.rebuilds = 0
        self.set_builds = 0
        self.memo_hits = 0
        self.memo_misses = 0

    # -- membership ---------------------------------------------------------

    def add_node(self, node_id: int) -> None:
        self._members.append(node_id)
        # A new node must appear in every other sender's sets; attaching
        # before any set was built (network construction) costs nothing.
        self._reset()

    def remove_node(self, node_id: int) -> None:
        self._members.remove(node_id)
        self._reset()

    def _reset(self) -> None:
        # Membership changed (or the epoch moved): derived row caches are
        # stale even when the scalar caches below were never populated.
        self.generation += 1
        had_state = self._batch is not None
        self._batch = None
        if not (had_state or self._audible or self.carrier_map or self.prr_memo):
            return
        self._audible.clear()
        self.carrier_map.clear()
        self.prr_memo.clear()
        self.rebuilds += 1

    # -- epoch sync ---------------------------------------------------------

    def sync(self) -> None:
        """Drop every cache if the propagation epoch moved on.

        The channel calls this once per operation (transmission,
        carrier-sense query) and may then read :attr:`prr_memo`
        directly; the query methods below also call it, so external
        callers holding no memo references never need to.
        """
        epoch = self.propagation.prr_epoch()
        if epoch != self._epoch:
            self._epoch = epoch
            self._reset()

    # -- batch engine -------------------------------------------------------

    @property
    def has_batch(self) -> bool:
        """Did the propagation model yield a working batch kernel?"""
        return self._kernel is not None

    def batch_state(self):
        """The struct-of-arrays link state for the current generation.

        None on the scalar path.  Callers must :meth:`sync` first (the
        channel already does, once per operation); the state is dropped
        by :meth:`_reset` and lazily rebuilt here, so the arrays always
        describe the live membership and epoch.
        """
        batch = self._batch
        if batch is None and self._kernel is not None:
            batch = self._kernel.build_state(
                self._members, self.propagation, self.carrier_threshold
            )
            self._batch = batch
        return batch

    # -- queries ------------------------------------------------------------

    def audible_from(self, src: int) -> List[int]:
        """Nodes that may hear ``src`` this epoch, in attach order."""
        self.sync()
        audible = self._audible.get(src)
        if audible is None:
            batch = self.batch_state()
            if batch is not None:
                # One vector compare; a superset of the scalar cut (the
                # batch bounds are inflated) in the same member order,
                # which the exact per-lane re-check makes equivalent.
                audible = batch.audible_ids(src)
            else:
                bound = self.propagation.link_prr_bound
                audible = [
                    dst for dst in self._members
                    if dst != src and bound(src, dst) > 0.0
                ]
            self._audible[src] = audible
            self.set_builds += 1
        return audible

    def carrier_candidates(self, src: int) -> Set[int]:
        """Nodes where ``src``'s carrier may exceed the sense threshold."""
        self.sync()
        candidates = self.carrier_map.get(src)
        if candidates is None:
            batch = self.batch_state()
            if batch is not None:
                candidates = batch.carrier_ids(src)
            else:
                bound = self.propagation.link_prr_bound
                candidates = {
                    dst for dst in self._members
                    if dst != src and bound(src, dst) >= self.carrier_threshold
                }
            self.carrier_map[src] = candidates
            self.set_builds += 1
        return candidates

    def link_prr(self, src: int, dst: int, now: float) -> float:
        """Exact ``propagation.link_prr(src, dst, now)``, memoized while
        the link's validity window lasts (simulation time is monotone,
        so a cached value only needs its expiry checked)."""
        self.sync()
        key = (src, dst)
        cached = self.prr_memo.get(key)
        if cached is not None and now < cached[1]:
            self.memo_hits += 1
            return cached[0]
        self.memo_misses += 1
        prr, expires = self.propagation.link_prr_window(src, dst, now)
        self.prr_memo[key] = (prr, expires)
        return prr


class BoundaryIndex:
    """Cross-cut audibility for a spatial partition of the deployment.

    Where :class:`NeighborhoodIndex` caches *who hears whom* inside one
    channel, this answers the sharded kernel's question: given a cut of
    the node set into *owned* and *foreign* halves, which owned nodes
    can be heard across the cut (their transmissions must be exported),
    and which foreign transmitters have owned listeners (their ghosts
    must be admitted).  Everything is derived from ``link_prr_bound``,
    so the sets are supersets and every actual delivery still re-checks
    the exact PRR — identical to the fast-path correctness contract.

    Invalidation mirrors :class:`NeighborhoodIndex`: all sets drop when
    the model's ``prr_epoch()`` token moves (mobility crossing the cut
    is just a topology version bump).  When the model offers an
    ``audible_reach()`` spatial bound and positions are available, the
    rebuild buckets foreign nodes into reach-sized grid cells and probes
    only geometrically plausible pairs — O(boundary), not
    O(owned x foreign), which is what keeps 10k-node sharded rebuilds
    affordable under mobility.
    """

    def __init__(
        self,
        propagation,
        owned: Iterable[int],
        foreign: Iterable[int],
        topology=None,
    ) -> None:
        if not supports_fast_path(propagation):
            raise ValueError(
                f"{type(propagation).__name__} does not implement the "
                "radio fast-path protocol required for boundary queries"
            )
        self.propagation = propagation
        self.owned = sorted(owned)
        self.foreign = sorted(foreign)
        overlap = set(self.owned) & set(self.foreign)
        if overlap:
            raise ValueError(f"cut is not a partition: {sorted(overlap)}")
        self.topology = (
            topology if topology is not None
            else getattr(propagation, "topology", None)
        )
        self._epoch: object = None
        self._built = False
        # owned src -> foreign listeners, and foreign src -> owned
        # listeners; absent key = nothing audible across the cut.
        self._out: Dict[int, List[int]] = {}
        self._in: Dict[int, List[int]] = {}
        # Batch engine: with a *symmetric* kernel (distance-family
        # bounds) one row per owned node answers both cut directions.
        # Asymmetric kernels (tables) and oversized cross products stay
        # on the scalar grid walk, which is O(boundary).
        kernel_fn = getattr(propagation, "batch_kernel", None)
        kernel = kernel_fn() if callable(kernel_fn) else None
        self._kernel = kernel if kernel is not None and kernel.symmetric else None
        # Statistics (scalebench reports these).
        self.rebuilds = 0
        self.pair_checks = 0

    #: dense-rebuild ceiling: beyond this many owned x foreign lanes the
    #: spatially bucketed scalar walk beats materializing full rows
    #: (10k-node mobile cuts rebuild per epoch; rows there would be
    #: quadratic work and tens of MB of temporaries).
    BATCH_LANE_LIMIT = 4_000_000

    # -- epoch sync ---------------------------------------------------------

    def sync(self) -> None:
        """Rebuild the cross-cut sets if the propagation epoch moved."""
        epoch = self.propagation.prr_epoch()
        if self._built and epoch == self._epoch:
            return
        self._epoch = epoch
        self._rebuild()
        self._built = True

    def _candidate_pairs(self) -> Iterator[Tuple[int, int]]:
        """Geometrically plausible (owned, foreign) pairs.

        Falls back to the full cross product when no spatial bound is
        available (table models, extreme asymmetry).
        """
        reach_fn = getattr(self.propagation, "audible_reach", None)
        reach = reach_fn() if reach_fn is not None else None
        topo = self.topology
        if reach is None or topo is None:
            for o in self.owned:
                for f in self.foreign:
                    yield o, f
            return
        # Cell size = reach, so any audible pair lands in the same or an
        # adjacent cell (planar distance never exceeds effective
        # distance).
        buckets: Dict[Tuple[int, int], List[int]] = {}
        for f in self.foreign:
            pos = topo.position(f)
            key = (int(pos.x // reach), int(pos.y // reach))
            buckets.setdefault(key, []).append(f)
        for o in self.owned:
            pos = topo.position(o)
            cx, cy = int(pos.x // reach), int(pos.y // reach)
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for f in buckets.get((cx + dx, cy + dy), ()):
                        yield o, f

    def _batch_rebuild(self) -> bool:
        """Row-per-owned-node rebuild on the batch kernel.

        The rows use inflated bounds, so the cross-cut sets come out as
        supersets of the scalar ones — safe for the same reason the
        in-shard sets are: an exported transmission with no real
        listener admits zero receptions, and ghost carrier verdicts
        re-check exact PRRs.  Symmetry lets one row serve both the
        out-cut (owned may be heard) and the in-cut (owned may hear).
        """
        kernel = self._kernel
        if kernel is None or not self.owned or not self.foreign:
            return False
        if len(self.owned) * len(self.foreign) > self.BATCH_LANE_LIMIT:
            return False
        prepared = kernel.prepare(self.foreign)
        foreign = self.foreign
        lanes = len(foreign)
        for o in self.owned:
            row = prepared.bound_row(o)
            self.pair_checks += lanes
            hits = [foreign[i] for i in (row > 0.0).nonzero()[0]]
            if not hits:
                continue
            self._out[o] = hits  # foreign is sorted, so hits are too
            for f in hits:
                self._in.setdefault(f, []).append(o)
        # owned is sorted, so each _in list already is; keep the sort
        # for parity with the scalar path (cheap on sorted input).
        for listeners in self._in.values():
            listeners.sort()
        return True

    def _rebuild(self) -> None:
        self._out.clear()
        self._in.clear()
        if self._batch_rebuild():
            self.rebuilds += 1
            return
        bound = self.propagation.link_prr_bound
        for o, f in self._candidate_pairs():
            self.pair_checks += 1
            if bound(o, f) > 0.0:
                self._out.setdefault(o, []).append(f)
            if bound(f, o) > 0.0:
                self._in.setdefault(f, []).append(o)
        for listeners in self._out.values():
            listeners.sort()
        for listeners in self._in.values():
            listeners.sort()
        self.rebuilds += 1

    # -- queries ------------------------------------------------------------

    def boundary_senders(self) -> Set[int]:
        """Owned nodes some foreign node may hear: their transmissions
        must be exported across the cut."""
        self.sync()
        return set(self._out)

    def boundary_receivers(self) -> Set[int]:
        """Owned nodes that may hear some foreign transmitter."""
        self.sync()
        receivers: Set[int] = set()
        for listeners in self._in.values():
            receivers.update(listeners)
        return receivers

    def listeners_across(self, src: int) -> List[int]:
        """Nodes on the *other* side of the cut that may hear ``src``
        this epoch (sorted).  Empty for interior nodes."""
        self.sync()
        hit = self._out.get(src)
        if hit is not None:
            return hit
        return self._in.get(src, [])
