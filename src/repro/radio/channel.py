"""The shared wireless medium.

A fragment transmitted by one modem is audible at every node whose link
PRR from the sender is non-zero.  Reception fails when:

* the receiver was itself transmitting (half-duplex),
* another audible transmission overlapped in time (collision — this is
  how hidden terminals corrupt traffic: carrier sense happens at the
  *sender*, collisions happen at the *receiver*), or
* the per-link loss draw exceeded the link PRR.

The channel also answers carrier-sense queries for the MAC layer.

Two delivery engines share the verdict logic:

* the **reference scan** probes every attached modem per fragment and
  per carrier-sense query — O(N) each, the behaviour (and cost) of the
  original channel, kept as the equivalence baseline;
* the **neighborhood fast path** (default whenever the propagation
  model implements the protocol in
  :class:`~repro.radio.propagation.FastPathPropagation`) walks only the
  sender's cached audibility set, answers carrier sense from an
  active-transmitter registry, and finalizes all of a fragment's
  receptions in one simulator event.  Verdicts are bit-identical by
  construction (supersets re-checked against exact memoized PRRs);
  tests/test_channel_equivalence.py proves it on seeded scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.radio.neighborhood import NeighborhoodIndex, supports_fast_path
from repro.radio.vectorized import batch_hash_units
from repro.sim import Simulator, TraceBus, trace_id_of
from repro.sim.metrics import MetricsRegistry, current_registry
from repro.sim.rng import SeedSequence, derive_seed

_MASK64 = (1 << 64) - 1


def _hash_unit(key: tuple) -> float:
    """Deterministic uniform in [0, 1) keyed by ``key``.

    Python's numeric hashing is stable across processes (hash
    randomization covers only str/bytes), and the splitmix64 finalizer
    decorrelates the structured tuple hashes into usable uniforms.
    """
    x = (hash(key) + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return (x >> 11) * (2.0 ** -53)


@dataclass
class Transmission:
    """One in-flight fragment."""

    src: int
    start: float
    end: float
    payload: Any
    nbytes: int
    link_dst: Optional[int]  # None for link-broadcast
    seqno: int


class _Reception:
    """One reception attempt in flight at a node.

    ``reason`` is why it failed ("collision", "half-duplex",
    "channel-loss", "detached"); meaningful only when corrupted or on
    the loss paths in _finalize_reception.  A plain __slots__ class —
    one of these is allocated per audible lane per fragment, the
    hottest allocation in the radio layer.
    """

    __slots__ = ("transmission", "prr", "corrupted", "reason")

    def __init__(self, transmission: Transmission, prr: float) -> None:
        self.transmission = transmission
        self.prr = prr
        self.corrupted = False
        self.reason = "collision"


class Channel:
    """Connects modems through a propagation model.

    Modems register with :meth:`attach`; they call
    :meth:`start_transmission` when the MAC begins sending, and receive
    ``deliver(payload, src, nbytes, link_dst)`` callbacks when a
    fragment arrives intact.
    """

    CARRIER_SENSE_THRESHOLD = 0.05  # audible-enough PRR to count as busy

    #: capture effect: a reception this strong survives overlap with
    #: interferers weaker than CAPTURE_WEAK (the stronger signal wins,
    #: as on real narrowband FM radios).  Comparable signals still
    #: destroy each other.
    CAPTURE_STRONG = 0.75
    CAPTURE_WEAK = 0.25

    def __init__(
        self,
        sim: Simulator,
        propagation,
        seeds: Optional[SeedSequence] = None,
        trace: Optional[TraceBus] = None,
        capture_effect: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        indexed: Optional[bool] = None,
        loss_mode: str = "stream",
    ) -> None:
        if loss_mode not in ("stream", "hashed"):
            raise ValueError(f"unknown loss_mode {loss_mode!r}")
        self.sim = sim
        self.propagation = propagation
        self.capture_effect = capture_effect
        self.loss_mode = loss_mode
        self.trace = trace or TraceBus()
        registry = metrics if metrics is not None else current_registry()
        self._m_sent = registry.counter("channel.fragments_sent")
        self._m_delivered = registry.counter("channel.fragments_delivered")
        self._m_drop_collision = registry.counter(
            "channel.drops", reason="collision"
        )
        self._m_drop_half_duplex = registry.counter(
            "channel.drops", reason="half-duplex"
        )
        self._m_drop_loss = registry.counter(
            "channel.drops", reason="channel-loss"
        )
        # Batch-engine observability (ISSUE: campaigns should record how
        # much of the workload actually hit the batch path).
        self._m_batch_size = registry.histogram("radio.batch_size")
        self._m_vec_fallbacks = registry.counter("radio.vectorized_fallbacks")
        seeds = seeds or SeedSequence(1)
        self._loss_rng = seeds.stream("channel-loss")
        # Bound method: one loss draw per clean reception makes the
        # attribute chain worth hoisting.
        self._stream_draw = self._loss_rng.random
        self._loss_seed = derive_seed(seeds.root_seed, "channel-loss-hash")
        self._modems: Dict[int, Any] = {}
        # Per-receiver in-progress receptions keyed by transmission
        # seqno, for collision marking and O(1) completion.
        self._receiving: Dict[int, Dict[int, _Reception]] = {}
        # Active-transmitter registry (fast path): src -> Transmission.
        # Entries leave via transmission_ended or a lazy carrier-sense
        # purge; the modem's transmitting flag stays authoritative.
        self._active: Dict[int, Transmission] = {}
        # Batch engine only: src -> (entries, valid_until, generation)
        # where entries are (node_id, modem, in_progress, prr) rows — the
        # delivery row enriched with channel-side receiver state.  Valid
        # while the PRR window holds and the index generation (bumped on
        # every membership change and epoch move) is unchanged.
        self._enriched: Dict[int, Tuple[list, float, int]] = {}
        # Ghost transmissions admitted from other shards: src ->
        # Transmission still on the air.  A remote sender has no local
        # modem, so its airtime is tracked here for carrier sense and
        # removed by a scheduled end event (plus a lazy end-time purge).
        self._remote_active: Dict[int, Transmission] = {}
        self._ghost_seqno = 0
        # Called with each local Transmission as it starts; the shard
        # worker exports boundary transmissions through this.
        self.on_transmission: Optional[Callable[[Transmission], None]] = None
        if indexed is None:
            indexed = supports_fast_path(propagation)
        self.index: Optional[NeighborhoodIndex] = (
            NeighborhoodIndex(propagation, self.CARRIER_SENSE_THRESHOLD)
            if indexed
            else None
        )
        # The model opted into the batch engine (a VectorizedPropagation
        # adapter, or anything else exposing batch_kernel); whether it
        # actually engaged depends on numpy and the index being live.
        self._vec_intended = callable(getattr(propagation, "batch_kernel", None))
        vec_active = self.index is not None and self.index.has_batch
        # Hashed loss draws batch per finalization event when the batch
        # engine is live; stream mode must keep consuming the shared RNG
        # in scalar finalization order, so it never batches.
        self._hash_batcher = (
            batch_hash_units if (vec_active and loss_mode == "hashed") else None
        )
        self._seqno = 0
        # Statistics.
        self.fragments_sent = 0
        self.fragments_delivered = 0
        self.fragments_collided = 0
        self.fragments_lost = 0
        # Carrier-sense cost accounting: links examined per query.  The
        # reference scan grows with N, the indexed scan with the number
        # of active transmitters (the channelbench smoke asserts this).
        self.carrier_queries = 0
        self.carrier_checks = 0

    @property
    def indexed(self) -> bool:
        return self.index is not None

    def attach(self, modem: Any) -> None:
        if modem.node_id in self._modems:
            raise ValueError(f"modem {modem.node_id} already attached")
        self._modems[modem.node_id] = modem
        # Pre-create the in-progress map so the admission hot path can
        # index it unconditionally (detach pops it, voiding receptions).
        self._receiving.setdefault(modem.node_id, {})
        if self.index is not None:
            self.index.add_node(modem.node_id)

    def detach(self, node_id: int) -> Any:
        """Remove a node from the medium (death, decommissioning).

        Pending receptions at the node are voided, its in-flight
        transmission (if any) leaves the active registry, and it drops
        out of every audibility and carrier-sense set — a dead node is
        never scanned again.  Returns the detached modem; re-attach it
        to model recovery.
        """
        modem = self._modems.pop(node_id, None)
        if modem is None:
            raise ValueError(f"modem {node_id} is not attached")
        self._active.pop(node_id, None)
        pending = self._receiving.pop(node_id, None)
        if pending:
            for reception in pending.values():
                reception.corrupted = True
                reception.reason = "detached"
        if self.index is not None:
            self.index.remove_node(node_id)
        return modem

    def transmission_ended(self, src: int) -> None:
        """Modem callback: ``src``'s fragment finished its airtime."""
        self._active.pop(src, None)

    def node_ids(self) -> List[int]:
        return sorted(self._modems)

    # -- carrier sense ------------------------------------------------------

    def carrier_busy(self, node_id: int) -> bool:
        """Is any transmission audible at ``node_id`` right now?"""
        self.carrier_queries += 1
        now = self.sim.now
        index = self.index
        if index is None:
            for modem in self._modems.values():
                if modem.node_id == node_id:
                    continue
                self.carrier_checks += 1
                if not modem.transmitting:
                    continue
                prr = self.propagation.link_prr(modem.node_id, node_id, now)
                if prr >= self.CARRIER_SENSE_THRESHOLD:
                    return True
            if self._remote_active:
                for src, tx in list(self._remote_active.items()):
                    if tx.end <= now:
                        del self._remote_active[src]
                        continue
                    self.carrier_checks += 1
                    prr = self.propagation.link_prr(src, node_id, now)
                    if prr >= self.CARRIER_SENSE_THRESHOLD:
                        return True
            return False
        index.sync()
        state = index._batch  # populated lazily; None on the scalar path
        if state is None and index.has_batch:
            state = index.batch_state()
        if state is not None:
            # Batch engine: each active sender owns an exact carrier
            # hearer set (derived from its delivery row, so the PRRs are
            # the scalar model's); the verdict per sender is one set
            # membership test, same predicate and scan order as below.
            # The window cache is read inline (carrier sense cannot move
            # the epoch); misses fall back to the building call.
            exact = state._carrier_exact
            modems = self._modems
            busy = False
            checks = 0
            stale: Optional[List[int]] = None
            for src in self._active:
                modem = modems.get(src)
                if modem is None or not modem.transmitting:
                    if stale is None:
                        stale = []
                    stale.append(src)
                    continue
                if src == node_id:
                    continue
                checks += 1
                cached = exact.get(src)
                if cached is not None and now < cached[1]:
                    hearers = cached[0]
                else:
                    hearers = state.carrier_row(src, now)[0]
                if node_id in hearers:
                    busy = True
                    break
            if stale:
                for src in stale:
                    self._active.pop(src, None)
            if not busy and self._remote_active:
                for src, tx in list(self._remote_active.items()):
                    if tx.end <= now:
                        del self._remote_active[src]
                        continue
                    checks += 1
                    cached = exact.get(src)
                    if cached is not None and now < cached[1]:
                        hearers = cached[0]
                    else:
                        hearers = state.carrier_row(src, now)[0]
                    if node_id in hearers:
                        busy = True
                        break
            self.carrier_checks += checks
            return busy
        prr_memo = index.prr_memo
        carrier_map = index.carrier_map
        busy = False
        stale: Optional[List[int]] = None
        for src in self._active:
            modem = self._modems.get(src)
            if modem is None or not modem.transmitting:
                if stale is None:
                    stale = []
                stale.append(src)
                continue
            if src == node_id:
                continue
            self.carrier_checks += 1
            candidates = carrier_map.get(src)
            if candidates is None:
                candidates = index.carrier_candidates(src)
            if node_id not in candidates:
                continue
            # Inline memo hit (nothing in this loop can move the epoch);
            # misses fall back to the full windowed lookup.
            cached = prr_memo.get((src, node_id))
            if cached is not None and now < cached[1]:
                index.memo_hits += 1
                prr = cached[0]
            else:
                prr = index.link_prr(src, node_id, now)
            if prr >= self.CARRIER_SENSE_THRESHOLD:
                busy = True
                break
        if stale:
            for src in stale:
                self._active.pop(src, None)
        if not busy and self._remote_active:
            for src, tx in list(self._remote_active.items()):
                if tx.end <= now:
                    del self._remote_active[src]
                    continue
                self.carrier_checks += 1
                cached = prr_memo.get((src, node_id))
                if cached is not None and now < cached[1]:
                    index.memo_hits += 1
                    prr = cached[0]
                else:
                    prr = index.link_prr(src, node_id, now)
                if prr >= self.CARRIER_SENSE_THRESHOLD:
                    busy = True
                    break
        return busy

    # -- transmission -------------------------------------------------------

    def start_transmission(
        self,
        src: int,
        payload: Any,
        nbytes: int,
        duration: float,
        link_dst: Optional[int] = None,
    ) -> Transmission:
        """Begin a fragment transmission from ``src``.

        The caller (modem) is responsible for keeping its
        ``transmitting`` flag true for the duration.
        """
        now = self.sim.now
        self._seqno += 1
        tx = Transmission(
            src=src,
            start=now,
            end=now + duration,
            payload=payload,
            nbytes=nbytes,
            link_dst=link_dst,
            seqno=self._seqno,
        )
        self.fragments_sent += 1
        self._m_sent.inc()
        if self.trace._active:
            self.trace.emit(
                now, "channel.tx", node=src, nbytes=nbytes, dst=link_dst
            )
        if self.on_transmission is not None:
            self.on_transmission(tx)
        if self.index is not None:
            self.index.sync()
            self._active[src] = tx
        self._deliver_to(tx, duration)
        return tx

    def admit_remote_transmission(
        self,
        src: int,
        payload: Any,
        nbytes: int,
        duration: float,
        link_dst: Optional[int] = None,
    ) -> Transmission:
        """Admit a fragment whose radio lives on another shard.

        Must be called at the exact simulation time the remote radio
        keyed up (the shard runtime injects it at ``tx.start`` with a
        pre-local priority).  The ghost then participates fully in local
        physics — collisions, capture, carrier sense, per-link loss at
        owned receivers — but is *not* counted as sent here and emits no
        ``channel.tx`` trace: the owning shard already did both, and
        merged totals must not double-count.
        """
        now = self.sim.now
        # Ghost seqnos run negative so they can never collide with the
        # local per-shard seqno space inside the _receiving maps.
        self._ghost_seqno -= 1
        tx = Transmission(
            src=src,
            start=now,
            end=now + duration,
            payload=payload,
            nbytes=nbytes,
            link_dst=link_dst,
            seqno=self._ghost_seqno,
        )
        self._remote_active[src] = tx
        self.sim.schedule(
            duration, self._end_remote, src, tx, name="channel.ghost_end"
        )
        if self.index is not None:
            self.index.sync()
        self._deliver_to(tx, duration)
        return tx

    def _end_remote(self, src: int, tx: Transmission) -> None:
        """A ghost's airtime ended; stop asserting carrier for it."""
        if self._remote_active.get(src) is tx:
            del self._remote_active[src]

    def _deliver_to(self, tx: Transmission, duration: float) -> None:
        """Admit ``tx`` at every candidate receiver and schedule the
        finalization event(s).

        One helper serves all four admission paths (local and ghost
        transmissions under either engine): the paths differ only in how
        the receiver set and its exact PRRs are produced — reference
        O(N) probe, indexed memo walk, or one cached batch delivery
        row — never in the verdict logic, which lives solely in
        _admit_reception.  A ghost's src never appears in the local
        modem map, so the self-skip below is vacuous for it.
        """
        now = self.sim.now
        src = tx.src
        modems = self._modems
        index = self.index
        if index is None:
            if self._vec_intended:
                self._m_vec_fallbacks.inc()
            # Reference scan: one finalization event per reception,
            # exactly the original channel's behaviour (and cost).
            for node_id, modem in modems.items():
                if node_id == src:
                    continue
                prr = self.propagation.link_prr(src, node_id, now)
                if prr <= 0.0:
                    continue
                reception = self._admit_reception(tx, node_id, modem, prr)
                self.sim.schedule(
                    duration, self._finish_reception, node_id, reception,
                    name="channel.rx",
                )
            return
        # The caller synced the index when the transmission started.
        # Batch entries carry the receiver's modem and in-progress map so
        # finalization never re-resolves either (safe: a detach voids its
        # receptions with reason="detached", which short-circuits before
        # the modem is consulted, and popping a voided reception from the
        # pre-detach map is inert — even across a re-attach mid-flight).
        # The common admission — idle receiver, empty in-progress map —
        # is inlined; anything else goes through _admit_reception, the
        # sole owner of the collision/capture verdict logic.
        admit = self._admit_reception
        receiving = self._receiving
        seqno = tx.seqno
        batch: Optional[list] = None
        state = index.batch_state()
        if state is not None:
            # Batch engine: the delivery row already holds this window's
            # exact (receiver, PRR) pairs in attach order; the enriched
            # copy pins each receiver's modem and in-progress map for the
            # life of the window (any attach/detach bumps the generation).
            generation = index.generation
            cached = self._enriched.get(src)
            if (
                cached is not None
                and now < cached[1]
                and cached[2] == generation
            ):
                entries = cached[0]
            else:
                pairs, valid = state.delivery_row(src, now)
                entries = [
                    (node_id, modems[node_id], receiving[node_id], prr)
                    for node_id, prr in pairs
                ]
                self._enriched[src] = (entries, valid, generation)
            self._m_batch_size.observe(len(entries))
            for node_id, modem, in_progress, prr in entries:
                if in_progress or modem.transmitting or modem.sleeping:
                    reception = admit(tx, node_id, modem, prr)
                else:
                    reception = _Reception(tx, prr)
                    in_progress[seqno] = reception
                if batch is None:
                    batch = []
                batch.append((node_id, modem, in_progress, reception))
        else:
            if self._vec_intended:
                self._m_vec_fallbacks.inc()
            audible = index.audible_from(src)  # foreign srcs cache fine
            prr_memo = index.prr_memo
            for node_id in audible:
                # Inline memo hit (nothing in this loop can move the
                # epoch); misses fall back to the full windowed lookup.
                cached = prr_memo.get((src, node_id))
                if cached is not None and now < cached[1]:
                    index.memo_hits += 1
                    prr = cached[0]
                else:
                    prr = index.link_prr(src, node_id, now)
                if prr <= 0.0:
                    continue
                modem = modems[node_id]
                in_progress = receiving[node_id]
                if in_progress or modem.transmitting or modem.sleeping:
                    reception = admit(tx, node_id, modem, prr)
                else:
                    reception = _Reception(tx, prr)
                    in_progress[seqno] = reception
                if batch is None:
                    batch = []
                batch.append((node_id, modem, in_progress, reception))
        if batch is not None:
            # One simulator event finalizes every reception of this
            # fragment.  All its receptions end at the same instant with
            # consecutive sequence numbers, so no foreign event can
            # observe the difference — outcomes and trace order match
            # the reference per-reception events exactly.
            self.sim.schedule(
                duration, self._finish_transmission, batch, name="channel.rx"
            )

    def _admit_reception(
        self, tx: Transmission, node_id: int, modem: Any, prr: float
    ) -> _Reception:
        """Create the reception at ``node_id`` and mark collisions with
        whatever is already in the air there."""
        reception = _Reception(tx, prr)
        in_progress = self._receiving[node_id]
        if modem.transmitting or modem.sleeping:
            # Half-duplex, and sleeping radios hear nothing.
            reception.corrupted = True
            reception.reason = "half-duplex"
        if in_progress:
            # Overlap: the stronger signal may capture the receiver;
            # comparable signals corrupt each other.
            for other in in_progress.values():
                survives = self.capture_effect and (
                    other.prr >= self.CAPTURE_STRONG
                    and reception.prr <= self.CAPTURE_WEAK
                )
                if not survives and not other.corrupted:
                    other.corrupted = True
                    self.fragments_collided += 1
            captured_over_all = self.capture_effect and all(
                reception.prr >= self.CAPTURE_STRONG
                and other.prr <= self.CAPTURE_WEAK
                for other in in_progress.values()
            )
            if not captured_over_all and not reception.corrupted:
                reception.corrupted = True
                self.fragments_collided += 1
        in_progress[tx.seqno] = reception
        return reception

    #: below this many receivers the numpy call overhead for a batched
    #: hashed-draw exceeds the scalar hashing it replaces.
    _BATCH_DRAW_MIN = 4

    def _finish_reception(self, node_id: int, reception: _Reception) -> None:
        in_progress = self._receiving.get(node_id)
        if in_progress is not None:
            in_progress.pop(reception.transmission.seqno, None)
        self._finalize_reception(
            node_id, self._modems.get(node_id), reception, None
        )

    def _finish_transmission(self, batch: list) -> None:
        finalize = self._finalize_reception
        draws = None
        if self._hash_batcher is not None and len(batch) >= self._BATCH_DRAW_MIN:
            # Hashed draws depend only on (seed, src, dst, start), never
            # on finalization order or on whether the scalar path would
            # have drawn at all — so the whole receiver set's uniforms
            # can be precomputed in one uint64 batch (bit-identical to
            # the scalar hash; unused lanes are simply discarded).
            tx = batch[0][3].transmission
            draws = self._hash_batcher(
                self._loss_seed, tx.src, [entry[0] for entry in batch], tx.start
            )
        if draws is None:
            for node_id, modem, in_progress, reception in batch:
                in_progress.pop(reception.transmission.seqno, None)
                finalize(node_id, modem, reception, None)
        else:
            for (node_id, modem, in_progress, reception), draw in zip(
                batch, draws
            ):
                in_progress.pop(reception.transmission.seqno, None)
                finalize(node_id, modem, reception, draw)

    def _finalize_reception(
        self, node_id: int, modem: Any, reception: _Reception,
        draw: Optional[float],
    ) -> None:
        if reception.reason == "detached":
            # The receiver left the medium mid-flight; nothing to record.
            # This guard runs before the (possibly stale) modem is used.
            return
        if modem is None:
            return
        tx = reception.transmission
        trace = self.trace
        if reception.corrupted:
            if trace._active:
                trace.emit(
                    self.sim.now, "channel.collision", node=node_id, src=tx.src
                )
            if reception.reason == "half-duplex":
                self._m_drop_half_duplex.inc()
            else:
                self._m_drop_collision.inc()
            self._note_radio_drop(node_id, tx, reception.reason)
            return
        if modem.transmitting or modem.sleeping:
            # Started transmitting (or fell asleep) mid-reception: lost.
            self._m_drop_half_duplex.inc()
            self._note_radio_drop(node_id, tx, "half-duplex")
            return
        if draw is None:
            # _loss_draw, inlined: this runs once per clean reception.
            if self.loss_mode == "stream":
                draw = self._stream_draw()
            else:
                draw = _hash_unit((self._loss_seed, tx.src, node_id, tx.start))
        if draw >= reception.prr:
            self.fragments_lost += 1
            self._m_drop_loss.inc()
            if trace._active:
                trace.emit(
                    self.sim.now, "channel.loss", node=node_id, src=tx.src
                )
            self._note_radio_drop(node_id, tx, "channel-loss")
            return
        self.fragments_delivered += 1
        self._m_delivered.inc()
        if trace._active:
            trace.emit(
                self.sim.now, "channel.rx", node=node_id, src=tx.src,
                nbytes=tx.nbytes,
            )
        modem.deliver(tx.payload, tx.src, tx.nbytes, tx.link_dst)

    def _loss_draw(self, node_id: int, tx: Transmission) -> float:
        """The uniform deciding this reception's channel-loss fate.

        ``stream`` (the default) draws from the shared channel-loss RNG
        in global finalization order — the historical behaviour, kept
        bit-identical for every existing experiment.  ``hashed`` keys
        the draw on (seed, src, dst, airtime start) instead, making each
        verdict independent of the order receptions finalize across the
        network; the sharded kernel requires this, because shards
        finalize receptions in per-shard order.  (src, start) uniquely
        identifies a transmission — a radio sends one fragment at a
        time — so retransmissions still draw fresh uniforms.
        """
        if self.loss_mode == "stream":
            return self._loss_rng.random()
        return _hash_unit((self._loss_seed, tx.src, node_id, tx.start))

    def _note_radio_drop(self, node_id: int, tx: Transmission, reason: str) -> None:
        """Attribute one failed reception to its cause.

        Only the addressed receiver matters for unicast fragments; for
        broadcasts every audible node is a legitimate receiver, so each
        failed copy is recorded (the path tools treat a broadcast hop as
        lost only when *no* copy got through).
        """
        if not self.trace._active:
            return
        if tx.link_dst is not None and tx.link_dst != node_id:
            return
        trace_id = trace_id_of(tx.payload)
        if trace_id is None:
            return
        self.trace.emit(
            self.sim.now,
            "path.drop",
            node=node_id,
            trace=trace_id,
            reason=reason,
            layer="radio",
            src=tx.src,
        )
