"""Per-link reception models.

The paper's Section 6.4 calls out two properties that "proved
unexpectedly difficult" and that simulators of the era did not capture:
asymmetric links and intermittent connectivity.  Both are first-class
here:

* :class:`DistancePropagation` gives a distance-based packet reception
  ratio (PRR) with a plateau, a decay region, and a hard range limit,
  plus a static per-directed-link perturbation so A→B and B→A differ.
* :class:`GilbertElliotLink` overlays a two-state (good/bad) process per
  link for intermittent connectivity.
* :class:`TablePropagation` pins explicit per-link PRRs, used by unit
  tests and by calibrated testbed scenarios.

All three implement the :class:`FastPathPropagation` protocol consumed
by :mod:`repro.radio.neighborhood`, and all three are recognised by
:func:`repro.radio.vectorized.vectorize`, which mirrors their epoch
state into struct-of-arrays form so audibility cuts and carrier-sense
candidate sets can be computed as whole-fragment numpy operations.
That layering is deliberately one-way: this module stays scalar and
dependency-free, and the batch engine reproduces its *bounds* (which
may widen, never narrow) while delegating every exact PRR back to the
scalar methods below.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Protocol, Tuple

from repro.sim.rng import make_rng
from repro.radio.topology import Topology


class PropagationModel(Protocol):
    """Answers: with what probability does a fragment from ``src`` reach
    ``dst`` at time ``now``?  Zero means out of range (inaudible)."""

    def link_prr(self, src: int, dst: int, now: float) -> float:
        ...  # pragma: no cover


class FastPathPropagation(PropagationModel, Protocol):
    """Optional extension consumed by :mod:`repro.radio.neighborhood`.

    A model supporting the radio fast path additionally promises:

    * :meth:`prr_epoch` — an opaque version token.  While the token is
      unchanged, :meth:`link_prr_bound` is constant per directed link
      and :meth:`link_prr_window` results remain valid until their own
      expiry.  Geometry changes (``Topology.move_node``), table edits,
      and anything else that can alter a link's *bound* must change the
      token.
    * :meth:`link_prr_bound` — an upper bound on ``link_prr(src, dst,
      t)`` over all ``t`` within the current epoch.  Used to build
      audibility (> 0) and carrier-sense (>= threshold) candidate sets;
      it may overestimate (candidates are re-checked per query) but must
      never underestimate, or deliveries would be silently skipped.
    * :meth:`link_prr_window` — the exact PRR at ``now`` plus the
      absolute time until which that value stays constant (``math.inf``
      for purely static models).  Time-driven state such as a
      Gilbert–Elliot flip is expressed through this per-link expiry
      rather than the global epoch, because flips are discovered lazily
      at query time — a global counter alone could not invalidate a
      memoized link the moment its own state silently changed.
    """

    def prr_epoch(self) -> object:
        ...  # pragma: no cover

    def link_prr_bound(self, src: int, dst: int) -> float:
        ...  # pragma: no cover

    def link_prr_window(self, src: int, dst: int, now: float) -> Tuple[float, float]:
        ...  # pragma: no cover


class DistancePropagation:
    """Distance-driven PRR with deterministic per-link asymmetry.

    PRR is 1 within ``full_range`` and decays smoothly to 0 at
    ``max_range`` (a cosine ramp).  Asymmetry perturbs the *effective
    distance* of each directed link by a factor drawn once from the
    experiment seed: solid links stay solid in both directions, but
    links near the range edge differ between directions — matching the
    asymmetric links observed on the testbed, where loss on good links
    came from collisions rather than the channel.
    """

    def __init__(
        self,
        topology: Topology,
        full_range: float = 20.0,
        max_range: float = 30.0,
        asymmetry: float = 0.15,
        seed: int = 1,
    ) -> None:
        if max_range <= full_range:
            raise ValueError("max_range must exceed full_range")
        if not 0.0 <= asymmetry <= 1.0:
            raise ValueError("asymmetry must be within [0, 1]")
        self.topology = topology
        self.full_range = full_range
        self.max_range = max_range
        self.asymmetry = asymmetry
        self._seed = seed
        self._perturbation: Dict[Tuple[int, int], float] = {}

    def _link_factor(self, src: int, dst: int) -> float:
        key = (src, dst)
        factor = self._perturbation.get(key)
        if factor is None:
            # Derive deterministically per directed link so asymmetry is
            # stable regardless of query order.
            rng = make_rng(self._seed, f"asym:{src}->{dst}")
            factor = 1.0 + self.asymmetry * (2.0 * rng.random() - 1.0)
            self._perturbation[key] = factor
        return factor

    def base_prr(self, distance: float) -> float:
        """PRR before per-link perturbation."""
        if distance <= self.full_range:
            return 1.0
        if distance >= self.max_range:
            return 0.0
        frac = (distance - self.full_range) / (self.max_range - self.full_range)
        return 0.5 * (1.0 + math.cos(math.pi * frac))

    def link_prr(self, src: int, dst: int, now: float) -> float:
        if src == dst:
            return 0.0
        distance = self.topology.effective_distance(src, dst)
        perturbed = distance * self._link_factor(src, dst)
        return self.base_prr(perturbed)

    # -- fast-path protocol (repro.radio.neighborhood) ----------------------

    def prr_epoch(self) -> object:
        return self.topology.version

    def link_prr_bound(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        # Geometric upper bound: the per-link factor shrinks the
        # effective distance by at most (1 - asymmetry), so evaluating
        # the ramp there can only overestimate the PRR.  This keeps the
        # O(N^2) candidate-set build from materializing a derived RNG
        # for every far-out-of-range pair; audible candidates are
        # re-checked with the exact PRR per query.
        distance = self.topology.effective_distance(src, dst)
        return self.base_prr(distance * (1.0 - self.asymmetry))

    def link_prr_window(self, src: int, dst: int, now: float) -> Tuple[float, float]:
        # Purely geometric: constant until the topology version bumps.
        return self.link_prr(src, dst, now), math.inf

    def audible_reach(self) -> Optional[float]:
        """Spatial hint: beyond this planar distance no link can have a
        non-zero PRR, for any perturbation and any epoch.

        The per-link factor shrinks effective distance by at most
        ``(1 - asymmetry)``, and the floor penalty only adds distance,
        so ``max_range / (1 - asymmetry)`` bounds the planar separation
        of any audible pair.  :class:`~repro.radio.neighborhood.
        BoundaryIndex` uses this to bucket boundary scans spatially
        instead of probing every cross-cut pair.
        """
        if self.asymmetry >= 1.0:
            return None
        return self.max_range / (1.0 - self.asymmetry)


class TablePropagation:
    """Explicit per-directed-link PRRs; absent links are out of range."""

    def __init__(self, links: Optional[Dict[Tuple[int, int], float]] = None) -> None:
        self._links: Dict[Tuple[int, int], float] = {}
        self._version = 0
        for (src, dst), prr in (links or {}).items():
            self.set_link(src, dst, prr)

    def set_link(self, src: int, dst: int, prr: float, symmetric: bool = False) -> None:
        if not 0.0 <= prr <= 1.0:
            raise ValueError(f"PRR must be within [0, 1], got {prr}")
        self._links[(src, dst)] = prr
        if symmetric:
            self._links[(dst, src)] = prr
        self._version += 1

    def remove_link(self, src: int, dst: int, symmetric: bool = False) -> None:
        self._links.pop((src, dst), None)
        if symmetric:
            self._links.pop((dst, src), None)
        self._version += 1

    def link_prr(self, src: int, dst: int, now: float) -> float:
        return self._links.get((src, dst), 0.0)

    def links(self) -> Dict[Tuple[int, int], float]:
        return dict(self._links)

    # -- fast-path protocol (repro.radio.neighborhood) ----------------------

    def prr_epoch(self) -> object:
        return self._version

    def link_prr_bound(self, src: int, dst: int) -> float:
        return self._links.get((src, dst), 0.0)

    def link_prr_window(self, src: int, dst: int, now: float) -> Tuple[float, float]:
        return self._links.get((src, dst), 0.0), math.inf

    def audible_reach(self) -> Optional[float]:
        # Table links are not geometric; no spatial bound exists.
        return None


class GilbertElliotLink:
    """Two-state intermittence overlay on another propagation model.

    Each directed link alternates between a GOOD state (underlying PRR)
    and a BAD state (PRR scaled by ``bad_scale``), with exponentially
    distributed dwell times.  State transitions are computed lazily and
    deterministically from the experiment seed.
    """

    def __init__(
        self,
        base: PropagationModel,
        mean_good: float = 120.0,
        mean_bad: float = 15.0,
        bad_scale: float = 0.1,
        seed: int = 1,
    ) -> None:
        if mean_good <= 0 or mean_bad <= 0:
            raise ValueError("dwell times must be positive")
        self.base = base
        self.mean_good = mean_good
        self.mean_bad = mean_bad
        self.bad_scale = bad_scale
        self.seed = seed
        # Per-link: (state_is_good, state_entered_at, state_ends_at, rng)
        self._state: Dict[Tuple[int, int], list] = {}
        #: state flips discovered so far (observability; per-link window
        #: expiries — not this counter — carry the cache invalidation,
        #: since flips are only discovered lazily at query time).
        self.flips = 0

    def _advance(self, link: Tuple[int, int], now: float) -> list:
        state = self._state.get(link)
        if state is None:
            rng = make_rng(self.seed, f"gilbert:{link[0]}->{link[1]}")
            good = rng.random() >= self.mean_bad / (self.mean_good + self.mean_bad)
            mean = self.mean_good if good else self.mean_bad
            state = [good, 0.0, rng.expovariate(1.0 / mean), rng]
            self._state[link] = state
        while state[2] <= now:
            state[0] = not state[0]
            state[1] = state[2]
            mean = self.mean_good if state[0] else self.mean_bad
            state[2] = state[1] + state[3].expovariate(1.0 / mean)
            self.flips += 1
        return state

    def link_prr(self, src: int, dst: int, now: float) -> float:
        prr = self.base.link_prr(src, dst, now)
        if prr <= 0.0:
            return 0.0
        if self._advance((src, dst), now)[0]:
            return prr
        return prr * self.bad_scale

    # -- fast-path protocol (repro.radio.neighborhood) ----------------------

    def prr_epoch(self) -> object:
        # Raises AttributeError when the base model does not support the
        # fast path, which is exactly how supports_fast_path detects it.
        return ("gilbert", self.base.prr_epoch())

    def link_prr_bound(self, src: int, dst: int) -> float:
        # State-independent: good state passes the base PRR through
        # unchanged, bad state scales it, so the per-epoch maximum is
        # the base bound (times bad_scale if that somehow exceeds 1).
        return self.base.link_prr_bound(src, dst) * max(1.0, self.bad_scale)

    def link_prr_window(self, src: int, dst: int, now: float) -> Tuple[float, float]:
        base_prr, base_expiry = self.base.link_prr_window(src, dst, now)
        if base_prr <= 0.0:
            return 0.0, base_expiry
        state = self._advance((src, dst), now)
        prr = base_prr if state[0] else base_prr * self.bad_scale
        return prr, min(base_expiry, state[2])

    def audible_reach(self) -> Optional[float]:
        # The overlay scales PRRs but never resurrects a zero link, so
        # the base model's spatial bound carries over unchanged.
        reach = getattr(self.base, "audible_reach", None)
        return reach() if reach is not None else None
