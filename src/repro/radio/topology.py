"""Node placement: positions in metres, optionally on multiple floors.

The ISI testbed (paper Figure 7) spans two floors; inter-floor links
exist but are weaker, which :class:`repro.radio.propagation` models as
extra effective distance per floor crossed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Position:
    """Node position: planar coordinates in metres plus a floor index."""

    x: float
    y: float
    floor: int = 0

    def planar_distance(self, other: "Position") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


class Topology:
    """Maps node ids to positions and answers distance queries."""

    def __init__(self, floor_penalty: float = 12.0) -> None:
        # floor_penalty: metres of effective extra path per floor crossed,
        # standing in for slab attenuation.
        self._positions: Dict[int, Position] = {}
        self.floor_penalty = floor_penalty
        #: bumped on every placement change; distance-based propagation
        #: models fold this into their epoch so neighborhood caches
        #: (repro.radio.neighborhood) invalidate exactly when geometry
        #: changes and never otherwise.
        self.version = 0

    def add_node(self, node_id: int, x: float, y: float, floor: int = 0) -> None:
        if node_id in self._positions:
            raise ValueError(f"node {node_id} already placed")
        self._positions[node_id] = Position(x, y, floor)
        self.version += 1

    def move_node(self, node_id: int, x: float, y: float, floor: Optional[int] = None) -> None:
        """Relocate a node (mobility support).

        Propagation models read positions per query, so a move takes
        effect on the next transmission — no re-wiring needed.
        """
        current = self._positions[node_id]
        self._positions[node_id] = Position(
            x, y, current.floor if floor is None else floor
        )
        self.version += 1

    def position(self, node_id: int) -> Position:
        return self._positions[node_id]

    def has_node(self, node_id: int) -> bool:
        return node_id in self._positions

    def node_ids(self) -> List[int]:
        return sorted(self._positions)

    def __len__(self) -> int:
        return len(self._positions)

    def __iter__(self) -> Iterator[int]:
        return iter(self.node_ids())

    def effective_distance(self, a: int, b: int) -> float:
        """Planar distance plus the per-floor crossing penalty."""
        pa, pb = self._positions[a], self._positions[b]
        return pa.planar_distance(pb) + self.floor_penalty * abs(pa.floor - pb.floor)

    def pairs(self) -> Iterable[Tuple[int, int]]:
        ids = self.node_ids()
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                yield a, b

    @classmethod
    def grid(
        cls,
        columns: int,
        rows: int,
        spacing: float = 10.0,
        floor_penalty: float = 12.0,
        first_id: int = 0,
    ) -> "Topology":
        """A regular grid, handy for unit tests and synthetic scenarios."""
        topo = cls(floor_penalty=floor_penalty)
        node_id = first_id
        for row in range(rows):
            for col in range(columns):
                topo.add_node(node_id, col * spacing, row * spacing)
                node_id += 1
        return topo

    @classmethod
    def line(cls, count: int, spacing: float = 10.0, first_id: int = 0) -> "Topology":
        """A chain of nodes: the minimal multi-hop topology."""
        return cls.grid(columns=count, rows=1, spacing=spacing, first_id=first_id)
