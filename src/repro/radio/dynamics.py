"""Network dynamics: mobility and scheduled failures.

The paper motivates diffusion's soft state with "changing
communications, moving nodes, and limited battery power" and notes that
periodic exploratory messages "adjust gradients in the case of network
changes (due to node failure, energy depletion, or mobility)".  This
module provides the dynamics that exercise those repair paths:

* :class:`RandomWaypointMobility` moves a node between waypoints inside
  a rectangle; propagation models read positions per transmission, so
  link quality changes continuously as the node moves;
* :class:`FailureSchedule` kills (and optionally resurrects) nodes at
  chosen times on a :class:`~repro.testbed.network.SensorNetwork`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.radio.topology import Topology
from repro.sim import Simulator
from repro.sim.rng import make_rng


class RandomWaypointMobility:
    """Classic random-waypoint movement for one node.

    The node picks a uniform random waypoint in the bounding box, walks
    toward it at ``speed`` m/s (position updated every ``step``
    seconds), optionally pauses, then picks the next waypoint.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        node_id: int,
        bounds: Tuple[float, float, float, float],
        speed: float = 1.0,
        pause: float = 0.0,
        step: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        xmin, xmax, ymin, ymax = bounds
        if xmax <= xmin or ymax <= ymin:
            raise ValueError("bounds must describe a non-empty rectangle")
        if speed <= 0 or step <= 0:
            raise ValueError("speed and step must be positive")
        self.sim = sim
        self.topology = topology
        self.node_id = node_id
        self.bounds = bounds
        self.speed = speed
        self.pause = pause
        self.step = step
        # Seed-derived stream: mobility draws must stay independent of
        # node-local streams (MAC backoff, diffusion jitter) that once
        # shared random.Random(node_id) under identical seeds.
        self.rng = rng or make_rng(node_id, "mobility")
        self.waypoints_visited = 0
        self.distance_travelled = 0.0
        self._target: Optional[Tuple[float, float]] = None
        self._timer = sim.schedule(0.0, self._tick, name="mobility.tick")
        self._running = True

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()

    def _pick_waypoint(self) -> Tuple[float, float]:
        xmin, xmax, ymin, ymax = self.bounds
        return (self.rng.uniform(xmin, xmax), self.rng.uniform(ymin, ymax))

    def _tick(self) -> None:
        if not self._running:
            return
        position = self.topology.position(self.node_id)
        if self._target is None:
            self._target = self._pick_waypoint()
        tx, ty = self._target
        dx, dy = tx - position.x, ty - position.y
        distance = math.hypot(dx, dy)
        reach = self.speed * self.step
        if distance <= reach:
            self.topology.move_node(self.node_id, tx, ty)
            self.distance_travelled += distance
            self.waypoints_visited += 1
            self._target = None
            delay = self.step + self.pause
        else:
            scale = reach / distance
            self.topology.move_node(
                self.node_id, position.x + dx * scale, position.y + dy * scale
            )
            self.distance_travelled += reach
            delay = self.step
        self._timer = self.sim.schedule(delay, self._tick, name="mobility.tick")


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled failure (and optional recovery)."""

    node_id: int
    fail_at: float
    recover_at: Optional[float] = None


class FailureSchedule:
    """Applies failure events to a SensorNetwork.

    Failure mutes the node's radio and timers via
    :meth:`SensorNetwork.fail_node`.  Recovery semantics depend on
    ``clear_state``: by default the node *reboots* — gradients, cache,
    and reassembly buffers are wiped and its applications re-flood
    interests, so soft state re-forms from protocol traffic, which is
    exactly the recovery story the paper tells.  ``clear_state=False``
    keeps the legacy behaviour of re-attaching the radio with pre-crash
    state intact (a radio outage, not a power cycle).
    """

    def __init__(
        self, network, events: List[FailureEvent], clear_state: bool = True
    ) -> None:
        self.network = network
        self.clear_state = clear_state
        self.events = list(events)
        self.failures_applied = 0
        self.recoveries_applied = 0
        for event in self.events:
            network.sim.schedule_at(
                event.fail_at, self._fail, event.node_id, name="failure"
            )
            if event.recover_at is not None:
                if event.recover_at <= event.fail_at:
                    raise ValueError("recovery must come after failure")
                network.sim.schedule_at(
                    event.recover_at, self._recover, event.node_id,
                    name="recovery",
                )

    def _fail(self, node_id: int) -> None:
        self.network.fail_node(node_id)
        self.failures_applied += 1

    def _recover(self, node_id: int) -> None:
        self.network.resurrect_node(node_id, clear_state=self.clear_state)
        self.recoveries_applied += 1
