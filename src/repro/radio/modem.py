"""Radiometrix-RPC-style packet modem.

Paper Section 6.1: "off-the-shelf, 418 MHz, packet-based radios that
provide about 13kb/s throughput", with messages "broken into several
27-byte fragments".  The modem owns the physical-layer timing (preamble
plus payload at the bit rate) and the half-duplex transmitting flag the
channel consults for collisions and carrier sensing.

The modem transmits one fragment at a time; queueing, carrier sensing
and backoff belong to the MAC (:mod:`repro.mac`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.sim import Simulator

BROADCAST_ADDRESS: Optional[int] = None


@dataclass(frozen=True)
class RadioParams:
    """Physical-layer constants."""

    bitrate_bps: float = 13_000.0      # ~13 kb/s RPC throughput
    fragment_payload: int = 27         # bytes of payload per fragment
    fragment_overhead: int = 5         # preamble/sync/len/crc per fragment
    turnaround_s: float = 0.001        # rx->tx switch time

    def fragment_airtime(self, payload_bytes: int) -> float:
        """Seconds on air for one fragment carrying ``payload_bytes``."""
        if payload_bytes > self.fragment_payload:
            raise ValueError(
                f"fragment payload {payload_bytes} exceeds radio maximum "
                f"{self.fragment_payload}"
            )
        total = payload_bytes + self.fragment_overhead
        return (total * 8) / self.bitrate_bps


class Modem:
    """One node's radio.  Half duplex; one fragment in flight at a time."""

    def __init__(
        self,
        sim: Simulator,
        channel,
        node_id: int,
        params: Optional[RadioParams] = None,
        energy=None,
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.node_id = node_id
        self.params = params or RadioParams()
        self.energy = energy
        self.transmitting = False
        self.sleeping = False  # duty-cycled MACs park the radio here
        self.receive_callback: Optional[Callable[[Any, int, int, Optional[int]], None]] = None
        self._tx_done_callback: Optional[Callable[[], None]] = None
        self.bytes_sent = 0
        self.fragments_sent = 0
        self.bytes_received = 0
        self.fragments_received = 0
        channel.attach(self)

    # -- transmit -------------------------------------------------------------

    def transmit_fragment(
        self,
        payload: Any,
        payload_bytes: int,
        link_dst: Optional[int] = BROADCAST_ADDRESS,
        on_done: Optional[Callable[[], None]] = None,
    ) -> float:
        """Put one fragment on the air; returns its airtime in seconds.

        Raises RuntimeError if already transmitting — the MAC must
        serialize its own fragments.
        """
        if self.transmitting:
            raise RuntimeError(f"modem {self.node_id} is already transmitting")
        if self.sleeping:
            raise RuntimeError(f"modem {self.node_id} is asleep")
        airtime = self.params.fragment_airtime(payload_bytes)
        self.transmitting = True
        self._tx_done_callback = on_done
        self.bytes_sent += payload_bytes + self.params.fragment_overhead
        self.fragments_sent += 1
        if self.energy is not None:
            self.energy.record_send(airtime)
        self.channel.start_transmission(
            self.node_id, payload, payload_bytes, airtime, link_dst
        )
        self.sim.schedule(airtime, self._transmit_done, name="modem.txdone")
        return airtime

    def _transmit_done(self) -> None:
        self.transmitting = False
        # Retire this node from the channel's active-transmitter
        # registry in step with the flag (carrier sense consults both).
        self.channel.transmission_ended(self.node_id)
        callback = self._tx_done_callback
        self._tx_done_callback = None
        if callback is not None:
            callback()

    # -- receive ----------------------------------------------------------------

    def deliver(self, payload: Any, src: int, nbytes: int, link_dst: Optional[int]) -> None:
        """Called by the channel when a fragment arrives intact."""
        self.fragments_received += 1
        self.bytes_received += nbytes
        if self.energy is not None:
            self.energy.record_receive(self.params.fragment_airtime(nbytes))
        # Link-layer address filter: accept broadcast or our own address.
        if link_dst is not None and link_dst != self.node_id:
            return
        if self.receive_callback is not None:
            self.receive_callback(payload, src, nbytes, link_dst)

    def carrier_busy(self) -> bool:
        return self.channel.carrier_busy(self.node_id)
