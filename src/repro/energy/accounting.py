"""Per-node and network-wide energy ledgers.

The modem reports time spent sending and receiving; listening time is
whatever remains of the elapsed experiment, scaled by the MAC's listen
duty cycle.  Energy comes out in the paper's relative units (listen
power = 1).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.energy.model import DutyCycleModel, EnergyBreakdown


class EnergyLedger:
    """Accumulates radio-state time for one node."""

    def __init__(
        self,
        model: Optional[DutyCycleModel] = None,
        duty_cycle: float = 1.0,
    ) -> None:
        if not 0.0 <= duty_cycle <= 1.0:
            raise ValueError("duty cycle must be within [0, 1]")
        self.model = model or DutyCycleModel()
        self.duty_cycle = duty_cycle
        self.time_sending = 0.0
        self.time_receiving = 0.0

    def record_send(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("negative send time")
        self.time_sending += seconds

    def record_receive(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("negative receive time")
        self.time_receiving += seconds

    def listen_time(self, elapsed: float) -> float:
        """Idle-listening seconds over an experiment of ``elapsed`` s."""
        active = self.time_sending + self.time_receiving
        return max(0.0, elapsed - active) * self.duty_cycle

    def breakdown(self, elapsed: float) -> EnergyBreakdown:
        """Energy split using *measured* times (not the model's ratios)."""
        return EnergyBreakdown(
            listen=self.model.p_listen * self.listen_time(elapsed),
            receive=self.model.p_receive * self.time_receiving,
            send=self.model.p_send * self.time_sending,
        )

    def energy(self, elapsed: float) -> float:
        return self.breakdown(elapsed).total


class NetworkEnergyAccount:
    """Aggregates ledgers across all nodes of an experiment."""

    def __init__(self) -> None:
        self._ledgers: Dict[int, EnergyLedger] = {}

    def ledger(self, node_id: int, **kwargs) -> EnergyLedger:
        if node_id not in self._ledgers:
            self._ledgers[node_id] = EnergyLedger(**kwargs)
        return self._ledgers[node_id]

    def total_energy(self, elapsed: float) -> float:
        return sum(ledger.energy(elapsed) for ledger in self._ledgers.values())

    def total_breakdown(self, elapsed: float) -> EnergyBreakdown:
        listen = receive = send = 0.0
        for ledger in self._ledgers.values():
            b = ledger.breakdown(elapsed)
            listen += b.listen
            receive += b.receive
            send += b.send
        return EnergyBreakdown(listen=listen, receive=receive, send=send)

    def node_ids(self):
        return sorted(self._ledgers)
