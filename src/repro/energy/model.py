"""The paper's duty-cycle energy model.

Section 6.1: "A simple model of energy consumption is
``Pd = d*pl*tl + pr*tr + ps*ts``, where p and t define the relative
power and time spent listening, receiving, and sending and d is defined
as the required listen duty cycle."

The paper prints the measured time ratios as "listen:receive:send ...
about 1:3:40", but its three numerical claims —

* at d = 1, energy is "completely dominated" by listening,
* at d = 22%, half the energy is spent listening,
* at d = 10%, send cost begins to dominate

— are only mutually consistent when listening holds the *large* share
(a radio listens whenever it is not sending or receiving, so idle
listening dominates wall-clock time).  With time ratios
listen:receive:send = 40:1:3 and the paper's power ratios 1:2:2:

* d = 1.0:  listen = 40 of 48 total (83%, dominant);
* d = 0.20: listen = 8 = receive+send = 8 (the 50% crossover, the
  paper rounds to 22%);
* d = 0.15: listen = 6 = send = 6; below this send dominates, hence
  "duty cycles of 10% begin to be dominated by send cost".

We therefore adopt 40:1:3 as the canonical time ratios and note the
discrepancy in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

#: power ratios (listen, receive, send) the paper assumes "for simplicity"
PAPER_POWER_RATIOS = (1.0, 2.0, 2.0)

#: time ratios (listen, receive, send) consistent with the paper's claims
PAPER_TIME_RATIOS = (40.0, 1.0, 3.0)


@dataclass(frozen=True)
class EnergyBreakdown:
    """Relative energy split between radio states."""

    listen: float
    receive: float
    send: float

    @property
    def total(self) -> float:
        return self.listen + self.receive + self.send

    @property
    def listen_fraction(self) -> float:
        total = self.total
        return self.listen / total if total > 0 else 0.0

    @property
    def send_fraction(self) -> float:
        total = self.total
        return self.send / total if total > 0 else 0.0

    @property
    def receive_fraction(self) -> float:
        total = self.total
        return self.receive / total if total > 0 else 0.0


class DutyCycleModel:
    """Evaluate ``Pd = d*pl*tl + pr*tr + ps*ts`` for given ratios.

    The duty cycle ``d`` scales only the listen term: sleeping saves
    idle listening, but traffic still has to be received and sent.
    """

    def __init__(
        self,
        power_ratios=PAPER_POWER_RATIOS,
        time_ratios=PAPER_TIME_RATIOS,
    ) -> None:
        if min(power_ratios) < 0 or min(time_ratios) < 0:
            raise ValueError("ratios must be non-negative")
        self.p_listen, self.p_receive, self.p_send = power_ratios
        self.t_listen, self.t_receive, self.t_send = time_ratios

    def breakdown(self, duty_cycle: float) -> EnergyBreakdown:
        if not 0.0 <= duty_cycle <= 1.0:
            raise ValueError("duty cycle must be within [0, 1]")
        return EnergyBreakdown(
            listen=duty_cycle * self.p_listen * self.t_listen,
            receive=self.p_receive * self.t_receive,
            send=self.p_send * self.t_send,
        )

    def energy(self, duty_cycle: float) -> float:
        return self.breakdown(duty_cycle).total

    def listen_half_duty_cycle(self) -> float:
        """Duty cycle at which listening is exactly half the energy."""
        listen_unit = self.p_listen * self.t_listen
        if listen_unit == 0:
            raise ValueError("listen power/time is zero; no crossover")
        non_listen = self.p_receive * self.t_receive + self.p_send * self.t_send
        return min(1.0, non_listen / listen_unit)

    def send_dominance_duty_cycle(self) -> float:
        """Duty cycle below which send energy exceeds listen energy."""
        listen_unit = self.p_listen * self.t_listen
        if listen_unit == 0:
            raise ValueError("listen power/time is zero; no crossover")
        return min(1.0, (self.p_send * self.t_send) / listen_unit)


def paper_duty_cycle_table(model: DutyCycleModel = None, duty_cycles=(1.0, 0.22, 0.15, 0.10)):
    """The Section 6.1 analysis as rows of (d, per-state fractions)."""
    model = model or DutyCycleModel()
    rows = []
    for d in duty_cycles:
        b = model.breakdown(d)
        rows.append(
            {
                "duty_cycle": d,
                "listen_fraction": b.listen_fraction,
                "receive_fraction": b.receive_fraction,
                "send_fraction": b.send_fraction,
                "relative_energy": b.total,
            }
        )
    return rows
