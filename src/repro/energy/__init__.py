"""Energy modelling (paper Section 6.1).

The testbed could not measure energy directly; the paper substitutes the
analytical model ``Pd = d*pl*tl + pr*tr + ps*ts`` with measured
listen:receive:send time ratios of about 1:3:40 and assumed power ratios
of 1:2:2.  We implement the same model, plus per-node ledgers fed by the
modem so simulated runs report energy alongside traffic.
"""

from repro.energy.model import DutyCycleModel, EnergyBreakdown, PAPER_POWER_RATIOS
from repro.energy.accounting import EnergyLedger, NetworkEnergyAccount

__all__ = [
    "DutyCycleModel",
    "EnergyBreakdown",
    "PAPER_POWER_RATIOS",
    "EnergyLedger",
    "NetworkEnergyAccount",
]
