"""Canned scenarios: pre-wired networks for tests, demos, and studies.

Each scenario returns a fully constructed :class:`SensorNetwork` (or
ideal-transport equivalent) plus the role assignments an experiment
needs, so callers don't repeat topology/plumbing boilerplate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
from repro.radio import Topology
from repro.sim import Simulator
from repro.testbed.network import IdealNetwork, SensorNetwork


@dataclass
class Scenario:
    """A network with named roles."""

    network: SensorNetwork
    roles: Dict[str, object] = field(default_factory=dict)

    def api(self, role: str) -> DiffusionRouting:
        return self.network.api(self.roles[role])


def line_scenario(
    hops: int = 4,
    spacing: float = 15.0,
    seed: int = 1,
    config: Optional[DiffusionConfig] = None,
) -> Scenario:
    """Sink at one end, source at the other, ``hops`` hops apart."""
    network = SensorNetwork(
        Topology.line(hops + 1, spacing=spacing), seed=seed, config=config
    )
    return Scenario(
        network=network, roles={"sink": 0, "source": hops}
    )


def grid_scenario(
    columns: int = 5,
    rows: int = 5,
    spacing: float = 18.0,
    seed: int = 1,
    config: Optional[DiffusionConfig] = None,
) -> Scenario:
    """Sink at one corner, source at the opposite corner."""
    network = SensorNetwork(
        Topology.grid(columns=columns, rows=rows, spacing=spacing),
        seed=seed,
        config=config,
    )
    return Scenario(
        network=network,
        roles={"sink": 0, "source": columns * rows - 1, "center": (rows // 2) * columns + columns // 2},
    )


def diamond_scenario(
    seed: int = 1,
    config: Optional[DiffusionConfig] = None,
    spacing: float = 16.0,
) -> Scenario:
    """Two disjoint relay paths between sink and source — the minimal
    topology for studying reinforcement choice, negative reinforcement,
    and path repair."""
    topology = Topology()
    topology.add_node(0, 0.0, 0.0)                 # sink
    topology.add_node(1, spacing, spacing * 0.6)   # upper relay
    topology.add_node(2, spacing, -spacing * 0.6)  # lower relay
    topology.add_node(3, 2 * spacing, 0.0)         # source
    network = SensorNetwork(topology, seed=seed, config=config)
    return Scenario(
        network=network,
        roles={"sink": 0, "relay_a": 1, "relay_b": 2, "source": 3},
    )


def ideal_line(
    hops: int,
    config: Optional[DiffusionConfig] = None,
    delay: float = 0.01,
    loss: float = 0.0,
    seed: int = 1,
) -> Tuple[Simulator, IdealNetwork, Dict[int, DiffusionNode], Dict[int, DiffusionRouting]]:
    """A lossless/lossy ideal-transport chain for protocol-logic work."""
    sim = Simulator()
    net = IdealNetwork(sim, delay=delay, loss=loss, seed=seed)
    nodes: Dict[int, DiffusionNode] = {}
    apis: Dict[int, DiffusionRouting] = {}
    for i in range(hops + 1):
        transport = net.add_node(i)
        nodes[i] = DiffusionNode(sim, i, transport, config=config)
        apis[i] = DiffusionRouting(nodes[i])
    for i in range(hops):
        net.connect(i, i + 1)
    return sim, net, nodes, apis
