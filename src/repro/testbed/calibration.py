"""Radio calibration reports for a topology + propagation pair.

The ISI testbed description is textual ("typically 5 hops across",
"one hop from the light sensors to the audio sensor"); this module
turns a configured topology into the numbers behind those sentences, so
calibration claims are checkable rather than folklore:

* per-directed-link PRR matrix (and the asymmetry between directions);
* a connectivity graph over usable links and its hop metrics;
* a one-call validation of the ISI testbed's textual constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.radio.topology import Topology

#: links below this PRR are not usable for multi-fragment messages
USABLE_PRR = 0.5


@dataclass(frozen=True)
class LinkReport:
    """One node pair's channel quality, both directions."""

    a: int
    b: int
    prr_ab: float
    prr_ba: float

    @property
    def asymmetry(self) -> float:
        return abs(self.prr_ab - self.prr_ba)

    @property
    def usable(self) -> bool:
        return min(self.prr_ab, self.prr_ba) >= USABLE_PRR

    @property
    def one_way_only(self) -> bool:
        """The pathological case Section 6.4 complains about."""
        high, low = max(self.prr_ab, self.prr_ba), min(self.prr_ab, self.prr_ba)
        return high >= USABLE_PRR and low < USABLE_PRR


def link_reports(
    topology: Topology, propagation, now: float = 0.0
) -> List[LinkReport]:
    """PRRs for every pair with any connectivity at all."""
    reports = []
    for a, b in topology.pairs():
        prr_ab = propagation.link_prr(a, b, now)
        prr_ba = propagation.link_prr(b, a, now)
        if prr_ab > 0.0 or prr_ba > 0.0:
            reports.append(LinkReport(a=a, b=b, prr_ab=prr_ab, prr_ba=prr_ba))
    return reports


def usable_graph(
    topology: Topology, propagation, now: float = 0.0
) -> "nx.Graph":
    """Undirected graph over links usable in both directions."""
    graph = nx.Graph()
    graph.add_nodes_from(topology.node_ids())
    for report in link_reports(topology, propagation, now):
        if report.usable:
            graph.add_edge(report.a, report.b)
    return graph


@dataclass
class CalibrationSummary:
    """The numbers behind the testbed's textual description."""

    node_count: int
    usable_links: int
    one_way_links: int
    connected: bool
    diameter_hops: Optional[int]
    hop_counts: Dict[Tuple[int, int], Optional[int]]


def summarize(
    topology: Topology,
    propagation,
    pairs_of_interest: List[Tuple[int, int]] = (),
    now: float = 0.0,
) -> CalibrationSummary:
    reports = link_reports(topology, propagation, now)
    graph = usable_graph(topology, propagation, now)
    connected = (
        graph.number_of_nodes() > 0 and nx.is_connected(graph)
    )
    diameter = nx.diameter(graph) if connected else None
    hops: Dict[Tuple[int, int], Optional[int]] = {}
    for a, b in pairs_of_interest:
        try:
            hops[(a, b)] = nx.shortest_path_length(graph, a, b)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            hops[(a, b)] = None
    return CalibrationSummary(
        node_count=len(topology),
        usable_links=sum(1 for r in reports if r.usable),
        one_way_links=sum(1 for r in reports if r.one_way_only),
        connected=connected,
        diameter_hops=diameter,
        hop_counts=hops,
    )


def validate_isi(seed: int = 1) -> Dict[str, bool]:
    """Check the paper's textual constraints against the configured
    ISI testbed geometry.  All values should be True."""
    from repro.radio import DistancePropagation
    from repro.testbed.isi import (
        FIG8_SINK,
        FIG8_SOURCES,
        FIG9_AUDIO,
        FIG9_LIGHTS,
        FIG9_USER,
        ISI_FULL_RANGE,
        ISI_MAX_RANGE,
        isi_testbed_topology,
    )

    topology = isi_testbed_topology()
    propagation = DistancePropagation(
        topology,
        full_range=ISI_FULL_RANGE,
        max_range=ISI_MAX_RANGE,
        asymmetry=0.10,
        seed=seed,
    )
    pairs = [(source, FIG8_SINK) for source in FIG8_SOURCES]
    pairs += [(light, FIG9_AUDIO) for light in FIG9_LIGHTS]
    pairs.append((FIG9_AUDIO, FIG9_USER))
    summary = summarize(topology, propagation, pairs_of_interest=pairs)
    source_hops = [summary.hop_counts[(s, FIG8_SINK)] for s in FIG8_SOURCES]
    light_hops = [summary.hop_counts[(l, FIG9_AUDIO)] for l in FIG9_LIGHTS]
    return {
        "fourteen_nodes": summary.node_count == 14,
        "connected": summary.connected,
        "five_hops_across": summary.diameter_hops in (4, 5, 6),
        "sources_about_4_hops_from_sink": all(
            h is not None and 3 <= h <= 6 for h in source_hops
        ),
        "lights_one_hop_from_audio": all(h == 1 for h in light_hops),
        "user_two_hops_from_audio": summary.hop_counts[
            (FIG9_AUDIO, FIG9_USER)
        ] == 2,
    }
