"""Network assembly: full radio stacks, ideal transports, and the ISI
testbed of paper Figure 7."""

from repro.testbed.network import IdealNetwork, SensorNetwork
from repro.testbed.calibration import (
    link_reports,
    summarize,
    usable_graph,
    validate_isi,
)
from repro.testbed.isi import (
    format_testbed_map,
    ISI_NODE_IDS,
    ISI_TENTH_FLOOR,
    isi_testbed_topology,
    isi_testbed_network,
    FIG8_SINK,
    FIG8_SOURCES,
    FIG9_USER,
    FIG9_AUDIO,
    FIG9_LIGHTS,
)

__all__ = [
    "IdealNetwork",
    "SensorNetwork",
    "ISI_NODE_IDS",
    "ISI_TENTH_FLOOR",
    "isi_testbed_topology",
    "isi_testbed_network",
    "format_testbed_map",
    "link_reports",
    "summarize",
    "usable_graph",
    "validate_isi",
    "FIG8_SINK",
    "FIG8_SOURCES",
    "FIG9_USER",
    "FIG9_AUDIO",
    "FIG9_LIGHTS",
]
