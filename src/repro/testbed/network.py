"""Network builders.

:class:`IdealNetwork` delivers messages between explicitly connected
nodes with a fixed hop delay and optional loss — no MAC, no collisions.
It isolates protocol logic for unit tests and analytical experiments.

:class:`SensorNetwork` assembles the full stack the testbed ran:
channel → modem → CSMA MAC → fragmentation → diffusion core, one per
node, plus energy ledgers and a shared trace bus.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
from repro.energy import NetworkEnergyAccount
from repro.link import FragmentationLayer
from repro.mac import CsmaMac
from repro.radio import (
    Channel,
    DistancePropagation,
    Modem,
    RadioParams,
    Topology,
    vectorize,
)
from repro.sim import SeedSequence, Simulator, TraceBus


class IdealTransport:
    """One node's attachment to an :class:`IdealNetwork`."""

    def __init__(self, network: "IdealNetwork", node_id: int) -> None:
        self.network = network
        self.node_id = node_id
        self.deliver_callback = None
        self.bytes_sent = 0
        self.messages_sent = 0

    def send_message(self, message, nbytes: int, link_dst: Optional[int] = None) -> None:
        self.bytes_sent += nbytes
        self.messages_sent += 1
        self.network._dispatch(self.node_id, message, nbytes, link_dst)


class IdealNetwork:
    """Lossless-by-default graph network with per-hop latency."""

    def __init__(
        self,
        sim: Simulator,
        delay: float = 0.01,
        loss: float = 0.0,
        seed: int = 1,
    ) -> None:
        if not 0.0 <= loss < 1.0:
            raise ValueError("loss must be within [0, 1)")
        self.sim = sim
        self.delay = delay
        self.loss = loss
        self._rng = random.Random(seed)
        self._transports: Dict[int, IdealTransport] = {}
        self._links: Set[Tuple[int, int]] = set()

    def add_node(self, node_id: int) -> IdealTransport:
        if node_id in self._transports:
            raise ValueError(f"node {node_id} already exists")
        transport = IdealTransport(self, node_id)
        self._transports[node_id] = transport
        return transport

    def connect(self, a: int, b: int, symmetric: bool = True) -> None:
        self._links.add((a, b))
        if symmetric:
            self._links.add((b, a))

    def disconnect(self, a: int, b: int, symmetric: bool = True) -> None:
        self._links.discard((a, b))
        if symmetric:
            self._links.discard((b, a))

    def neighbors_of(self, node_id: int) -> List[int]:
        return sorted(dst for src, dst in self._links if src == node_id)

    def _dispatch(self, src: int, message, nbytes: int, link_dst: Optional[int]) -> None:
        if link_dst is None:
            targets = self.neighbors_of(src)
        else:
            targets = [link_dst] if (src, link_dst) in self._links else []
        for dst in targets:
            if self.loss and self._rng.random() < self.loss:
                continue
            transport = self._transports.get(dst)
            if transport is None:
                continue
            self.sim.schedule(
                self.delay, self._deliver, transport, message, src, nbytes,
                name="ideal.deliver",
            )

    @staticmethod
    def _deliver(transport: IdealTransport, message, src: int, nbytes: int) -> None:
        if transport.deliver_callback is not None:
            transport.deliver_callback(message, src, nbytes)


class NodeStack:
    """All layers of one node in a :class:`SensorNetwork`."""

    def __init__(self, node_id, modem, mac, frag, diffusion, api, energy):
        self.node_id = node_id
        self.modem = modem
        self.mac = mac
        self.frag = frag
        self.diffusion = diffusion
        self.api = api
        self.energy = energy


class SensorNetwork:
    """The full simulated testbed: radios, MACs, fragmentation, diffusion."""

    def __init__(
        self,
        topology: Topology,
        config: Optional[DiffusionConfig] = None,
        seed: int = 1,
        radio_params: Optional[RadioParams] = None,
        propagation=None,
        mac_queue_limit: int = 64,
        mac_factory=None,
        channel_indexed: Optional[bool] = None,
        channel_vectorized: bool = False,
        loss_mode: str = "stream",
        nodes: Optional[Iterable[int]] = None,
    ) -> None:
        self.topology = topology
        self.config = config or DiffusionConfig()
        self.seed = seed
        self.sim = Simulator()
        self.trace = TraceBus()
        self.seeds = SeedSequence(seed)
        self.radio_params = radio_params or RadioParams()
        self.propagation = propagation or DistancePropagation(topology, seed=seed)
        # channel_vectorized: opt the propagation model into the numpy
        # batch engine (repro.radio.vectorized).  The wrapper delegates
        # every scalar query verbatim, so when numpy is missing (or
        # REPRO_NO_NUMPY is set) the run silently continues on the
        # scalar fast path — verdicts are bit-identical either way, and
        # the channel's radio.vectorized_fallbacks counter records it.
        if channel_vectorized:
            self.propagation = vectorize(self.propagation)
        # channel_indexed: None = use the neighborhood fast path when the
        # propagation model supports it; False forces the reference O(N)
        # scan (the equivalence suite and channelbench compare the two).
        self.channel = Channel(
            self.sim, self.propagation, seeds=self.seeds, trace=self.trace,
            indexed=channel_indexed, loss_mode=loss_mode,
        )
        self.energy_account = NetworkEnergyAccount()
        # mac_factory(sim, modem, rng, queue_limit) -> Mac; None = CSMA.
        self.mac_factory = mac_factory
        self.stacks: Dict[int, NodeStack] = {}
        # nodes: build stacks for this subset only (a shard builds just
        # its owned nodes against the full topology).  Per-node RNG
        # streams are derived by label, not drawn in sequence, so a
        # subset build consumes exactly the streams the same nodes
        # would consume in a whole-network build.
        build_ids = (
            topology.node_ids() if nodes is None else sorted(nodes)
        )
        for node_id in build_ids:
            if not topology.has_node(node_id):
                raise ValueError(f"node {node_id} is not in the topology")
            self._build_node(node_id, mac_queue_limit)

    def _build_node(self, node_id: int, mac_queue_limit: int) -> None:
        energy = self.energy_account.ledger(node_id)
        modem = Modem(
            self.sim, self.channel, node_id, params=self.radio_params, energy=energy
        )
        mac_rng = self.seeds.stream(f"mac:{node_id}")
        if self.mac_factory is not None:
            mac = self.mac_factory(self.sim, modem, mac_rng, mac_queue_limit)
            # The factory signature predates the trace bus; route factory-
            # built MACs onto the shared bus after the fact.
            mac.trace = self.trace
        else:
            mac = CsmaMac(
                self.sim, modem, rng=mac_rng, queue_limit=mac_queue_limit,
                trace=self.trace,
            )
        frag = FragmentationLayer(
            self.sim, mac, node_id,
            fragment_payload=self.radio_params.fragment_payload,
            trace=self.trace,
        )
        diffusion = DiffusionNode(
            self.sim,
            node_id,
            transport=frag,
            config=self.config,
            trace=self.trace,
            rng=self.seeds.stream(f"diffusion:{node_id}"),
        )
        api = DiffusionRouting(diffusion)
        self.stacks[node_id] = NodeStack(
            node_id, modem, mac, frag, diffusion, api, energy
        )

    # -- access ---------------------------------------------------------------

    def api(self, node_id: int) -> DiffusionRouting:
        return self.stacks[node_id].api

    def node(self, node_id: int) -> DiffusionNode:
        return self.stacks[node_id].diffusion

    def stack(self, node_id: int) -> NodeStack:
        return self.stacks[node_id]

    def node_ids(self) -> List[int]:
        return sorted(self.stacks)

    # -- control -----------------------------------------------------------------

    def run(self, until: float) -> None:
        self.sim.run(until=until)

    def fail_node(self, node_id: int) -> None:
        """Simulate node death: stop its timers and silence its radio.

        The modem is detached from the channel, so the dead node drops
        out of every audibility and carrier-sense set instead of being
        re-scanned on each fragment; queued MAC traffic is discarded (a
        dead node neither receives nor keeps transmitting).  A fragment
        already on the air finishes — the signal left the antenna.
        """
        stack = self.stacks[node_id]
        stack.diffusion.shutdown()
        stack.modem.receive_callback = None
        stack.mac.enqueue = lambda *args, **kwargs: False
        stack.mac._queue.clear()
        self.channel.detach(node_id)

    def resurrect_node(self, node_id: int, clear_state: bool = True) -> None:
        """Bring a failed node back.

        With ``clear_state`` (the default) the node power-cycles: its
        gradients, duplicate cache, and partial reassembly buffers are
        wiped, and its applications re-flood their interests — repair
        then depends on protocol traffic, which is the paper's recovery
        story.  With ``clear_state=False`` only the radio re-attaches
        and pre-crash soft state survives (the legacy recovery model,
        useful for modelling a brief radio outage rather than a reboot).
        """
        stack = self.stacks[node_id]
        self.channel.attach(stack.modem)
        stack.modem.receive_callback = stack.frag._on_modem_fragment
        # fail_node shadowed enqueue with an instance attribute; removing
        # the shadow restores the class implementation.
        stack.mac.__dict__.pop("enqueue", None)
        if clear_state:
            stack.frag.reset()
            stack.diffusion.reboot()

    # -- measurement ----------------------------------------------------------------

    def total_diffusion_bytes_sent(self) -> int:
        """Bytes handed to the radio by all diffusion modules — the
        quantity Figure 8 reports."""
        return sum(s.diffusion.stats.bytes_sent for s in self.stacks.values())

    def total_diffusion_messages_sent(self) -> int:
        return sum(s.diffusion.stats.messages_sent for s in self.stacks.values())

    def total_radio_bytes_sent(self) -> int:
        return sum(s.modem.bytes_sent for s in self.stacks.values())

    def total_energy(self, elapsed: float) -> float:
        return self.energy_account.total_energy(elapsed)
