"""The ISI building testbed (paper Figure 7).

Fourteen PC/104 nodes over two floors of ISI; nodes 11, 13 and 16 are on
the 10th floor, the rest on the 11th.  The paper gives node ids and a
floor plan but no coordinates, so the geometry below is calibrated to
the textual constraints:

* the network is "typically 5 hops across";
* Figure 8 places the sink at node 28 and sources at 25, 16, 22, 13,
  "typically 4 hops apart";
* Figure 9 places the user at 39, the audio sensor at 20, and light
  sensors at 16, 25, 22, 13 — one hop from the lights to the audio
  node, two hops from there to the user;
* "radio range varies greatly depending on node position".

Coordinates are metres; the radio model gives solid links to ~20 m and
nothing past ~35 m, with a 10 m penalty per floor crossed.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core import DiffusionConfig
from repro.radio import DistancePropagation, RadioParams, Topology
from repro.testbed.network import SensorNetwork

#: Figure 8 roles
FIG8_SINK = 28
FIG8_SOURCES = (25, 16, 22, 13)

#: Figure 9 roles
FIG9_USER = 39
FIG9_AUDIO = 20
FIG9_LIGHTS = (16, 25, 22, 13)

#: (x, y, floor): floor 0 is the 10th floor, floor 1 the 11th.
_ISI_POSITIONS: Dict[int, Tuple[float, float, int]] = {
    25: (2.0, 2.0, 1),
    22: (0.0, 18.0, 1),
    16: (6.0, 10.0, 0),
    13: (12.0, 20.0, 0),
    20: (15.0, 12.0, 1),
    11: (20.0, 30.0, 0),
    21: (32.0, 10.0, 1),
    24: (30.0, 28.0, 1),
    39: (44.0, 22.0, 1),
    33: (48.0, 12.0, 1),
    35: (46.0, 30.0, 1),
    18: (64.0, 4.0, 1),
    17: (62.0, 20.0, 1),
    28: (78.0, 14.0, 1),
}

ISI_NODE_IDS = tuple(sorted(_ISI_POSITIONS))
ISI_TENTH_FLOOR = (11, 13, 16)

#: radio calibration for the testbed geometry
ISI_FULL_RANGE = 20.0
ISI_MAX_RANGE = 35.0
ISI_FLOOR_PENALTY = 8.0


def isi_testbed_topology() -> Topology:
    """The 14-node two-floor topology of Figure 7."""
    topo = Topology(floor_penalty=ISI_FLOOR_PENALTY)
    for node_id, (x, y, floor) in sorted(_ISI_POSITIONS.items()):
        topo.add_node(node_id, x, y, floor)
    return topo


def format_testbed_map(width: int = 66, height: int = 16) -> str:
    """An ASCII rendition of Figure 7: node positions by floor.

    Eleventh-floor nodes print as their id; tenth-floor nodes (11, 13,
    16) print in brackets, mirroring the light/dark distinction of the
    paper's figure.
    """
    xs = [x for x, _, _ in _ISI_POSITIONS.values()]
    ys = [y for _, y, _ in _ISI_POSITIONS.values()]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]

    def place(text: str, col: int, row: int) -> None:
        col = max(0, min(width - len(text), col))
        for offset, char in enumerate(text):
            grid[row][col + offset] = char

    for node_id, (x, y, floor) in sorted(_ISI_POSITIONS.items()):
        col = round((x - x_low) / (x_high - x_low) * (width - 5))
        row = round((1 - (y - y_low) / (y_high - y_low)) * (height - 1))
        label = f"[{node_id}]" if floor == 0 else str(node_id)
        place(label, col, row)
    lines = ["ISI testbed (Figure 7) — [id] marks 10th-floor nodes:"]
    lines.extend("  " + "".join(row).rstrip() for row in grid)
    lines.append(
        f"  sink={FIG8_SINK}  sources={list(FIG8_SOURCES)}  "
        f"user={FIG9_USER}  audio={FIG9_AUDIO}"
    )
    return "\n".join(line for line in lines)


def isi_testbed_network(
    seed: int = 1,
    config: Optional[DiffusionConfig] = None,
    asymmetry: float = 0.10,
    radio_params: Optional[RadioParams] = None,
    channel_vectorized: bool = False,
) -> SensorNetwork:
    """A ready-to-run simulation of the ISI testbed."""
    topology = isi_testbed_topology()
    propagation = DistancePropagation(
        topology,
        full_range=ISI_FULL_RANGE,
        max_range=ISI_MAX_RANGE,
        asymmetry=asymmetry,
        seed=seed,
    )
    return SensorNetwork(
        topology,
        config=config,
        seed=seed,
        propagation=propagation,
        radio_params=radio_params,
        channel_vectorized=channel_vectorized,
    )
