"""Seed-deterministic cluster-head election.

Every node periodically broadcasts a one-hop CONTROL announcement with
its election score and current head claim (CCIC-WSN-style, adapted to
diffusion's message vocabulary).  A node claims headship when its score
is the maximum over itself and every live neighbor; members adopt the
best-scoring neighbor that claims headship.  Scores combine an energy
term, the observed live degree, and a stable splitmix64 tiebreak —
all deterministic given the experiment seed, so the same seed elects
the same heads.

There is no explicit resignation protocol: when a head crashes its
announcements simply stop, it ages out of every neighbor table after
``head_timeout``, and each neighborhood re-elects on its next
announcement tick.  The PR-5 fault path (``NodeCrash`` + ``reboot``)
exercises exactly this; a rebooted node restarts with empty soft state
and re-enters the election like a fresh deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.filter_api import GRADIENT_FILTER_PRIORITY
from repro.core.messages import Message, make_control, make_interest
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.sim.metrics import current_registry

from repro.hierarchy.hashing import splitmix64

#: hierarchy control filters sit above the gradient core and above the
#: GEAR filter, so announcements are consumed before anything else runs.
CONTROL_FILTER_PRIORITY = GRADIENT_FILTER_PRIORITY + 60

#: CONTROL_KIND value tagging cluster announcements.
CLUSTER_CONTROL_KIND = "cluster"


@dataclass
class NeighborView:
    """What one announcement told us about a neighbor."""

    score: int
    head_claim: int
    heard_at: float


class ClusterService:
    """Election state machine for one node.

    All randomness (announce phase and period jitter) comes from the
    per-node ``rng`` stream handed in by the installer — never from the
    global ``random`` module — so runs replay bit-identically.
    """

    def __init__(self, node, rng, params, energy_of=None) -> None:
        self.node = node                      # DiffusionNode
        self.rng = rng
        self.params = params
        self.energy_of = energy_of            # optional node_id -> float
        self.neighbors: Dict[int, NeighborView] = {}
        self.announces_sent = 0
        self.reelections = 0
        #: the score this node last put on the air.  Elections compare
        #: announced-vs-announced: pitting a freshly computed local
        #: score (with an up-to-the-second degree) against neighbors'
        #: announced ones would make nearly every node a "local
        #: maximum" whenever degrees are still climbing.
        self.announced_score: Optional[int] = None
        self._last_head: Optional[int] = None
        self._announce_event = None
        #: False between stop() and start() — a crashed node keeps its
        #: stale self-belief, but it is not part of the hierarchy.
        self.active = False
        # current_head() runs on every forwarding decision; memoize it
        # briefly (invalidated by every announcement heard).
        self._head_cache: Optional[Tuple[float, int]] = None
        registry = current_registry()
        self._m_announces = registry.counter("hierarchy.announces")
        self._m_reelections = registry.counter("hierarchy.reelections")
        # The tiebreak decorrelates head placement from node numbering;
        # the salt lets campaigns re-randomize placement without
        # touching node ids.  Announced, never recomputed by receivers.
        self._tiebreak = splitmix64(
            node.node_id ^ splitmix64(int(getattr(params, "election_salt", 0)))
        ) & 0xFFFF

    #: quick announce rounds after start/reboot (at a quarter of the
    #: steady period) so scores and claims converge before the network
    #: has cycled through several interest refreshes.
    BOOTSTRAP_ROUNDS = 2

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        self._rounds = 0
        self.active = True
        delay = self.rng.uniform(0.0, self.params.announce_jitter)
        self._announce_event = self.node.sim.schedule(
            delay, self._announce_tick, name="hierarchy.announce"
        )

    def stop(self) -> None:
        self.active = False
        if self._announce_event is not None:
            self._announce_event.cancel()
            self._announce_event = None

    def restart(self) -> None:
        """Power-cycle semantics: neighbor tables are soft state."""
        self.stop()
        self.neighbors.clear()
        self._head_cache = None
        self._last_head = None
        self.announced_score = None
        self.start()

    # -- scoring and election ------------------------------------------

    def score(self) -> int:
        """This node's announced election score.

        Energy dominates (a depleted head is the worst head), then live
        degree (a well-connected head covers more members per
        announcement), then the stable tiebreak.
        """
        energy = 0.0
        if self.energy_of is not None:
            energy = float(self.energy_of(self.node.node_id))
        # Degree counts every neighbor ever heard, not just live ones:
        # a live-only count drops whenever an announcement is lost to a
        # collision, and any score wobble re-runs elections somewhere.
        # Ever-heard degree is monotone, so scores settle after the
        # first full announce round (cleared only by reboot).
        degree = len(self.neighbors)
        return (
            (int(energy * self.params.energy_weight) << 28)
            | (min(degree, 0xFFF) << 16)
            | self._tiebreak
        )

    def _live(self, now: float) -> Dict[int, NeighborView]:
        base = self.params.effective_head_timeout
        member = base * self.params.member_announce_factor
        return {
            nid: view
            for nid, view in self.neighbors.items()
            # Expect announcements at the cadence the sender's role
            # implies: heads announce fast, members slow.
            if now - view.heard_at
            <= (base if view.head_claim == nid else member)
        }

    def current_head(self) -> int:
        """The node this one currently follows (itself when head).

        Elections are *sticky*: an adopted head is followed for as long
        as it stays live and keeps claiming headship, and a node that
        claimed headship keeps it unless a live neighbor with a strictly
        higher announced score also claims it (then the weaker head
        resigns, merging adjacent clusters).  Scores — which wobble as
        observed degree climbs and announcements get lost — therefore
        only decide *elections*, never day-to-day allegiance; without
        stickiness every wobble is a re-election and every re-election
        costs control traffic.  Ties on score break toward the higher
        node id, which every node resolves identically from announced
        values alone.
        """
        now = self.node.sim.now
        cached = self._head_cache
        if cached is not None and cached[0] > now:
            return cached[1]
        live = self._live(now)
        head = self._elect(live)
        valid_until = now + min(1.0, self.params.announce_interval / 4.0)
        self._head_cache = (valid_until, head)
        return head

    def _elect(self, live: Dict[int, NeighborView]) -> int:
        my_id = self.node.node_id
        my_score = (
            self.announced_score
            if self.announced_score is not None
            else self.score()
        )
        mine = (my_score, my_id)
        claimed = [
            (view.score, nid)
            for nid, view in live.items()
            if view.head_claim == nid
        ]
        incumbent = self._last_head
        if incumbent == my_id:
            # Sitting head: resign only to a strictly stronger live
            # claimant (cluster merge), never to a score wobble.
            challenger = max(claimed, default=None)
            return challenger[1] if challenger and challenger > mine else my_id
        if incumbent is not None:
            view = live.get(incumbent)
            if view is not None and view.head_claim == incumbent:
                return incumbent  # alive and still claiming: stick
        # Election: local maximum claims headship, everyone else adopts
        # the strongest self-declared head in earshot (before any claims
        # arrive — cold start — the local maximum by announced score).
        best = max(
            ((view.score, nid) for nid, view in live.items()),
            default=None,
        )
        if best is None or mine >= best:
            return my_id  # isolated, or the local maximum
        return max(claimed)[1] if claimed else best[1]

    @property
    def is_head(self) -> bool:
        return self.current_head() == self.node.node_id

    # -- announcements -------------------------------------------------

    def _announce_tick(self) -> None:
        node = self.node
        now = node.sim.now
        self._head_cache = None
        self.announced_score = self.score()
        head = self.current_head()
        if self._last_head is not None and head != self._last_head:
            self.reelections += 1
            self._m_reelections.inc()
            node.trace.emit(
                now,
                "hierarchy.election",
                node=node.node_id,
                head=head,
                previous=self._last_head,
            )
            # Refresh only on *repair* — the old head stopped announcing
            # (crashed or moved away) and this node won the re-election.
            # Cold-start merges and adoptions change heads too, but the
            # old head is still alive then and its backbone still
            # stands; re-flooding on those would melt the channel.
            if (
                head == node.node_id
                and self.params.head_refresh
                and self._last_head != node.node_id
                and self._last_head not in self._live(now)
            ):
                self._refresh_interests(now)
        self._last_head = head
        attrs = (
            AttributeVector.builder()
            .actual(Key.CONTROL_KIND, CLUSTER_CONTROL_KIND)
            .actual(Key.CLUSTER_SCORE, self.announced_score)
            .actual(Key.CLUSTER_HEAD, head)
            .build()
        )
        message = make_control(
            attrs=attrs,
            origin=node.node_id,
            header_bytes=node.config.header_bytes,
        )
        node._transmit(message)
        self.announces_sent += 1
        self._m_announces.inc()
        self._rounds += 1
        interval = self.params.announce_interval
        if self._rounds <= self.BOOTSTRAP_ROUNDS:
            interval /= 4.0
        elif head != node.node_id:
            interval *= self.params.member_announce_factor
        period = interval + self.rng.uniform(
            0.0, self.params.announce_jitter
        )
        self._announce_event = node.sim.schedule(
            period, self._announce_tick, name="hierarchy.announce"
        )

    def _refresh_interests(self, now: float) -> None:
        """A freshly elected head re-floods the demanded interests it
        knows, repairing the backbone without waiting for sink refresh
        (this is what makes post-crash repair fast)."""
        node = self.node
        for entry in node.gradients.entries_with_demand(now):
            message = make_interest(
                attrs=entry.attrs,
                origin=node.node_id,
                header_bytes=node.config.header_bytes,
            )
            node._note_origin(message)
            node._run_pipeline(message)

    # -- reception (wired through the control filter) ------------------

    def on_announcement(self, message: Message) -> None:
        src = message.last_hop
        if src is None or src == self.node.node_id:
            return
        score = message.attrs.value_of(Key.CLUSTER_SCORE)
        head_claim = message.attrs.value_of(Key.CLUSTER_HEAD)
        if score is None or head_claim is None:
            return
        self.neighbors[src] = NeighborView(
            score=int(score),
            head_claim=int(head_claim),
            heard_at=self.node.sim.now,
        )
        self._head_cache = None


def install_control_filter(node, service: ClusterService):
    """Consume cluster announcements before any other processing.

    The filter's formal matches only messages carrying
    ``control_kind == "cluster"``, so data-plane traffic never enters
    the callback; announcements terminate here (strictly one hop).
    """
    attrs = (
        AttributeVector.builder()
        .eq(Key.CONTROL_KIND, CLUSTER_CONTROL_KIND)
        .build()
    )

    def callback(message, handle):
        service.on_announcement(message)

    return node.add_filter(
        attrs=attrs,
        priority=CONTROL_FILTER_PRIORITY,
        callback=callback,
        name="hierarchy-control",
    )
