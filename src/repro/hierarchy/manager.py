"""Install a propagation mode onto a built network.

The hierarchy layer is strictly additive: :func:`install_hierarchy`
walks an existing :class:`~repro.testbed.network.SensorNetwork`, hands
each node a per-node RNG stream (``hierarchy:<id>`` off the network's
seed sequence — the same labeled-stream discipline as the MAC and
diffusion layers), and attaches the policy the mode calls for.  Flat
mode attaches nothing at all, which is what keeps it bit-identical to
the classic stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.config import PROPAGATION_MODES
from repro.naming.keys import Key
from repro.sim.rng import make_rng

from repro.hierarchy.election import ClusterService, install_control_filter
from repro.hierarchy.hashing import RegionMap
from repro.hierarchy.policy import (
    ClusteredPolicy,
    ForwardPolicy,
    RendezvousPolicy,
)


@dataclass
class HierarchyParams:
    """Tunables for both hierarchical modes.

    Clustered:
        announce_interval/announce_jitter: cadence of the one-hop
            election announcements.  Announcements are the standing
            cost of clustering, so the interval should sit at or above
            the interest interval.
        head_timeout: seconds without an announcement before a neighbor
            (head or not) is presumed dead — the re-election latency
            knob.  ``None`` (default) derives ``2.5 x
            announce_interval + announce_jitter``: losing a single
            announcement to a collision must never age a live neighbor
            out, or elections churn and every churn re-floods.
        member_announce_factor: members announce this many times slower
            than heads once bootstrap is done.  Post-bootstrap scores
            are static, so member announcements only serve slow
            liveness; head announcements carry the claims everyone's
            allegiance hangs on and keep the fast failure-detection
            cadence.  Liveness horizons scale the same way: a neighbor
            claiming headship is expected at the fast cadence, anyone
            else at the slow one.
        cover_threshold: duplicate copies (beyond the first) a member
            must hear to cancel its deferred fallback rebroadcast.
        fallback_window: (low, high) seconds of deferral jitter.  Wide
            enough for head rebroadcasts to land first, short next to
            protocol timers.
        head_refresh: a freshly elected head re-floods the interests it
            knows are still demanded (fast post-crash repair).
        refresh_damping: seconds a node withholds re-flooding an
            interest whose attrs it already forwarded (the paper's
            interest aggregation).  ``None`` derives ``0.6 x
            gradient_timeout`` — late enough to halve refresh floods,
            early enough that downstream gradients never expire.  0
            disables.
        election_salt: folds into every node's score tiebreak,
            re-randomizing head placement without changing node ids.
        energy_weight: scales the energy term of the election score
            when an ``energy_of`` callable is supplied.

    Rendezvous:
        regions: the deployment bounding box is carved into
            ``regions x regions`` cells.
        rendezvous_key: the attribute key whose value is hashed to a
            region (default ``Key.TYPE``, the sensor-type tag).
        corridor: half-width in meters of the geographic forwarding
            band between a message's origin and its target region.
        region_salt: seeds the value->region hash.
    """

    announce_interval: float = 10.0
    announce_jitter: float = 2.0
    head_timeout: Optional[float] = None
    member_announce_factor: float = 4.0
    cover_threshold: int = 1
    fallback_window: Tuple[float, float] = (0.3, 0.9)
    head_refresh: bool = True
    refresh_damping: Optional[float] = None
    election_salt: int = 0
    energy_weight: float = 1.0
    regions: int = 4
    rendezvous_key: int = int(Key.TYPE)
    corridor: float = 30.0
    region_salt: int = 0

    @classmethod
    def from_dict(cls, raw: Optional[Dict[str, Any]]) -> "HierarchyParams":
        """Build from a plain (JSON-borne) dict, ignoring unknown keys
        so campaign param grids can carry extra entries."""
        raw = raw or {}
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in raw.items() if k in known}
        if "fallback_window" in kwargs:
            low, high = kwargs["fallback_window"]
            kwargs["fallback_window"] = (float(low), float(high))
        return cls(**kwargs)

    @property
    def effective_head_timeout(self) -> float:
        if self.head_timeout is not None:
            return self.head_timeout
        return 2.5 * self.announce_interval + self.announce_jitter


@dataclass
class HierarchyRuntime:
    """Handle over everything one install created (one per network)."""

    mode: str
    params: HierarchyParams
    services: Dict[int, ClusterService] = field(default_factory=dict)
    policies: Dict[int, ForwardPolicy] = field(default_factory=dict)
    region_map: Optional[RegionMap] = None

    def head_nodes(self) -> List[int]:
        """Nodes currently claiming cluster headship (clustered mode).

        Stopped services (crashed nodes) are excluded — a dead node's
        stale self-belief is not part of the hierarchy.
        """
        return sorted(
            nid
            for nid, service in self.services.items()
            if service.active and service.is_head
        )

    def head_of(self, node_id: int) -> Optional[int]:
        service = self.services.get(node_id)
        return None if service is None else service.current_head()

    def suppressed(self) -> Dict[str, int]:
        totals = {"interest": 0, "exploratory": 0}
        for policy in self.policies.values():
            for kind, count in getattr(policy, "suppressed", {}).items():
                totals[kind] += count
        return totals

    def counters(self) -> Dict[str, int]:
        """Merge-friendly (ints sum across shards) summary counters."""
        suppressed = self.suppressed()
        return {
            "heads": len(self.head_nodes()),
            "announces": sum(
                s.announces_sent for s in self.services.values()
            ),
            "reelections": sum(
                s.reelections for s in self.services.values()
            ),
            "suppressed_interests": suppressed["interest"],
            "suppressed_exploratory": suppressed["exploratory"],
            "fallbacks_fired": sum(
                getattr(p, "fallbacks_fired", 0)
                for p in self.policies.values()
            ),
        }


def attach_node(
    node,
    mode: str,
    rng,
    params: Optional[HierarchyParams] = None,
    topology=None,
    region_map: Optional[RegionMap] = None,
    energy_of: Optional[Callable[[int], float]] = None,
) -> Tuple[Optional[ForwardPolicy], Optional[ClusterService]]:
    """Wire one DiffusionNode into a propagation mode.

    The building block :func:`install_hierarchy` loops over; exposed so
    unit tests (and IdealNetwork rigs) can attach nodes by hand.
    """
    if mode not in PROPAGATION_MODES:
        raise ValueError(
            f"propagation mode must be one of {PROPAGATION_MODES}, got {mode!r}"
        )
    if mode == "flat":
        return None, None
    params = params or HierarchyParams()
    if mode == "clustered":
        service = ClusterService(node, rng, params, energy_of=energy_of)
        install_control_filter(node, service)
        policy = ClusteredPolicy(node, service, rng, params)
        node.forward_policy = policy
        service.start()
        return policy, service
    # rendezvous
    if topology is None:
        raise ValueError("rendezvous mode needs the topology")
    if region_map is None:
        region_map = RegionMap.from_topology(
            topology, params.regions, params.region_salt
        )
    policy = RendezvousPolicy(node, topology, region_map, params)
    node.forward_policy = policy
    return policy, None


def install_hierarchy(
    network,
    mode: Optional[str] = None,
    params: Optional[Dict[str, Any]] = None,
    energy_of: Optional[Callable[[int], float]] = None,
    seed: Optional[int] = None,
) -> HierarchyRuntime:
    """Attach a propagation mode to every node of a ``SensorNetwork``.

    ``mode`` defaults to ``network.config.propagation_mode``.  Works on
    subset builds (sharded scenarios): only owned nodes get services,
    so per-shard counters merge by summation.  ``seed`` only matters
    for networks without a seed sequence (IdealNetwork rigs).
    """
    if mode is None:
        mode = network.config.propagation_mode
    hp = HierarchyParams.from_dict(params)
    runtime = HierarchyRuntime(mode=mode, params=hp)
    if mode == "flat":
        return runtime
    region_map = None
    if mode == "rendezvous":
        region_map = RegionMap.from_topology(
            network.topology, hp.regions, hp.region_salt
        )
        runtime.region_map = region_map
    seeds = getattr(network, "seeds", None)
    for node_id in network.node_ids():
        node = network.node(node_id)
        if seeds is not None:
            rng = seeds.stream(f"hierarchy:{node_id}")
        else:
            rng = make_rng(seed if seed is not None else 1, f"hierarchy:{node_id}")
        policy, service = attach_node(
            node,
            mode,
            rng,
            params=hp,
            topology=getattr(network, "topology", None),
            region_map=region_map,
            energy_of=energy_of,
        )
        if policy is not None:
            runtime.policies[node_id] = policy
        if service is not None:
            runtime.services[node_id] = service
    return runtime
