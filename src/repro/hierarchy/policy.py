"""Forwarding policies: how interests and exploratory data spread.

:class:`~repro.core.node.DiffusionNode` consults an optional
``forward_policy`` at every rebroadcast decision.  ``None`` (the
default) is flat mode — the paper's network-wide flood, bit-identical
to the classic stack.  The two policies here implement the
hierarchical modes:

* :class:`ClusteredPolicy` — elected cluster heads rebroadcast
  immediately; members defer a jittered fallback copy and cancel it
  once enough duplicate copies prove the neighborhood is covered
  (counter-based broadcast suppression).  Coverage is preserved —
  a member whose fallback timer fires before anyone else covers its
  neighborhood still forwards — but the bulk of redundant rebroadcasts
  in dense deployments is elided.
* :class:`RendezvousPolicy` — the interest's rendezvous attribute is
  hashed to a grid region; copies travel a geographic corridor toward
  that region and flood only inside it.  Exploratory data steers the
  same way, so supply and demand meet at O(region) nodes.  Positive
  reinforcement then carves flat unicast paths exactly as in the
  paper — the hierarchy shapes discovery, never delivery.

All deferral jitter draws come from the per-node RNG stream handed in
by the installer, so sharded runs stay bit-identical to the oracle.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.messages import BROADCAST, Message
from repro.sim.metrics import CLASS_LABEL, current_registry

from repro.hierarchy.hashing import RegionMap, point_segment_distance


class ForwardPolicy:
    """Flat-mode defaults: every hook reproduces the legacy decision.

    Subclasses override the hooks they care about.  The core calls:

    * :meth:`forward_interest` after processing a first-copy interest —
      return True to rebroadcast now (the flat behavior);
    * :meth:`forward_exploratory` after processing matched exploratory
      data, with the legacy ``remote_demand`` verdict;
    * :meth:`forward_unmatched_exploratory` before dropping exploratory
      data no local interest entry matches;
    * ``note_*_duplicate`` for every cache-suppressed duplicate copy;
    * :meth:`shutdown` / :meth:`restart` on node crash / reboot.
    """

    #: when True, a received positive reinforcement refreshes a plain
    #: gradient toward the reinforcing neighbor (rendezvous sources
    #: never hear interests, so reinforcement is their demand signal).
    reinforcement_implies_demand = False

    def forward_interest(self, node, message: Message) -> bool:
        return True

    def note_interest_duplicate(self, node, message: Message) -> None:
        pass

    def forward_exploratory(
        self, node, message: Message, remote_demand: bool
    ) -> bool:
        return remote_demand

    def note_exploratory_duplicate(self, node, message: Message) -> None:
        pass

    def forward_unmatched_exploratory(self, node, message: Message) -> bool:
        return False

    def shutdown(self) -> None:
        pass

    def restart(self) -> None:
        pass


class ClusteredPolicy(ForwardPolicy):
    """Cluster-head backbone with counter-based member fallback."""

    def __init__(self, node, service, rng, params) -> None:
        self.node = node
        self.service = service
        self.rng = rng
        self.params = params
        # (kind, message.unique_id) -> [copies_heard, pending_event]
        self._pending: Dict[Tuple[str, Tuple[int, int]], List[Any]] = {}
        # attrs digest -> time this node last rebroadcast a similar
        # interest (the paper's interest aggregation: periodic refreshes
        # of an identical interest need not all be re-flooded, as long
        # as one goes out well inside the downstream gradient timeout).
        self._recent_forward: Dict[Any, float] = {}
        damping = params.refresh_damping
        if damping is None:
            damping = 0.6 * node.config.gradient_timeout
        self.refresh_damping = float(damping)
        self.suppressed = {"interest": 0, "exploratory": 0}
        self.fallbacks_fired = 0
        registry = current_registry()
        self._m_suppressed = {
            kind: registry.counter(
                "hierarchy.suppressed", **{CLASS_LABEL: kind}
            )
            for kind in ("interest", "exploratory")
        }
        self._m_fallbacks = registry.counter("hierarchy.fallbacks_fired")

    # -- deferral machinery --------------------------------------------

    def _defer(self, kind: str, message: Message, digest=None) -> bool:
        """Schedule a jittered fallback rebroadcast; returns False so the
        core does not transmit now."""
        key = (kind, message.unique_id)
        if key in self._pending:  # pragma: no cover - dedup precedes us
            return False
        low, high = self.params.fallback_window
        copy = message.forwarded_copy(BROADCAST)
        event = self.node.sim.schedule(
            self.rng.uniform(low, high),
            self._fire,
            key,
            copy,
            digest,
            name="hierarchy.fallback",
        )
        self._pending[key] = [1, event]
        return False

    def _fire(self, key, copy: Message, digest=None) -> None:
        # Nobody covered this neighborhood in time: forward after all.
        self._pending.pop(key, None)
        self.fallbacks_fired += 1
        self._m_fallbacks.inc()
        if digest is not None:
            self._recent_forward[digest] = self.node.sim.now
        self.node._transmit(copy)

    def _note_copy(self, kind: str, message: Message) -> None:
        key = (kind, message.unique_id)
        entry = self._pending.get(key)
        if entry is None:
            return
        entry[0] += 1
        if entry[0] > self.params.cover_threshold:
            entry[1].cancel()
            del self._pending[key]
            self.suppressed[kind] += 1
            self._m_suppressed[kind].inc()

    # -- hooks ---------------------------------------------------------

    def forward_interest(self, node, message: Message) -> bool:
        if message.last_hop is None:
            return True  # locally originated: always leaves the node
        digest = message.attrs.digest()
        now = node.sim.now
        if self.refresh_damping > 0:
            last = self._recent_forward.get(digest)
            if last is not None and now - last < self.refresh_damping:
                # A similar interest left this node recently; downstream
                # gradients are still far from timing out, so this
                # refresh need not be re-flooded.
                self.suppressed["interest"] += 1
                self._m_suppressed["interest"].inc()
                return False
        if self.service.is_head:
            self._recent_forward[digest] = now
            return True  # the backbone relays promptly, like flat mode
        return self._defer("interest", message, digest)

    def note_interest_duplicate(self, node, message: Message) -> None:
        self._note_copy("interest", message)

    def forward_exploratory(
        self, node, message: Message, remote_demand: bool
    ) -> bool:
        # Exploratory data keeps the flat demand-gated rule: the
        # interest backbone already confines *where* demand gradients
        # exist, so the exploratory flood is narrowed for free, and
        # thinning it further (defer-and-cancel) measurably cuts the
        # paths a sink can reinforce — it hurts delivery without
        # touching control overhead.
        return remote_demand

    def note_exploratory_duplicate(self, node, message: Message) -> None:
        self._note_copy("exploratory", message)

    def shutdown(self) -> None:
        for _, event in self._pending.values():
            event.cancel()
        self._pending.clear()
        self.service.stop()

    def restart(self) -> None:
        self._pending.clear()
        self._recent_forward.clear()
        self.service.restart()


class RendezvousPolicy(ForwardPolicy):
    """Hash-to-region dissemination with geographic corridors."""

    reinforcement_implies_demand = True

    def __init__(self, node, topology, region_map: RegionMap, params) -> None:
        self.node = node
        self.topology = topology
        self.region_map = region_map
        self.params = params
        self.suppressed = {"interest": 0, "exploratory": 0}
        registry = current_registry()
        self._m_suppressed = {
            kind: registry.counter(
                "hierarchy.suppressed", **{CLASS_LABEL: kind}
            )
            for kind in ("interest", "exploratory")
        }

    def _rendezvous_value(self, message: Message) -> Optional[Any]:
        # Interests carry the key as a formal (EQ), data as an actual;
        # find() accepts either.
        attr = message.attrs.find(self.params.rendezvous_key)
        return None if attr is None else attr.value

    def _should_forward(self, message: Message) -> bool:
        value = self._rendezvous_value(message)
        if value is None:
            return True  # no rendezvous key: degenerate to flooding
        if message.last_hop is None:
            return True  # locally originated: always leaves the node
        region = self.region_map.region_of_value(value)
        mine = self.topology.position(self.node.node_id)
        if self.region_map.contains(region, mine.x, mine.y):
            return True  # inside the region: flood (dedup bounds it)
        cx, cy = self.region_map.center(region)
        last = self.topology.position(message.last_hop)
        my_d = (mine.x - cx) ** 2 + (mine.y - cy) ** 2
        last_d = (last.x - cx) ** 2 + (last.y - cy) ** 2
        if my_d >= last_d:
            return False  # no geographic progress toward the region
        # Stay inside the corridor around the origin->region line, so
        # the monotone funnel cannot balloon into a half-network flood.
        origin = self.topology.position(message.origin)
        return (
            point_segment_distance(mine.x, mine.y, origin.x, origin.y, cx, cy)
            <= self.params.corridor
        )

    def _decide(self, kind: str, message: Message) -> bool:
        verdict = self._should_forward(message)
        if not verdict:
            self.suppressed[kind] += 1
            self._m_suppressed[kind].inc()
        return verdict

    def forward_interest(self, node, message: Message) -> bool:
        return self._decide("interest", message)

    def forward_exploratory(
        self, node, message: Message, remote_demand: bool
    ) -> bool:
        # Gradient trails (demand) extend the rendezvous region back
        # toward each sink; outside both, the corridor rule applies.
        return remote_demand or self._decide("exploratory", message)

    def forward_unmatched_exploratory(self, node, message: Message) -> bool:
        return self._decide("exploratory", message)
