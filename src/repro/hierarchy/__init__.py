"""Hierarchical interest propagation (clustered and rendezvous modes).

Flat directed diffusion floods every interest to every node, so control
traffic grows with N even when tasks are local.  This package bounds
that cost two ways while leaving the paper's data path untouched:

* **clustered** — a seed-deterministic cluster-head election
  (energy/degree-scored one-hop announcements); heads relay interests
  and exploratory data promptly while members defer-and-cancel under
  counter-based suppression.  Crashed heads age out and neighborhoods
  re-elect automatically.
* **rendezvous** — interest key-attributes hash (stable splitmix64) to
  grid regions; interests and exploratory data travel geographic
  corridors and meet at O(region) nodes.

Positive reinforcement still carves flat unicast paths exactly as in
the paper: the hierarchy shapes *discovery*, never *delivery*.  With no
policy installed the core is bit-identical to the classic stack.
"""

from repro.hierarchy.election import (
    CLUSTER_CONTROL_KIND,
    CONTROL_FILTER_PRIORITY,
    ClusterService,
    install_control_filter,
)
from repro.hierarchy.hashing import (
    RegionMap,
    point_segment_distance,
    splitmix64,
    stable_hash64,
)
from repro.hierarchy.manager import (
    HierarchyParams,
    HierarchyRuntime,
    attach_node,
    install_hierarchy,
)
from repro.hierarchy.policy import (
    ClusteredPolicy,
    ForwardPolicy,
    RendezvousPolicy,
)

__all__ = [
    "CLUSTER_CONTROL_KIND",
    "CONTROL_FILTER_PRIORITY",
    "ClusterService",
    "ClusteredPolicy",
    "ForwardPolicy",
    "HierarchyParams",
    "HierarchyRuntime",
    "RegionMap",
    "RendezvousPolicy",
    "attach_node",
    "install_control_filter",
    "install_hierarchy",
    "point_segment_distance",
    "splitmix64",
    "stable_hash64",
]
