"""Stable hashing and region geometry for rendezvous propagation.

Rendezvous mode must map an attribute *value* to the same grid region
on every node and in every worker process.  Python's builtin ``hash``
is salted per process for strings, so the fold here goes through a
fixed byte encoding and the same splitmix64 finalizer the radio layer
uses for hashed loss draws (:mod:`repro.radio.channel`): deterministic,
seedable, and cheap.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Tuple

MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def splitmix64(x: int) -> int:
    """One round of the splitmix64 finalizer (same constants as the
    hashed-loss draw in the radio layer)."""
    x = (x + _GOLDEN) & MASK64
    z = x
    z = ((z ^ (z >> 30)) * _MIX1) & MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & MASK64
    return (z ^ (z >> 31)) & MASK64


def _encode(value: Any) -> bytes:
    """Fixed, process-independent byte encoding of an attribute value.

    The leading type tag keeps ``1`` and ``"1"`` from colliding."""
    if isinstance(value, bool):  # before int: bool is an int subtype
        return b"b\x01" if value else b"b\x00"
    if isinstance(value, int):
        if value.bit_length() > 120:
            return b"I" + str(value).encode("ascii")
        return b"i" + value.to_bytes(16, "little", signed=True)
    if isinstance(value, float):
        return b"f" + struct.pack("<d", value)
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    if isinstance(value, (bytes, bytearray)):
        return b"y" + bytes(value)
    raise TypeError(f"cannot hash rendezvous value of type {type(value)!r}")


def stable_hash64(value: Any, seed: int = 0) -> int:
    """Process-independent 64-bit hash of an attribute value.

    Folds the encoded value through splitmix64 eight bytes at a time.
    Unlike ``hash(str)`` this never varies with ``PYTHONHASHSEED``, so
    every shard worker agrees on where a rendezvous key lives.
    """
    h = splitmix64(seed & MASK64)
    data = _encode(value)
    for start in range(0, len(data), 8):
        chunk = data[start:start + 8]
        h = splitmix64(h ^ int.from_bytes(chunk, "little"))
    return splitmix64(h ^ len(data))


class RegionMap:
    """Hash attribute values onto a ``regions x regions`` grid laid over
    the deployment's bounding box.

    All nodes share one map (geometry is global knowledge, like the
    topology itself), so the mapping is consistent network-wide: an
    interest for ``type=vibration`` and the exploratory data answering
    it both steer toward the same region and meet at O(region) nodes
    instead of O(network).
    """

    def __init__(
        self,
        x_min: float,
        y_min: float,
        x_max: float,
        y_max: float,
        regions: int = 4,
        salt: int = 0,
    ) -> None:
        if regions < 1:
            raise ValueError("regions must be >= 1")
        self.regions = regions
        self.salt = salt
        self.x_min = x_min
        self.y_min = y_min
        # Degenerate extents (single node, collinear deployments) still
        # need a well-defined cell width.
        self.width = max(x_max - x_min, 1e-9)
        self.height = max(y_max - y_min, 1e-9)
        self._value_memo: Dict[Any, int] = {}

    @classmethod
    def from_topology(
        cls, topology, regions: int = 4, salt: int = 0
    ) -> "RegionMap":
        xs: List[float] = []
        ys: List[float] = []
        for node_id in topology.node_ids():
            pos = topology.position(node_id)
            xs.append(pos.x)
            ys.append(pos.y)
        if not xs:
            raise ValueError("cannot build a RegionMap over an empty topology")
        return cls(min(xs), min(ys), max(xs), max(ys), regions, salt)

    def region_of_value(self, value: Any) -> int:
        """The region index an attribute value rendezvouses in."""
        region = self._value_memo.get(value)
        if region is None:
            region = stable_hash64(value, seed=self.salt) % (
                self.regions * self.regions
            )
            self._value_memo[value] = region
        return region

    def region_of_point(self, x: float, y: float) -> int:
        rx = min(int((x - self.x_min) / self.width * self.regions), self.regions - 1)
        ry = min(int((y - self.y_min) / self.height * self.regions), self.regions - 1)
        return max(ry, 0) * self.regions + max(rx, 0)

    def contains(self, region: int, x: float, y: float) -> bool:
        return self.region_of_point(x, y) == region

    def center(self, region: int) -> Tuple[float, float]:
        rx = region % self.regions
        ry = region // self.regions
        return (
            self.x_min + (rx + 0.5) * self.width / self.regions,
            self.y_min + (ry + 0.5) * self.height / self.regions,
        )


def point_segment_distance(
    px: float, py: float, ax: float, ay: float, bx: float, by: float
) -> float:
    """Distance from point P to segment A-B (the forwarding corridor)."""
    dx = bx - ax
    dy = by - ay
    seg_sq = dx * dx + dy * dy
    if seg_sq <= 0.0:
        return ((px - ax) ** 2 + (py - ay) ** 2) ** 0.5
    t = ((px - ax) * dx + (py - ay) * dy) / seg_sq
    t = min(1.0, max(0.0, t))
    cx = ax + t * dx
    cy = ay + t * dy
    return ((px - cx) ** 2 + (py - cy) ** 2) ** 0.5
