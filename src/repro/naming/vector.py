"""AttributeVector: an ordered collection of attributes with helpers.

Mirrors the ``NRAttrVec`` of the C++ API (paper Figure 4) plus the
conveniences an application actually needs: lookup by key, actual-value
extraction, a stable digest for the duplicate cache, and a builder DSL
so examples read close to the paper's notation::

    interest = (AttributeVector.builder()
        .eq(Key.TYPE, "four-legged-animal-search")
        .actual(Key.INTERVAL, 20)
        .ge(Key.X_COORD, -100).le(Key.X_COORD, 200)
        .build())
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.naming.attribute import Attribute, Operator, Scalar, ValueType
from repro.naming.engine import MatchProfile
from repro.naming.matching import (
    MatchStats,
    one_way_match,
    one_way_match_segregated,
    two_way_match,
)


def _coerce_type(value: Scalar) -> ValueType:
    if isinstance(value, bool):
        raise TypeError("bool is not a valid attribute value")
    if isinstance(value, int):
        return ValueType.INT32
    if isinstance(value, float):
        return ValueType.FLOAT64
    if isinstance(value, str):
        return ValueType.STRING
    if isinstance(value, (bytes, bytearray)):
        return ValueType.BLOB
    raise TypeError(f"cannot infer attribute type for {value!r}")


class AttributeVector:
    """An immutable, ordered list of :class:`Attribute`."""

    __slots__ = ("_attrs", "_digest", "_profile")

    def __init__(self, attrs: Iterable[Attribute] = ()) -> None:
        object.__setattr__(self, "_attrs", tuple(attrs))
        object.__setattr__(self, "_digest", None)
        object.__setattr__(self, "_profile", None)
        for attr in self._attrs:
            if not isinstance(attr, Attribute):
                raise TypeError(f"expected Attribute, got {attr!r}")

    def __setattr__(self, name, value):  # noqa: ANN001
        raise AttributeError("AttributeVector is immutable")

    def __reduce__(self):
        # Immutability breaks the default slot-state pickling; rebuild
        # through the constructor (memoized digest/profile re-derive).
        return (self.__class__, (self._attrs,))

    # -- sequence protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attrs)

    def __len__(self) -> int:
        return len(self._attrs)

    def __getitem__(self, index: int) -> Attribute:
        return self._attrs[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributeVector):
            return NotImplemented
        return self._attrs == other._attrs

    def __hash__(self) -> int:
        return hash(self._attrs)

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self._attrs)
        return f"AttributeVector([{inner}])"

    # -- lookup ---------------------------------------------------------------

    def find(self, key: int, op: Optional[Operator] = None) -> Optional[Attribute]:
        """First attribute with ``key`` (and ``op``, when given)."""
        for attr in self._attrs:
            if attr.key == key and (op is None or attr.op == op):
                return attr
        return None

    def find_all(self, key: int) -> List[Attribute]:
        return [attr for attr in self._attrs if attr.key == key]

    def value_of(self, key: int, default: Optional[Scalar] = None) -> Optional[Scalar]:
        """Value of the first *actual* with ``key``."""
        for attr in self._attrs:
            if attr.key == key and attr.is_actual:
                return attr.value
        return default

    def has_actual(self, key: int) -> bool:
        return any(attr.key == key and attr.is_actual for attr in self._attrs)

    # -- algebra ----------------------------------------------------------------

    def with_attribute(self, attr: Attribute) -> "AttributeVector":
        return AttributeVector(self._attrs + (attr,))

    def without_key(self, key: int) -> "AttributeVector":
        return AttributeVector(a for a in self._attrs if a.key != key)

    def replace_actual(self, key: int, value: Scalar) -> "AttributeVector":
        """Copy with the first actual for ``key`` re-bound to ``value``."""
        out: List[Attribute] = []
        replaced = False
        for attr in self._attrs:
            if not replaced and attr.key == key and attr.is_actual:
                out.append(Attribute(key, attr.type, Operator.IS, value))
                replaced = True
            else:
                out.append(attr)
        if not replaced:
            raise KeyError(f"no actual with key {key} to replace")
        return AttributeVector(out)

    # -- matching ----------------------------------------------------------------

    def match_profile(self) -> MatchProfile:
        """Cached matching precomputation (segregated formals/actuals
        and key-sets) — safe because the vector is immutable.  The fast
        matchers in :mod:`repro.naming.engine` use this so the key index
        is built once per vector, not once per match."""
        cached = object.__getattribute__(self, "_profile")
        if cached is None:
            cached = MatchProfile(self._attrs)
            object.__setattr__(self, "_profile", cached)
        return cached

    def matches(self, other: "AttributeVector", stats: Optional[MatchStats] = None) -> bool:
        """Complete (two-way) match against ``other``."""
        return two_way_match(self._attrs, other._attrs, stats)

    def one_way_matches(
        self,
        other: "AttributeVector",
        stats: Optional[MatchStats] = None,
        segregated: bool = False,
    ) -> bool:
        """One-way match: do ``other``'s actuals satisfy our formals?"""
        match = one_way_match_segregated if segregated else one_way_match
        return match(self._attrs, other._attrs, stats)

    # -- wire helpers -------------------------------------------------------------

    def wire_size(self) -> int:
        """Total encoded size of the attribute list in bytes."""
        return sum(attr.wire_size() for attr in self._attrs)

    def digest(self) -> bytes:
        """Order-insensitive hash for exact-duplicate detection.

        The diffusion core is "primarily interested in an exact match",
        so hashes of attributes can be compared rather than complete data
        (Section 3.1).  Sorting makes the digest stable under the
        attribute reordering the paper's experiments randomize.
        """
        cached = object.__getattribute__(self, "_digest")
        if cached is not None:
            return cached
        hasher = hashlib.sha1()
        for attr in sorted(
            self._attrs, key=lambda a: (a.key, int(a.op), int(a.type), repr(a.value))
        ):
            hasher.update(
                f"{attr.key}|{int(attr.op)}|{int(attr.type)}|{attr.value!r}".encode()
            )
        digest = hasher.digest()
        object.__setattr__(self, "_digest", digest)
        return digest

    # -- construction -------------------------------------------------------------

    @classmethod
    def of(cls, *pairs: Union[Attribute, Tuple[int, Operator, Scalar]]) -> "AttributeVector":
        """Build from Attribute objects or ``(key, op, value)`` triples."""
        attrs: List[Attribute] = []
        for item in pairs:
            if isinstance(item, Attribute):
                attrs.append(item)
            else:
                key, op, value = item
                attrs.append(Attribute(key, _coerce_type(value), op, value))
        return cls(attrs)

    @classmethod
    def builder(cls) -> "AttributeVectorBuilder":
        return AttributeVectorBuilder()


class AttributeVectorBuilder:
    """Fluent construction of attribute vectors."""

    def __init__(self) -> None:
        self._attrs: List[Attribute] = []

    def add(self, key: int, op: Operator, value: Scalar) -> "AttributeVectorBuilder":
        self._attrs.append(Attribute(key, _coerce_type(value), op, value))
        return self

    def actual(self, key: int, value: Scalar) -> "AttributeVectorBuilder":
        return self.add(key, Operator.IS, value)

    def eq(self, key: int, value: Scalar) -> "AttributeVectorBuilder":
        return self.add(key, Operator.EQ, value)

    def ne(self, key: int, value: Scalar) -> "AttributeVectorBuilder":
        return self.add(key, Operator.NE, value)

    def gt(self, key: int, value: Scalar) -> "AttributeVectorBuilder":
        return self.add(key, Operator.GT, value)

    def ge(self, key: int, value: Scalar) -> "AttributeVectorBuilder":
        return self.add(key, Operator.GE, value)

    def lt(self, key: int, value: Scalar) -> "AttributeVectorBuilder":
        return self.add(key, Operator.LT, value)

    def le(self, key: int, value: Scalar) -> "AttributeVectorBuilder":
        return self.add(key, Operator.LE, value)

    def eq_any(self, key: int) -> "AttributeVectorBuilder":
        self._attrs.append(Attribute.int32(key, Operator.EQ_ANY, 0))
        return self

    def extend(self, attrs: Iterable[Attribute]) -> "AttributeVectorBuilder":
        self._attrs.extend(attrs)
        return self

    def build(self) -> AttributeVector:
        return AttributeVector(self._attrs)
