"""Wire encoding of attribute lists.

Diffusion messages cross a 13 kb/s radio in 27-byte fragments, so every
byte matters; this codec defines the byte-exact format the traffic
accounting in the Figure 8 experiment charges for.

Layout per attribute (little-endian):

    key:   uint32
    type:  uint8   (ValueType)
    op:    uint8   (Operator)
    len:   uint16  payload length in bytes
    payload: len bytes

A list is a uint16 count followed by that many attributes.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence, Tuple

from repro.naming.attribute import Attribute, AttributeValueError, Operator, ValueType

_HEADER = struct.Struct("<IBBH")
_COUNT = struct.Struct("<H")


class WireFormatError(ValueError):
    """Raised on malformed attribute encodings."""


def _encode_payload(attr: Attribute) -> bytes:
    if attr.type is ValueType.INT32:
        return struct.pack("<i", attr.value)
    if attr.type is ValueType.FLOAT32:
        return struct.pack("<f", attr.value)
    if attr.type is ValueType.FLOAT64:
        return struct.pack("<d", attr.value)
    if attr.type is ValueType.STRING:
        return attr.value.encode("utf-8")
    return attr.value  # BLOB


def _decode_payload(vtype: ValueType, payload: bytes):
    if vtype is ValueType.INT32:
        if len(payload) != 4:
            raise WireFormatError("INT32 payload must be 4 bytes")
        return struct.unpack("<i", payload)[0]
    if vtype is ValueType.FLOAT32:
        if len(payload) != 4:
            raise WireFormatError("FLOAT32 payload must be 4 bytes")
        return struct.unpack("<f", payload)[0]
    if vtype is ValueType.FLOAT64:
        if len(payload) != 8:
            raise WireFormatError("FLOAT64 payload must be 8 bytes")
        return struct.unpack("<d", payload)[0]
    if vtype is ValueType.STRING:
        try:
            return payload.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"invalid UTF-8 string payload: {exc}") from exc
    return payload


def encode_attributes(attrs: Sequence[Attribute]) -> bytes:
    """Serialize an attribute list to its wire representation."""
    if len(attrs) >= 2**16:
        raise WireFormatError("too many attributes for uint16 count")
    chunks: List[bytes] = [_COUNT.pack(len(attrs))]
    for attr in attrs:
        payload = _encode_payload(attr)
        if len(payload) >= 2**16:
            raise WireFormatError("attribute payload too large")
        chunks.append(_HEADER.pack(attr.key, int(attr.type), int(attr.op), len(payload)))
        chunks.append(payload)
    return b"".join(chunks)


def decode_attributes(data: bytes) -> Tuple[List[Attribute], int]:
    """Parse an attribute list; returns (attributes, bytes consumed)."""
    if len(data) < _COUNT.size:
        raise WireFormatError("truncated attribute list count")
    (count,) = _COUNT.unpack_from(data, 0)
    offset = _COUNT.size
    attrs: List[Attribute] = []
    for _ in range(count):
        if len(data) < offset + _HEADER.size:
            raise WireFormatError("truncated attribute header")
        key, vtype_raw, op_raw, length = _HEADER.unpack_from(data, offset)
        offset += _HEADER.size
        if len(data) < offset + length:
            raise WireFormatError("truncated attribute payload")
        try:
            vtype = ValueType(vtype_raw)
            op = Operator(op_raw)
        except ValueError as exc:
            raise WireFormatError(str(exc)) from exc
        payload = data[offset : offset + length]
        offset += length
        try:
            attrs.append(Attribute(key, vtype, op, _decode_payload(vtype, payload)))
        except AttributeValueError as exc:
            # e.g. a float payload decoding to NaN: reject the message.
            raise WireFormatError(str(exc)) from exc
    return attrs, offset


def encoded_size(attrs: Iterable[Attribute]) -> int:
    """Encoded size without building the bytes (count + per-attr sizes)."""
    return _COUNT.size + sum(attr.wire_size() for attr in attrs)
