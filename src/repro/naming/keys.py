"""Attribute key registry.

The paper assumes keys are "simple 32-bit numbers" assigned out-of-band
by a central authority, like Internet protocol numbers.  This module is
that authority: a registry of well-known keys plus room for
application-defined ones.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator


class Key(enum.IntEnum):
    """Well-known attribute keys shared by all nodes at design time."""

    # Core diffusion attributes.
    CLASS = 1          # interest / data / ...
    SCOPE = 2          # node-local / global
    TASK = 3           # task name, e.g. "detectAnimal"
    TYPE = 4           # sensor/data type tag
    TARGET = 5         # e.g. "4-leg"
    INSTANCE = 6       # e.g. "elephant"
    # Geography (external frame of reference).
    LATITUDE = 10
    LONGITUDE = 11
    X_COORD = 12
    Y_COORD = 13
    # Task parameters.
    INTERVAL = 20      # desired data interval, milliseconds
    DURATION = 21      # task lifetime, seconds
    # Data annotations.
    INTENSITY = 30
    CONFIDENCE = 31
    TIMESTAMP = 32
    SEQUENCE = 33
    PAYLOAD = 34
    # Nested-query plumbing (Section 5.2).
    TRIGGER_TYPE = 40
    TRIGGER_STATE = 41
    # Hierarchy control plane (repro.hierarchy).
    CONTROL_KIND = 50      # which control protocol a CONTROL message serves
    CLUSTER_SCORE = 51     # announcer's election score
    CLUSTER_HEAD = 52      # announcer's current head claim
    # Disruption-tolerant custody plane (repro.dtn).
    CUSTODIAN = 53         # node currently holding custody of a block

    FIRST_USER_KEY = 1000


class ClassValue(enum.IntEnum):
    """Values of the implicit CLASS attribute ("class IS interest")."""

    INTEREST = 1
    DATA = 2
    EXPLORATORY = 3       # exploratory data (low-rate, flooded)
    REINFORCEMENT = 4     # positive reinforcement
    NEGATIVE_REINFORCEMENT = 5
    CONTROL = 6


class KeyRegistry:
    """Assigns and resolves attribute keys.

    Well-known :class:`Key` members are pre-registered; applications call
    :meth:`register` to claim keys at or above ``Key.FIRST_USER_KEY``.
    """

    def __init__(self) -> None:
        self._names: Dict[int, str] = {int(k): k.name.lower() for k in Key}
        self._next_user_key = int(Key.FIRST_USER_KEY)

    def register(self, name: str) -> int:
        """Allocate a fresh user key for ``name`` and return it."""
        key = self._next_user_key
        self._next_user_key += 1
        self._names[key] = name
        return key

    def name(self, key: int) -> str:
        return self._names.get(key, f"key{key}")

    def __contains__(self, key: int) -> bool:
        return key in self._names

    def __iter__(self) -> Iterator[int]:
        return iter(self._names)


STANDARD_KEYS = KeyRegistry()


def key_name(key: int) -> str:
    """Human-readable name for a key, for reprs and traces."""
    return STANDARD_KEYS.name(key)
