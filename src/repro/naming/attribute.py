"""Attribute-value-operation tuples (paper Section 3.2).

An attribute is identified by a unique 32-bit key "drawn from a central
authority" (see :mod:`repro.naming.keys`), carries a typed value, and an
operation.  ``IS`` marks an *actual* (a bound literal); every other
operator marks a *formal* (an unbound comparison that must be satisfied
by an actual on the other side of the match).
"""

from __future__ import annotations

import enum
import math
import struct
from typing import Any, Union


class AttributeValueError(ValueError):
    """Raised when a value does not fit the declared attribute type."""


class Operator(enum.IntEnum):
    """Match operations, paper Section 3.2.

    ``IS`` specifies an actual (literal) value; the binary comparisons and
    ``EQ_ANY`` specify formal parameters.  The numeric values follow the
    SCADDS diffusion 3.x header ordering.
    """

    IS = 0
    EQ = 1
    NE = 2
    GT = 3
    GE = 4
    LT = 5
    LE = 6
    EQ_ANY = 7

    @property
    def is_actual(self) -> bool:
        return self is Operator.IS

    @property
    def is_formal(self) -> bool:
        return self is not Operator.IS


class ValueType(enum.IntEnum):
    """Wire data formats supported by the implementation (Section 3.2)."""

    INT32 = 0
    FLOAT32 = 1
    FLOAT64 = 2
    STRING = 3
    BLOB = 4

    def validate(self, value: Any) -> Any:
        """Normalize ``value`` to this type or raise AttributeValueError."""
        if self is ValueType.INT32:
            if isinstance(value, bool) or not isinstance(value, int):
                raise AttributeValueError(f"INT32 requires int, got {value!r}")
            if not (-(2**31) <= value < 2**31):
                raise AttributeValueError(f"INT32 out of range: {value}")
            return value
        if self in (ValueType.FLOAT32, ValueType.FLOAT64):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise AttributeValueError(f"float type requires number, got {value!r}")
            value = float(value)
            if math.isnan(value):
                raise AttributeValueError("NaN is not an orderable attribute value")
            if self is ValueType.FLOAT32:
                # Round-trip through single precision so comparisons on both
                # sides of the radio see the same value.
                value = struct.unpack("<f", struct.pack("<f", value))[0]
            return value
        if self is ValueType.STRING:
            if not isinstance(value, str):
                raise AttributeValueError(f"STRING requires str, got {value!r}")
            return value
        if self is ValueType.BLOB:
            if not isinstance(value, (bytes, bytearray)):
                raise AttributeValueError(f"BLOB requires bytes, got {value!r}")
            return bytes(value)
        raise AttributeValueError(f"unknown type {self}")  # pragma: no cover

    def payload_size(self, value: Any) -> int:
        """Bytes of payload this value occupies on the wire."""
        if self is ValueType.INT32:
            return 4
        if self is ValueType.FLOAT32:
            return 4
        if self is ValueType.FLOAT64:
            return 8
        if self is ValueType.STRING:
            return len(value.encode("utf-8"))
        return len(value)


Scalar = Union[int, float, str, bytes]

_COMPARABLE = {
    (ValueType.INT32, ValueType.INT32),
    (ValueType.INT32, ValueType.FLOAT32),
    (ValueType.INT32, ValueType.FLOAT64),
    (ValueType.FLOAT32, ValueType.INT32),
    (ValueType.FLOAT32, ValueType.FLOAT32),
    (ValueType.FLOAT32, ValueType.FLOAT64),
    (ValueType.FLOAT64, ValueType.INT32),
    (ValueType.FLOAT64, ValueType.FLOAT32),
    (ValueType.FLOAT64, ValueType.FLOAT64),
    (ValueType.STRING, ValueType.STRING),
    (ValueType.BLOB, ValueType.BLOB),
}


class Attribute:
    """One ``(key, type, operator, value)`` tuple.

    Instances are immutable and hashable so attribute vectors can be
    hashed for the diffusion core's duplicate-suppression cache (the
    paper notes hashes of attributes can stand in for full comparison).
    """

    __slots__ = ("key", "type", "op", "value", "_hash")

    def __init__(self, key: int, type: ValueType, op: Operator, value: Scalar) -> None:
        if not isinstance(key, int) or not (0 <= key < 2**32):
            raise AttributeValueError(f"attribute key must be uint32, got {key!r}")
        object.__setattr__(self, "key", key)
        object.__setattr__(self, "type", ValueType(type))
        object.__setattr__(self, "op", Operator(op))
        object.__setattr__(self, "value", self.type.validate(value))
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Attribute is immutable")

    def __reduce__(self):
        # Immutability breaks the default slot-state pickling; rebuild
        # through the constructor instead (payloads cross process
        # boundaries in campaign workers and sharded runs).
        return (self.__class__, (self.key, self.type, self.op, self.value))

    @property
    def is_actual(self) -> bool:
        return self.op.is_actual

    @property
    def is_formal(self) -> bool:
        return self.op.is_formal

    def compares_with(self, actual: "Attribute") -> bool:
        """Apply this formal's operator to the other side's actual.

        Mirrors ``a.val compares with b.val using a.op`` from Figure 2;
        ``self`` supplies the operator and reference value, ``actual``
        supplies the bound value being tested.
        """
        if not self.is_formal:
            raise AttributeValueError("compares_with() requires a formal attribute")
        if self.op is Operator.EQ_ANY:
            return True
        if (self.type, actual.type) not in _COMPARABLE:
            return False
        a, b = self.value, actual.value
        if self.op is Operator.EQ:
            return b == a
        if self.op is Operator.NE:
            return b != a
        if self.op is Operator.GT:
            return b > a
        if self.op is Operator.GE:
            return b >= a
        if self.op is Operator.LT:
            return b < a
        if self.op is Operator.LE:
            return b <= a
        raise AttributeValueError(f"unknown operator {self.op}")  # pragma: no cover

    def wire_size(self) -> int:
        """Bytes on the wire: key(4) + type(1) + op(1) + len(2) + payload."""
        return 8 + self.type.payload_size(self.value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return (
            self.key == other.key
            and self.type == other.type
            and self.op == other.op
            and self.value == other.value
        )

    def __hash__(self) -> int:
        cached = object.__getattribute__(self, "_hash")
        if cached is None:
            cached = hash((self.key, self.type, self.op, self.value))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        from repro.naming.keys import key_name

        return f"({key_name(self.key)} {self.op.name} {self.value!r})"

    # -- constructor helpers ------------------------------------------------

    @classmethod
    def int32(cls, key: int, op: Operator, value: int) -> "Attribute":
        return cls(key, ValueType.INT32, op, value)

    @classmethod
    def float32(cls, key: int, op: Operator, value: float) -> "Attribute":
        return cls(key, ValueType.FLOAT32, op, value)

    @classmethod
    def float64(cls, key: int, op: Operator, value: float) -> "Attribute":
        return cls(key, ValueType.FLOAT64, op, value)

    @classmethod
    def string(cls, key: int, op: Operator, value: str) -> "Attribute":
        return cls(key, ValueType.STRING, op, value)

    @classmethod
    def blob(cls, key: int, op: Operator, value: bytes) -> "Attribute":
        return cls(key, ValueType.BLOB, op, value)
