"""One-way and two-way attribute matching (paper Figure 2).

The one-way match tests every *formal* in set A against the *actuals*
of set B; a formal with no satisfying actual fails the whole match.
Multiple formals are effectively "anded" together.  Two sets match
completely when the one-way match succeeds in both directions.

Two implementations are provided:

* :func:`one_way_match` — the literal nested-loop algorithm from
  Figure 2, kept as the reference and for the Figure 11 benchmark.
* :func:`one_way_match_segregated` — the optimization the paper suggests
  in Section 6.3 ("segregating actuals from formals can reduce search
  time"), indexing B's actuals by key first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.naming.attribute import Attribute


@dataclass
class MatchStats:
    """Operation counters for the matching cost experiments (Section 6.3)."""

    formals_tested: int = 0
    comparisons: int = 0

    def reset(self) -> None:
        self.formals_tested = 0
        self.comparisons = 0


def one_way_match(
    a: Sequence[Attribute],
    b: Sequence[Attribute],
    stats: Optional[MatchStats] = None,
) -> bool:
    """Figure 2 verbatim: do B's actuals satisfy all of A's formals?"""
    for attr_a in a:
        if not attr_a.is_formal:
            continue
        if stats is not None:
            stats.formals_tested += 1
        matched = False
        for attr_b in b:
            if attr_b.key != attr_a.key or not attr_b.is_actual:
                continue
            if stats is not None:
                stats.comparisons += 1
            if attr_a.compares_with(attr_b):
                matched = True
                # The reference implementation scans the remainder of B
                # anyway; we keep the early exit as the obvious reading of
                # "matched = true" followed by the post-loop check.
                break
        if not matched:
            return False
    return True


def one_way_match_segregated(
    a: Sequence[Attribute],
    b: Sequence[Attribute],
    stats: Optional[MatchStats] = None,
) -> bool:
    """Optimized one-way match: index B's actuals by key first.

    Formals in B are never consulted ("since formals cannot match other
    formals there is no need to compare them" — Section 6.3), so the scan
    over B happens once instead of once per formal in A.
    """
    actuals: Dict[int, List[Attribute]] = {}
    for attr_b in b:
        if attr_b.is_actual:
            actuals.setdefault(attr_b.key, []).append(attr_b)
    for attr_a in a:
        if not attr_a.is_formal:
            continue
        if stats is not None:
            stats.formals_tested += 1
        matched = False
        for attr_b in actuals.get(attr_a.key, ()):
            if stats is not None:
                stats.comparisons += 1
            if attr_a.compares_with(attr_b):
                matched = True
                break
        if not matched:
            return False
    return True


def two_way_match(
    a: Sequence[Attribute],
    b: Sequence[Attribute],
    stats: Optional[MatchStats] = None,
) -> bool:
    """Complete match: one-way matches succeed from A to B *and* B to A."""
    return one_way_match(a, b, stats) and one_way_match(b, a, stats)


def formals(attrs: Iterable[Attribute]) -> List[Attribute]:
    """The formal (comparison) attributes of a set."""
    return [attr for attr in attrs if attr.is_formal]


def actuals(attrs: Iterable[Attribute]) -> List[Attribute]:
    """The actual (IS-bound) attributes of a set."""
    return [attr for attr in attrs if attr.is_actual]
