"""Attribute-based naming: tuples, operators, matching rules, wire format.

Implements Section 3.2 of the paper: data and interests are lists of
attribute-value-operation tuples; matching is the two-way closure of the
one-way algorithm in Figure 2, with comparison operators beyond equality.
"""

from repro.naming.attribute import (
    Attribute,
    AttributeValueError,
    Operator,
    ValueType,
)
from repro.naming.engine import (
    MatchIndex,
    MatchIndexStats,
    MatchProfile,
    fast_one_way_match,
    fast_two_way_match,
)
from repro.naming.keys import (
    Key,
    KeyRegistry,
    STANDARD_KEYS,
    key_name,
)
from repro.naming.matching import (
    MatchStats,
    one_way_match,
    one_way_match_segregated,
    two_way_match,
)
from repro.naming.vector import AttributeVector
from repro.naming.wire import decode_attributes, encode_attributes, encoded_size

__all__ = [
    "Attribute",
    "AttributeValueError",
    "Operator",
    "ValueType",
    "Key",
    "KeyRegistry",
    "STANDARD_KEYS",
    "key_name",
    "MatchStats",
    "MatchIndex",
    "MatchIndexStats",
    "MatchProfile",
    "fast_one_way_match",
    "fast_two_way_match",
    "one_way_match",
    "one_way_match_segregated",
    "two_way_match",
    "AttributeVector",
    "encode_attributes",
    "decode_attributes",
    "encoded_size",
]
