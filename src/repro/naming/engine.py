"""Hot-path matching engine: indexed lookup and match memoization.

The paper measures one-way matching as the dominant forwarding cost
(Section 6.3) and suggests two remedies: segregating formals from
actuals, and caching match results.  This module ships both as a fast
path that is *provably equivalent* to the Figure 2 reference matcher
(see ``tests/test_match_engine.py`` for the randomized equivalence
suite) while leaving :func:`repro.naming.matching.one_way_match`
untouched — the Figure 11 experiment depends on the reference
implementation's literal operation counts.

Three layers:

* :class:`MatchProfile` — a per-vector precomputation (segregated
  formals, actuals indexed by key, and frozenset key-sets) cached on
  :class:`~repro.naming.vector.AttributeVector`, which is immutable, so
  the index is built once per vector instead of once per match.
* :func:`fast_one_way_match` / :func:`fast_two_way_match` — the
  Section 6.3 segregated matcher running on cached profiles, with a
  key-set subset test that rejects impossible matches before any
  value comparison.
* :class:`MatchIndex` — a bounded, memoizing
  ``(interest_digest, data_digest) -> verdict`` cache used by
  :class:`~repro.core.gradient.GradientTable` on the per-data-message
  forwarding decision.  Steady-state diffusion traffic repeats the same
  attribute vectors thousands of times, so the memo converts the
  per-message match from O(formals x actuals) comparisons to a dict
  lookup.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.naming.attribute import Attribute
from repro.naming.matching import MatchStats


class MatchProfile:
    """Precomputed matching view of one attribute sequence.

    Segregates formals from actuals ("since formals cannot match other
    formals there is no need to compare them" — Section 6.3), indexes
    the actuals by key, and exposes frozenset key-sets so callers can
    reject impossible matches with a single subset test.
    """

    __slots__ = ("formals", "actuals_by_key", "formal_keys", "actual_keys")

    def __init__(self, attrs: Iterable[Attribute]) -> None:
        formals: List[Attribute] = []
        actuals_by_key: Dict[int, List[Attribute]] = {}
        for attr in attrs:
            if attr.is_actual:
                actuals_by_key.setdefault(attr.key, []).append(attr)
            else:
                formals.append(attr)
        self.formals: Tuple[Attribute, ...] = tuple(formals)
        self.actuals_by_key = actuals_by_key
        self.formal_keys: FrozenSet[int] = frozenset(a.key for a in formals)
        self.actual_keys: FrozenSet[int] = frozenset(actuals_by_key)

    def can_be_satisfied_by(self, other: "MatchProfile") -> bool:
        """Necessary condition for a one-way match: every formal key
        must have at least one actual with the same key on the other
        side (a formal with no same-key actual always fails, EQ_ANY
        included)."""
        return self.formal_keys <= other.actual_keys

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MatchProfile formals={len(self.formals)} "
            f"actual_keys={sorted(self.actual_keys)}>"
        )


def profile_of(attrs) -> MatchProfile:
    """The :class:`MatchProfile` for ``attrs``.

    Uses the cached profile when ``attrs`` is an
    :class:`~repro.naming.vector.AttributeVector`; plain attribute
    sequences get a throwaway profile.
    """
    getter = getattr(attrs, "match_profile", None)
    if getter is not None:
        return getter()
    return MatchProfile(attrs)


def fast_one_way_match(
    a,
    b,
    stats: Optional[MatchStats] = None,
) -> bool:
    """One-way match on cached profiles: do B's actuals satisfy all of
    A's formals?

    Verdict-equivalent to :func:`repro.naming.matching.one_way_match`
    for every input (the equivalence suite asserts this over randomized
    vectors); ``stats`` counts the *fast path's* operations, which is
    the point — they drop relative to the reference scan.
    """
    pa = profile_of(a)
    pb = profile_of(b)
    if not pa.formal_keys <= pb.actual_keys:
        # Some formal has no same-key actual to compare against; the
        # reference matcher would fail at that formal after scanning.
        return False
    actuals = pb.actuals_by_key
    for formal in pa.formals:
        if stats is not None:
            stats.formals_tested += 1
        matched = False
        for actual in actuals[formal.key]:
            if stats is not None:
                stats.comparisons += 1
            if formal.compares_with(actual):
                matched = True
                break
        if not matched:
            return False
    return True


def fast_two_way_match(
    a,
    b,
    stats: Optional[MatchStats] = None,
) -> bool:
    """Complete match on cached profiles (both one-way directions)."""
    return fast_one_way_match(a, b, stats) and fast_one_way_match(b, a, stats)


@dataclass
class MatchIndexStats:
    """Counters describing how the index resolved lookups."""

    hits: int = 0
    misses: int = 0
    short_circuits: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.short_circuits

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0


class MatchIndex:
    """Memoizing interest -> data match with bounded LRU semantics.

    Keys the memo on ``(interest_digest, data_digest)``; digests are
    content hashes of immutable vectors, so a cached verdict can never
    go stale — invalidation (on interest-entry add/sweep/teardown)
    exists to bound memory to live interests and is exact thanks to a
    per-interest reverse index.  Capacity is enforced with
    least-recently-used eviction.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("MatchIndex capacity must be positive")
        self.capacity = capacity
        self.stats = MatchIndexStats()
        #: comparison counters accumulated by memo-miss computations;
        #: benchmarks read this to show the comparison-count drop.
        self.match_stats = MatchStats()
        self._memo: "OrderedDict[Tuple[bytes, bytes], bool]" = OrderedDict()
        self._by_interest: Dict[bytes, Set[Tuple[bytes, bytes]]] = {}

    def __len__(self) -> int:
        return len(self._memo)

    @property
    def comparisons(self) -> int:
        """Total value comparisons performed by memo-miss computations."""
        return self.match_stats.comparisons

    def one_way(self, interest_attrs, data_attrs) -> bool:
        """Do ``data_attrs``'s actuals satisfy all of
        ``interest_attrs``'s formals?  Memoized by digest pair."""
        if not profile_of(interest_attrs).can_be_satisfied_by(
            profile_of(data_attrs)
        ):
            self.stats.short_circuits += 1
            return False
        key = (interest_attrs.digest(), data_attrs.digest())
        memo = self._memo
        cached = memo.get(key)
        if cached is not None:
            memo.move_to_end(key)
            self.stats.hits += 1
            return cached
        verdict = fast_one_way_match(interest_attrs, data_attrs, self.match_stats)
        self.stats.misses += 1
        memo[key] = verdict
        self._by_interest.setdefault(key[0], set()).add(key)
        if len(memo) > self.capacity:
            self._evict_oldest()
        return verdict

    def _evict_oldest(self) -> None:
        old_key, _ = self._memo.popitem(last=False)
        self.stats.evictions += 1
        keys = self._by_interest.get(old_key[0])
        if keys is not None:
            keys.discard(old_key)
            if not keys:
                del self._by_interest[old_key[0]]

    def invalidate(self, interest_digest: bytes) -> int:
        """Drop every memoized verdict for one interest digest.

        Called when a gradient-table entry is created or torn down;
        returns the number of memo entries removed.
        """
        keys = self._by_interest.pop(interest_digest, None)
        if not keys:
            return 0
        for key in keys:
            self._memo.pop(key, None)
        self.stats.invalidations += len(keys)
        return len(keys)

    def clear(self) -> None:
        self._memo.clear()
        self._by_interest.clear()
