"""Ablation: aggregation's latency cost (paper Section 6.1).

"A potential disadvantage of data aggregation is increased latency ...
The algorithm used in these experiments does not affect latency at all,
since we forward unique events immediately upon reception and then
suppress any additional duplicates ...  Other aggregation algorithms,
such as those that delay transmitting a sensor reading with the hope of
aggregating readings from other sensors, can add some latency."

This bench measures exactly that: event generation->sink latency with
no filter, with the suppression filter, and with the delaying
counting-aggregation filter.
"""

import pytest

from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
from repro.filters import CountingAggregationFilter, SuppressionFilter
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.sim import Simulator
from repro.testbed import IdealNetwork

pytestmark = pytest.mark.slow

COUNTING_DELAY = 0.5
EVENTS = 40


def run_variant(variant: str):
    """Y topology: sources 3, 4 -> relay 2 -> relay 1 -> sink 0."""
    sim = Simulator()
    net = IdealNetwork(sim, delay=0.01)
    config = DiffusionConfig(reinforcement_jitter=0.05,
                             exploratory_interval=10.0)
    nodes, apis = {}, {}
    for i in range(5):
        nodes[i] = DiffusionNode(sim, i, net.add_node(i), config=config)
        apis[i] = DiffusionRouting(nodes[i])
    for a, b in [(0, 1), (1, 2), (2, 3), (2, 4)]:
        net.connect(a, b)
    for i in range(5):
        if variant == "suppression":
            SuppressionFilter(nodes[i])
        elif variant == "counting":
            CountingAggregationFilter(nodes[i], delay=COUNTING_DELAY)
    latencies = []
    generation_times = {}
    sub = AttributeVector.builder().eq(Key.TYPE, "det").build()

    def on_event(attrs, message):
        seq = attrs.value_of(Key.SEQUENCE)
        if seq in generation_times and seq not in (s for s, _ in latencies):
            latencies.append((seq, sim.now - generation_times[seq]))

    apis[0].subscribe(sub, on_event)
    pubs = {
        i: apis[i].publish(
            AttributeVector.builder().actual(Key.TYPE, "det").build()
        )
        for i in (3, 4)
    }
    for seq in range(EVENTS):
        when = 2.0 + seq * 2.0
        generation_times[seq] = when
        for src in (3, 4):
            sim.schedule(
                when, apis[src].send, pubs[src],
                AttributeVector.builder().actual(Key.SEQUENCE, seq).build(),
            )
    sim.run(until=2.0 + EVENTS * 2.0 + 20.0)
    values = [latency for _, latency in latencies]
    return sum(values) / len(values), len(values)


@pytest.fixture(scope="module")
def latencies():
    return {v: run_variant(v) for v in ("none", "suppression", "counting")}


def test_aggregation_latency_table(benchmark, latencies):
    benchmark.pedantic(run_variant, args=("suppression",), rounds=1,
                       iterations=1)
    print()
    print(f"{'variant':>12} {'mean latency':>13} {'events':>7}")
    for variant, (latency, count) in latencies.items():
        print(f"{variant:>12} {latency:>12.3f}s {count:>7}")
    none, _ = latencies["none"]
    supp, _ = latencies["suppression"]
    counting, _ = latencies["counting"]
    # The paper's claims — plus the deployment detail the measurement
    # surfaces: a delaying filter on EVERY node holds the event once per
    # hop, so the cost is delay x path-length, not delay.
    assert abs(supp - none) < 0.05          # suppression adds ~nothing
    assert counting >= none + COUNTING_DELAY


def test_suppression_latency_free(latencies):
    none, _ = latencies["none"]
    supp, _ = latencies["suppression"]
    assert abs(supp - none) < 0.05


def test_counting_pays_its_delay_per_hop(latencies):
    """With the filter on all five nodes, the 3-hop delivery path holds
    the event at four aggregation points: latency ~= 4 x delay."""
    none, _ = latencies["none"]
    counting, _ = latencies["counting"]
    assert counting >= none + COUNTING_DELAY
    assert counting <= none + COUNTING_DELAY * 5.0


def test_all_variants_deliver_everything(latencies):
    for variant, (latency, count) in latencies.items():
        assert count == EVENTS, variant
