"""Benchmark: Figure 1 — the three phases of directed diffusion.

Not a results figure, but the paper's definitional diagram; this bench
drives a full interest → gradient → exploratory → reinforcement → data
cycle on the simulated radio stack and records its cost, asserting each
phase completed.
"""

import pytest

from repro import AttributeVector, Key, MessageType
from repro.radio import Topology
from repro.testbed import SensorNetwork

pytestmark = pytest.mark.slow


def run_cycle():
    net = SensorNetwork(Topology.line(5, spacing=15.0), seed=3)
    received = []
    sub = (
        AttributeVector.builder()
        .eq(Key.TYPE, "track")
        .actual(Key.INTERVAL, 1000)
        .build()
    )
    net.api(0).subscribe(sub, lambda a, m: received.append((net.sim.now, a)))
    pub = net.api(4).publish(
        AttributeVector.builder().actual(Key.TYPE, "track").build()
    )
    for i in range(20):
        net.sim.schedule(
            3.0 + i,
            net.api(4).send,
            pub,
            AttributeVector.builder().actual(Key.SEQUENCE, i).build(),
        )
    net.run(until=30.0)
    return net, received


@pytest.fixture(scope="module")
def cycle():
    return run_cycle()


def test_full_cycle(benchmark):
    benchmark.pedantic(run_cycle, rounds=1, iterations=1)


def test_phase_a_interest_propagation(cycle):
    net, _ = cycle
    for node_id in range(1, 5):
        assert len(net.node(node_id).gradients) >= 1


def test_phase_b_gradients_point_to_sink(cycle):
    net, _ = cycle
    for node_id in range(1, 5):
        entry = net.node(node_id).gradients.entries()[0]
        assert entry.active_gradient_neighbors(net.sim.now)


def test_phase_c_reinforced_delivery(cycle):
    net, received = cycle
    assert len(received) >= 10  # most of 20 events over 4 best-effort hops
    # Relays carried plain DATA (unicast on the reinforced path).
    for node_id in (1, 2, 3):
        assert net.node(node_id).stats.messages_by_type[MessageType.DATA] >= 5


def test_reinforcement_messages_flowed(cycle):
    net, _ = cycle
    total = sum(
        net.node(n).stats.messages_by_type[MessageType.POSITIVE_REINFORCEMENT]
        for n in net.node_ids()
    )
    assert total >= 4  # at least one per hop
