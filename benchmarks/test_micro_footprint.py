"""Benchmark: Section 4.3 — micro-diffusion footprint and gateway.

Verifies the static-size story (5 gradients, 10-packet cache, data
budget within the paper's 106 bytes) and benchmarks end-to-end delivery
through a tiered mote network behind a gateway.
"""

import pytest

from repro import AttributeVector, Key
from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
from repro.micro import (
    MICRO_DATA_BYTES,
    MicroConfig,
    MicroDiffusionNode,
    MicroGateway,
    MicroMessage,
    MicroMessageKind,
    TagRegistry,
    state_bytes,
)
from repro.micro.footprint import footprint_report
from repro.sim import Simulator
from repro.testbed import IdealNetwork

PHOTO_TAG = 7


def run_tiered(samples: int = 20):
    sim = Simulator()
    full_net = IdealNetwork(sim, delay=0.02)
    user = DiffusionRouting(
        DiffusionNode(sim, 100, full_net.add_node(100), config=DiffusionConfig())
    )
    gw_api = DiffusionRouting(
        DiffusionNode(sim, 101, full_net.add_node(101), config=DiffusionConfig())
    )
    full_net.connect(100, 101)
    mote_net = IdealNetwork(sim, delay=0.01)
    gw_micro = MicroDiffusionNode(sim, 101, mote_net.add_node(101))
    motes = {}
    prev = 101
    for mote_id in range(1, 5):
        motes[mote_id] = MicroDiffusionNode(sim, mote_id, mote_net.add_node(mote_id))
        mote_net.connect(prev, mote_id)
        prev = mote_id
    registry = TagRegistry()
    registry.register(
        PHOTO_TAG,
        interest_attrs=AttributeVector.builder().eq(Key.TYPE, "photo").build(),
        data_attrs=AttributeVector.builder().actual(Key.TYPE, "photo").build(),
    )
    MicroGateway(gw_api, gw_micro, registry)
    received = []
    user.subscribe(
        AttributeVector.builder().eq(Key.TYPE, "photo").build(),
        lambda attrs, msg: received.append(attrs),
    )
    for i in range(samples):
        sim.schedule(2.0 + i * 0.5, motes[4].send, PHOTO_TAG, bytes([i & 0xFF]))
    sim.run(until=60.0)
    return received


def test_tiered_delivery(benchmark):
    received = benchmark.pedantic(run_tiered, rounds=1, iterations=1)
    assert len(received) >= 15  # lossless ideal transport; warmup losses only


def test_footprint_table(benchmark):
    report = benchmark(footprint_report, MicroConfig())
    print()
    print("micro-diffusion footprint:")
    for key, value in report.items():
        print(f"   {key}: {value}")
    assert report["within_paper_budget"]


def test_default_state_within_paper_budget():
    assert state_bytes(MicroConfig()) <= MICRO_DATA_BYTES


def test_message_fits_small_radio_packets():
    """Paper Section 4.4: 'Several low-power radio designs have packet
    sizes as small as 30B' — the mote message must fit in one."""
    msg = MicroMessage(MicroMessageKind.DATA, tag=1, origin=2, seq=3,
                       payload=bytes(16))
    assert msg.nbytes <= 30


def test_micro_cache_and_gradients_static(benchmark):
    """Protocol engine work per message is bounded by the static tables;
    benchmark a flood step on a configured mote."""
    sim = Simulator()
    net = IdealNetwork(sim, delay=0.001)
    mote = MicroDiffusionNode(sim, 0, net.add_node(0))
    msg = MicroMessage(MicroMessageKind.INTEREST, tag=1, origin=9, seq=1)

    counter = {"seq": 0}

    def process():
        counter["seq"] += 1
        incoming = MicroMessage(
            MicroMessageKind.INTEREST, tag=1, origin=9,
            seq=counter["seq"] & 0xFFFF,
        )
        mote._on_message(incoming, src=9, nbytes=incoming.nbytes)

    benchmark(process)
    assert len(mote.gradients) <= mote.config.max_gradients
    assert len(mote.cache) <= mote.config.cache_packets
