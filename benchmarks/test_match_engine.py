"""Benchmark: matching-bound forwarding throughput (the hot path).

Section 6.3 measures one-way matching as the dominant forwarding cost;
this benchmark measures what the PR's matching engine buys on the
forwarding decision itself: ``GradientTable.matching_data`` over
10/50/200 interest entries versus the pre-optimization linear Figure 2
scan, on a steady-state stream that repeats data vectors the way
periodic sources do.

Two kinds of assertion:

* comparison *counts* (``MatchStats``-style) are deterministic and must
  drop >=5x — this is also what the CI tier-1 smoke checks;
* wall-clock throughput must improve >=3x at 50 entries (the
  acceptance bar; measured speedups are far higher).

Running this module rewrites ``BENCH_matching.json`` at the repo root
so the perf trajectory keeps recording.
"""

import json
import pathlib

import pytest

from repro.experiments.matchbench import (
    DEFAULT_SIZES,
    count_comparisons,
    measure_throughput,
    run_bench,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


@pytest.mark.parametrize("n_entries", DEFAULT_SIZES)
def test_comparison_counts_drop(n_entries):
    counts = count_comparisons(n_entries)
    assert counts["reference_comparisons"] >= 5 * counts["engine_comparisons"]
    # Steady-state streams are served from the memo.
    assert counts["memo_hits"] > counts["memo_misses"]


def test_throughput_speedup_at_50_entries():
    """Acceptance bar: >=3x matching-bound throughput at 50 entries."""
    result = measure_throughput(n_entries=50, messages=2000)
    assert result["speedup"] >= 3.0, result


@pytest.mark.parametrize("n_entries", (10, 200))
def test_throughput_improves_across_sizes(n_entries):
    result = measure_throughput(n_entries=n_entries, messages=2000)
    assert result["speedup"] > 1.5, result


def test_bench_trajectory_recorded():
    """Regenerate BENCH_matching.json (checked in) from this host."""
    report = run_bench(messages=2000)
    out = REPO_ROOT / "BENCH_matching.json"
    with out.open("w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    at_50 = next(
        row for row in report["results"] if row["interest_entries"] == 50
    )
    assert at_50["throughput_speedup"] >= 3.0
    assert at_50["comparison_reduction"] >= 5.0
