"""Benchmark: Figure 9 — % of audio events delivered, nested vs flat.

Regenerates both curves (nested and one-level queries, 1-4 light
sensors) at the paper's configuration: 20-minute runs, three trials per
point, 95% CIs.  Shape assertions encode the paper's claims:

* nested queries deliver more than flat queries at every sensor count;
* both degrade as sensors (and hence traffic) increase;
* the loss-rate reduction from nesting is in the paper's 15-30 point
  range somewhere on the curve.
"""

import pytest

from repro.experiments.fig9_nested import (
    format_table,
    loss_reduction_at,
    run_fig9,
)

pytestmark = pytest.mark.slow

TRIALS = 3
DURATION = 1200.0
LIGHT_COUNTS = (1, 2, 3, 4)


@pytest.fixture(scope="module")
def fig9_points():
    return run_fig9(light_counts=LIGHT_COUNTS, trials=TRIALS, duration=DURATION)


def test_fig9_full_sweep(benchmark, fig9_points):
    def one_point():
        from repro.experiments.fig9_nested import run_fig9_trial

        return run_fig9_trial(4, True, seed=999, duration=DURATION)

    benchmark.pedantic(one_point, rounds=1, iterations=1)
    print()
    print(format_table(fig9_points))
    for n in LIGHT_COUNTS:
        print(
            f"loss reduction from nesting at {n} sensor(s): "
            f"{loss_reduction_at(fig9_points, n):.0f} points"
        )

    # Shape claims (duplicated from the granular tests, which
    # --benchmark-only skips).
    for n in LIGHT_COUNTS:
        nested = next(p for p in fig9_points if p.nested and p.num_lights == n)
        flat = next(p for p in fig9_points if not p.nested and p.num_lights == n)
        assert nested.delivery_percentage.mean >= flat.delivery_percentage.mean
    reductions = [loss_reduction_at(fig9_points, n) for n in LIGHT_COUNTS]
    assert any(10.0 <= r <= 45.0 for r in reductions)


def test_nested_beats_flat_everywhere(fig9_points):
    for n in LIGHT_COUNTS:
        nested = next(
            p for p in fig9_points if p.nested and p.num_lights == n
        )
        flat = next(
            p for p in fig9_points if not p.nested and p.num_lights == n
        )
        assert nested.delivery_percentage.mean >= flat.delivery_percentage.mean


def test_delivery_degrades_with_sensor_count(fig9_points):
    for nested in (True, False):
        by_count = {
            p.num_lights: p.delivery_percentage.mean
            for p in fig9_points
            if p.nested == nested
        }
        assert by_count[4] < by_count[1]


def test_loss_reduction_in_paper_band_somewhere(fig9_points):
    reductions = [loss_reduction_at(fig9_points, n) for n in LIGHT_COUNTS]
    assert any(10.0 <= r <= 45.0 for r in reductions)


def test_nested_latency_not_worse(fig9_points):
    """Section 5.2: 'A nested query localizes data traffic near the
    triggering event ... reduction in latency can be substantial.'
    Compare mean change->audio latency across all points."""

    def mean_latency(nested):
        values = [
            r.mean_latency
            for p in fig9_points
            if p.nested == nested
            for r in p.trials
            if r.mean_latency is not None
        ]
        return sum(values) / len(values)

    nested_latency = mean_latency(True)
    flat_latency = mean_latency(False)
    print(f"\nmean change->audio latency: nested {nested_latency:.2f}s, "
          f"flat {flat_latency:.2f}s")
    assert nested_latency <= flat_latency * 1.1


def test_absolute_delivery_sane(fig9_points):
    """Best-effort multi-hop delivery: partial, not zero, not perfect."""
    for p in fig9_points:
        assert 0.0 <= p.delivery_percentage.mean <= 100.0
    nested_one = next(
        p for p in fig9_points if p.nested and p.num_lights == 1
    )
    assert nested_one.delivery_percentage.mean > 40.0
