"""Benchmark: observability overhead when nobody is listening.

The trace bus drops records on its no-listener fast path and the null
metrics registry absorbs increments without allocating, so a run with
neither a collector nor a registry attached must cost the same as a
stack with no instrumentation at all.  The uninstrumented baseline is
simulated by stubbing ``TraceBus.emit`` to a bare no-op: the gap
between that and the real fast path is exactly what the tracing hooks
cost a user who never turns them on (the ISSUE's ±5% criterion,
asserted here with headroom for CI timing noise).
"""

import time

import pytest

from repro import AttributeVector, Key
from repro.radio import Topology
from repro.sim import TraceCollector, use_registry
from repro.testbed import SensorNetwork

pytestmark = pytest.mark.slow


def run_cycle(observed: bool = False, stub_emit: bool = False):
    net = SensorNetwork(Topology.line(5, spacing=15.0), seed=3)
    if stub_emit:
        net.trace.emit = lambda *args, **kwargs: None
    received = []

    def drive():
        sub = (
            AttributeVector.builder()
            .eq(Key.TYPE, "track")
            .actual(Key.INTERVAL, 1000)
            .build()
        )
        net.api(0).subscribe(sub, lambda a, m: received.append(net.sim.now))
        pub = net.api(4).publish(
            AttributeVector.builder().actual(Key.TYPE, "track").build()
        )
        for i in range(20):
            net.sim.schedule(
                3.0 + i,
                net.api(4).send,
                pub,
                AttributeVector.builder().actual(Key.SEQUENCE, i).build(),
            )
        net.run(until=30.0)

    if observed:
        with TraceCollector(net.trace) as collector:
            drive()
        return received, collector.records
    drive()
    return received, []


def _best_of(repeats: int = 5, **kwargs) -> float:
    """Best-of-N wall time: min is the noise-robust micro-timing stat."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        received, _records = run_cycle(**kwargs)
        best = min(best, time.perf_counter() - start)
        assert received, "sanity: the cycle should deliver"
    return best


def test_fig1_cycle_benchmark(benchmark):
    benchmark.pedantic(run_cycle, rounds=1, iterations=1)


def test_disabled_observability_adds_no_measurable_overhead():
    run_cycle()  # warm imports and caches before timing anything
    baseline = _best_of(stub_emit=True)   # instrumentation compiled out
    fast_path = _best_of(stub_emit=False)  # real no-listener fast path
    overhead = fast_path / baseline - 1.0
    # Criterion: ±5% on a quiet machine; the bound carries CI headroom
    # so only a genuine fast-path regression (a listener left attached,
    # work done before the early return) trips it.
    assert overhead < 0.20, (
        f"no-listener tracing cost {overhead:.1%} over an uninstrumented "
        f"run ({fast_path:.4f}s vs {baseline:.4f}s)"
    )


def test_disabled_run_leaves_no_listeners():
    net = SensorNetwork(Topology.line(3, spacing=15.0), seed=5)
    # No collector, no registry: the bus must have no listeners at all,
    # so every emit takes the cheap early-return path.
    assert all(not v for v in net.trace._listeners.values())
    net.run(until=2.0)


def test_enabled_observability_records_the_run():
    with use_registry() as registry:
        received, records = run_cycle(observed=True)
    assert received
    assert records
    categories = {r.category for r in records}
    assert "diffusion.tx" in categories
    assert "app.deliver" in categories
    snap = registry.snapshot()
    assert snap["counters"]["diffusion.delivered"] == len(received)


def test_enabled_overhead_stays_bounded():
    run_cycle()  # warm up
    disabled = _best_of()
    enabled = _best_of(observed=True)
    ratio = enabled / disabled
    # Full "*" recording is allowed to cost something; it must not
    # multiply the run.  (Measured locally: well under 2x.)
    assert ratio < 3.0, f"observability multiplied runtime by {ratio:.2f}"
