"""Scale validation: the simulation-era aggregation savings.

Section 6.1: "Previous simulation studies have shown that aggregation
can reduce energy consumption by a factor of 3-5x in a large network
(50-250 nodes) with five active sources and five sinks (Figure 6b from
[23]) ... a 3-5-fold energy savings with five sources is much greater
than the 42% ... The primary reason for this difference is differences
in ratio of exploratory to data messages" (1:100 in simulation vs 1:10
on the testbed).

This bench reruns that scenario on our protocol implementation — a
49-node grid, five sources, five sinks, exploratory:data 1:100 — and
checks that the savings factor lands in the cited 3-5x band, closing
the loop on the paper's own explanation of its Figure 8 numbers.
"""

import pytest

from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
from repro.filters import SuppressionFilter
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.sim import Simulator
from repro.testbed import IdealNetwork

GRID = 7            # 49 nodes, the low end of the cited 50-250 range
DURATION = 300.0
DATA_INTERVAL = 0.5     # "data every 0.5s" in the simulation study
EXPLORATORY = 50.0      # "exploratory messages were sent every 50s"


def run_scale_trial(suppression: bool):
    sim = Simulator()
    net = IdealNetwork(sim, delay=0.005)
    config = DiffusionConfig(
        interest_interval=50.0,
        gradient_timeout=120.0,
        interest_jitter=1.0,
        exploratory_interval=EXPLORATORY,
        reinforcement_jitter=0.2,
    )
    total = GRID * GRID
    nodes, apis = {}, {}
    match = AttributeVector.builder().eq(Key.TYPE, "det").build()
    for i in range(total):
        nodes[i] = DiffusionNode(sim, i, net.add_node(i), config=config)
        apis[i] = DiffusionRouting(nodes[i])
        if suppression:
            SuppressionFilter(nodes[i], match_attrs=match)
    for i in range(total):
        if i % GRID < GRID - 1:
            net.connect(i, i + 1)
        if i < total - GRID:
            net.connect(i, i + GRID)
    sinks = [k * GRID for k in range(5)]             # left edge
    sources = [(k + 1) * GRID - 1 for k in range(5)]  # right edge
    received = {sink: set() for sink in sinks}
    sub = (
        AttributeVector.builder()
        .eq(Key.TYPE, "det")
        .actual(Key.INTERVAL, int(DATA_INTERVAL * 1000))
        .build()
    )
    for sink in sinks:
        apis[sink].subscribe(
            sub,
            lambda attrs, msg, k=sink: received[k].add(
                attrs.value_of(Key.SEQUENCE)
            ),
        )
    pubs = {
        src: apis[src].publish(
            AttributeVector.builder().actual(Key.TYPE, "det").build()
        )
        for src in sources
    }
    count = int((DURATION - 5.0) / DATA_INTERVAL)
    for seq in range(count):
        when = 5.0 + seq * DATA_INTERVAL
        for src in sources:
            sim.schedule(
                when, apis[src].send, pubs[src],
                AttributeVector.builder().actual(Key.SEQUENCE, seq).build(),
                80,  # pad toward the study's 64-127 B messages
            )
    sim.run(until=DURATION)
    total_bytes = sum(node.stats.bytes_sent for node in nodes.values())
    distinct = len(set().union(*received.values()))
    return {
        "bytes": total_bytes,
        "distinct": distinct,
        "generated": count,
        "bytes_per_event": total_bytes / max(1, distinct),
    }


@pytest.fixture(scope="module")
def scale_results():
    return {
        suppression: run_scale_trial(suppression)
        for suppression in (True, False)
    }


def test_scale_sweep(benchmark, scale_results):
    benchmark.pedantic(run_scale_trial, args=(True,), rounds=1, iterations=1)
    with_supp = scale_results[True]
    without = scale_results[False]
    factor = without["bytes_per_event"] / with_supp["bytes_per_event"]
    print()
    print(f"49 nodes, 5 sources, 5 sinks, exploratory:data 1:100")
    print(f"  with aggregation   : {with_supp['bytes_per_event']:8.0f} B/event")
    print(f"  without aggregation: {without['bytes_per_event']:8.0f} B/event")
    print(f"  savings factor     : {factor:.1f}x (paper cites 3-5x)")
    assert 2.5 <= factor <= 6.0


def test_savings_factor_in_cited_band(scale_results):
    factor = (
        scale_results[False]["bytes_per_event"]
        / scale_results[True]["bytes_per_event"]
    )
    assert 2.5 <= factor <= 6.0


def test_delivery_near_complete_without_mac_losses(scale_results):
    """On the ideal transport (this is a protocol-scale study, like the
    original ns-2 one) delivery should be essentially complete."""
    for result in scale_results.values():
        assert result["distinct"] >= result["generated"] - 2


def test_scale_savings_exceed_testbed_savings(scale_results):
    """The paper's explanation requires the simulation-scale factor to
    dwarf the testbed's 1.7x (42%) — check our numbers tell the same
    story."""
    factor = (
        scale_results[False]["bytes_per_event"]
        / scale_results[True]["bytes_per_event"]
    )
    assert factor > 1.7
