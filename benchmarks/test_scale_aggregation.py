"""Scale validation: the simulation-era aggregation savings.

Section 6.1: "Previous simulation studies have shown that aggregation
can reduce energy consumption by a factor of 3-5x in a large network
(50-250 nodes) with five active sources and five sinks (Figure 6b from
[23]) ... a 3-5-fold energy savings with five sources is much greater
than the 42% ... The primary reason for this difference is differences
in ratio of exploratory to data messages" (1:100 in simulation vs 1:10
on the testbed).

This bench reruns that scenario on our protocol implementation — a
49-node grid, five sources, five sinks, exploratory:data 1:100 — and
checks that the savings factor lands in the cited 3-5x band, closing
the loop on the paper's own explanation of its Figure 8 numbers.

The workload lives in :mod:`repro.campaign.builtin` (``scale_trial``)
and runs here through the campaign subsystem, the same path
``python -m repro campaign run scale-aggregation`` takes.
"""

import pytest

from repro.campaign import run_campaign
from repro.campaign.builtin import scale_campaign, scale_trial

pytestmark = pytest.mark.slow

DURATION = 300.0


def run_scale_trial(suppression: bool):
    return scale_trial({"suppression": suppression, "duration": DURATION}, seed=0)


@pytest.fixture(scope="module")
def scale_results():
    report = run_campaign(scale_campaign(duration=DURATION))
    assert report.ok
    return {
        outcome.spec.params["suppression"]: outcome.result
        for outcome in report.outcomes
    }


def test_scale_sweep(benchmark, scale_results):
    benchmark.pedantic(run_scale_trial, args=(True,), rounds=1, iterations=1)
    with_supp = scale_results[True]
    without = scale_results[False]
    factor = without["bytes_per_event"] / with_supp["bytes_per_event"]
    print()
    print(f"49 nodes, 5 sources, 5 sinks, exploratory:data 1:100")
    print(f"  with aggregation   : {with_supp['bytes_per_event']:8.0f} B/event")
    print(f"  without aggregation: {without['bytes_per_event']:8.0f} B/event")
    print(f"  savings factor     : {factor:.1f}x (paper cites 3-5x)")
    assert 2.5 <= factor <= 6.0


def test_savings_factor_in_cited_band(scale_results):
    factor = (
        scale_results[False]["bytes_per_event"]
        / scale_results[True]["bytes_per_event"]
    )
    assert 2.5 <= factor <= 6.0


def test_delivery_near_complete_without_mac_losses(scale_results):
    """On the ideal transport (this is a protocol-scale study, like the
    original ns-2 one) delivery should be essentially complete."""
    for result in scale_results.values():
        assert result["distinct"] >= result["generated"] - 2


def test_scale_savings_exceed_testbed_savings(scale_results):
    """The paper's explanation requires the simulation-scale factor to
    dwarf the testbed's 1.7x (42%) — check our numbers tell the same
    story."""
    factor = (
        scale_results[False]["bytes_per_event"]
        / scale_results[True]["bytes_per_event"]
    )
    assert factor > 1.7
